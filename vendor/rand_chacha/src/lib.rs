//! Offline stand-in for the `rand_chacha` crate.
//!
//! [`ChaCha8Rng`] runs a genuine 8-round ChaCha block function (the same
//! keystream construction as upstream), seeded through the vendored `rand`
//! crate's [`SeedableRng`]. Output is deterministic per seed; the exact
//! stream is not guaranteed to match upstream `rand_chacha` (the workspace
//! only relies on determinism, not on a specific stream).

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A deterministic generator backed by the ChaCha stream cipher with 8
/// rounds (the paper-repro default: fast and statistically strong).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// The cipher input block: constants, 256-bit key, 64-bit counter,
    /// 64-bit stream id.
    input: [u32; 16],
    /// The current keystream block.
    block: [u32; 16],
    /// Next word to emit from `block`; 16 means "refill".
    word_pos: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.input;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, inp)) in self.block.iter_mut().zip(working.iter().zip(self.input.iter())) {
            *out = w.wrapping_add(*inp);
        }
        // 64-bit block counter in words 12..14.
        let counter = ((self.input[13] as u64) << 32 | self.input[12] as u64).wrapping_add(1);
        self.input[12] = counter as u32;
        self.input[13] = (counter >> 32) as u32;
        self.word_pos = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let v = self.block[self.word_pos];
        self.word_pos += 1;
        v
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CONSTANTS);
        for i in 0..8 {
            input[4 + i] =
                u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
        }
        // counter (words 12-13) and stream id (words 14-15) start at zero
        ChaCha8Rng { input, block: [0; 16], word_pos: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let va: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let vc: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn stream_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn uniform_f64_is_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the subset of the `bytes` 1.x API that the workspace
//! uses: cheaply cloneable immutable [`Bytes`], a growable [`BytesMut`]
//! builder, and the little-endian accessors of the [`Buf`] / [`BufMut`]
//! traits. Semantics match the upstream crate for that subset.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer (a view into shared storage).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the view as a byte slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Shortens the view to `len` bytes, keeping the front.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }

    /// Splits off and returns the first `at` bytes as a new view.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + at };
        self.start += at;
        front
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer used to build a [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Creates a buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut { data: vec![0; len] }
    }

    /// Number of bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

/// Read access to a byte cursor (little-endian accessors consume bytes).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Returns `true` if any bytes are left.
    #[inline]
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Consumes a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// Write access to a growable byte buffer (little-endian appenders).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_values() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32_le(7);
        b.put_f64_le(2.5);
        b.put_u8(9);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 13);
        assert_eq!(bytes.get_u32_le(), 7);
        assert_eq!(bytes.get_f64_le(), 2.5);
        assert_eq!(bytes.get_u8(), 9);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn clones_are_independent_cursors() {
        let mut b = BytesMut::new();
        b.put_u32_le(1);
        b.put_u32_le(2);
        let original = b.freeze();
        let mut cursor = original.clone();
        assert_eq!(cursor.get_u32_le(), 1);
        assert_eq!(cursor.remaining(), 4);
        assert_eq!(original.remaining(), 8);
        cursor.advance(4);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn zeroed_and_split() {
        let z = BytesMut::zeroed(16);
        assert_eq!(z.len(), 16);
        let mut bytes = z.freeze();
        let front = bytes.split_to(4);
        assert_eq!(front.len(), 4);
        assert_eq!(bytes.len(), 12);
    }
}

//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free API:
//! `lock()` / `read()` / `write()` return guards directly (poison is
//! ignored, matching parking_lot's behavior of not poisoning at all).

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Clone> Clone for Mutex<T> {
    fn clone(&self) -> Self {
        Mutex::new(self.lock().clone())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&*self.lock()).finish()
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&*self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}

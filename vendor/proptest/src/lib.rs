//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest used by the workspace's property tests:
//! range/tuple/`Just`/`any` strategies, `prop_map` / `prop_flat_map` /
//! `prop_filter`, `prop_oneof!`, `proptest::collection::vec`, the
//! `proptest!` macro with `#![proptest_config(..)]`, and the Result-based
//! `prop_assert*` macros.
//!
//! Two deliberate deviations from upstream, both in the direction of CI
//! friendliness:
//!
//! * **Deterministic by construction.** Every test function derives its RNG
//!   seed from its own module path, so a run is exactly reproducible with no
//!   `proptest-regressions/` persistence files. Failure output includes the
//!   case number, which is stable across runs.
//! * **No shrinking.** Failing inputs are reported as-is (instances here are
//!   small by strategy design), keeping worst-case runtime proportional to
//!   the configured case count.
//!
//! The case count honors the `PROPTEST_CASES` environment variable as an
//! override, and is additionally capped at [`MAX_CASES`] so a misconfigured
//! suite cannot stall CI.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod strategy;

pub use strategy::{Just, Strategy, Union};

/// Hard upper bound on cases per property, keeping `cargo test` CI-friendly.
pub const MAX_CASES: u32 = 256;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Upper bound on strategy rejections (filters) before giving up.
    pub max_global_rejects: u32,
    /// Accepted for upstream compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65536, max_shrink_iters: 0 }
    }
}

/// Resolves the effective case count: `PROPTEST_CASES` env override if set,
/// else the configured count, capped at [`MAX_CASES`].
pub fn resolved_cases(configured: u32) -> u32 {
    let requested = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(configured);
    requested.clamp(1, MAX_CASES)
}

/// Why a test case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The input was rejected (filter); does not count as a failure.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Creates a rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives one property: draws inputs from `strategy` until the configured
/// number of accepted cases ran, panicking on the first failing case.
///
/// This is the engine behind the [`proptest!`] macro. Taking the case as a
/// generic `FnMut(S::Value)` is load-bearing: the closure the macro builds
/// gets its parameter types from this signature.
pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strategy: &S, mut case: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> TestCaseResult,
{
    let cases = resolved_cases(config.cases);
    let mut rng = TestRng::for_test(name);
    let mut accepted: u32 = 0;
    let mut rejected: u32 = 0;
    while accepted < cases {
        match strategy.sample(&mut rng) {
            Some(value) => {
                accepted += 1;
                match case(value) {
                    Ok(()) => {}
                    Err(TestCaseError::Reject(_)) => {
                        accepted -= 1;
                        rejected += 1;
                    }
                    Err(TestCaseError::Fail(reason)) => {
                        panic!(
                            "property {name} failed on deterministic case \
                             #{accepted} of {cases}: {reason}"
                        );
                    }
                }
            }
            None => rejected += 1,
        }
        assert!(
            rejected <= config.max_global_rejects,
            "property {name}: too many strategy rejections ({rejected})"
        );
    }
}

/// The deterministic generator driving strategy sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x0051_eedb_adca_fe00 }
    }

    /// Creates the generator for a named test: the seed is the FNV-1a hash
    /// of the name, so every property has its own stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(hash)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A strategy producing any value of `T` (the `any::<T>()` entry point).
pub struct Any<T>(PhantomData<T>);

/// Returns the full-range strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.next_u64() as $t)
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> Option<bool> {
        Some(rng.next_u64() & 1 == 1)
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        Some(rng.unit_f64())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "cannot sample empty range strategy");
                let span = (self.end - self.start) as u64;
                Some(self.start + rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range strategy");
                let span = (hi - lo) as u64 + 1;
                Some(lo + rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "cannot sample empty range strategy");
        Some(self.start + (self.end - self.start) * rng.unit_f64())
    }
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// so `?`-style helpers compose.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` ({}) at {}:{}",
                l,
                r,
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}` ({}) at {}:{}",
                l,
                r,
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

/// Picks uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let arms = $crate::Union::empty();
        $(let arms = arms.with($strategy);)+
        arms
    }};
}

/// Declares property tests, mirroring upstream `proptest!` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                &config,
                &($($strategy,)+),
                |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_are_uniformish_and_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        let mut seen = [false; 8];
        for _ in 0..200 {
            let v = Strategy::sample(&(2usize..10), &mut rng).unwrap();
            assert!((2..10).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_test("combinators");
        let strat = (1usize..5)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0usize..n, n)))
            .prop_map(|(n, v)| (n, v.len()))
            .prop_filter("nonempty", |(n, _)| *n > 1);
        let mut kept = 0;
        for _ in 0..100 {
            if let Some((n, len)) = Strategy::sample(&strat, &mut rng) {
                assert_eq!(n, len);
                assert!(n > 1);
                kept += 1;
            }
        }
        assert!(kept > 10);
    }

    #[test]
    fn oneof_picks_all_arms() {
        let mut rng = TestRng::for_test("oneof");
        let strat = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng).unwrap();
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_runnable_properties(x in 0usize..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            if flip {
                prop_assert_ne!(x + 1, x);
            }
            prop_assert_eq!(x, x, "x themselves {}", x);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let sample = |label: &str| {
            let mut rng = TestRng::for_test(label);
            (0..10).map(|_| Strategy::sample(&(0u64..1000), &mut rng).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(sample("a"), sample("a"));
        assert_ne!(sample("a"), sample("b"));
    }
}

//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// The admissible lengths of a generated collection.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub lo: usize,
    /// Maximum length (inclusive).
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            // One retry budget per element: a rejected element rejects the
            // whole vector, mirroring upstream's local-rejection accounting.
            out.push(self.element.sample(rng)?);
        }
        Some(out)
    }
}

/// Generates vectors whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = TestRng::for_test("vec-bounds");
        let strat = vec(0usize..5, 2..7);
        for _ in 0..100 {
            let v = strat.sample(&mut rng).unwrap();
            assert!((2..=6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = vec(0usize..5, 4usize);
        assert_eq!(exact.sample(&mut rng).unwrap().len(), 4);
    }
}

//! The [`Strategy`] trait and its combinators.

use crate::TestRng;

/// A recipe for generating values of one type.
///
/// `sample` returns `None` when the drawn input was rejected (by a
/// `prop_filter`); the runner retries rejected draws up to the configured
/// rejection budget.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values for which `f` returns `false`.
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, _whence: whence.into(), f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<T::Value> {
        let outer = self.inner.sample(rng)?;
        (self.f)(outer).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    _whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        let value = self.inner.sample(rng)?;
        if (self.f)(&value) {
            Some(value)
        } else {
            None
        }
    }
}

/// Uniform choice among several strategies of the same value type
/// (the `prop_oneof!` macro builds one of these).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms (at least one required).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Creates a union with no arms yet; sampling before any [`Union::with`]
    /// call panics.
    pub fn empty() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds one arm. Taking `S: Strategy<Value = T>` by generic argument
    /// (rather than a pre-boxed trait object) lets integer literals in the
    /// arms unify with the union's value type.
    pub fn with<S: Strategy<Value = T> + 'static>(mut self, arm: S) -> Self {
        self.arms.push(Box::new(arm));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` traits are markers, so the derives only need the
//! deriving type's name and generic parameters — parsed directly from the
//! token stream (no `syn`/`quote` available offline). `#[serde(...)]`
//! attributes are accepted and ignored, exactly as inert helper attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed header of a `struct`/`enum` item: its name plus the raw
/// generics tokens (e.g. `<'a, T: Bound>`), if any.
struct ItemHeader {
    name: String,
    /// Generic parameter *names* (lifetimes and type idents) for the impl's
    /// use-site (`Foo<'a, T>`).
    params: Vec<String>,
    /// The full generics clause verbatim, bounds included, for the impl's
    /// declaration site (`impl<'a, T: Bound>`).
    decl: String,
}

fn parse_header(input: TokenStream) -> ItemHeader {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let name = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // consume the bracket group of the attribute
                let _ = iter.next();
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "pub" {
                    // optional restriction group: pub(crate) etc.
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = iter.next();
                        }
                    }
                } else if word == "struct" || word == "enum" || word == "union" {
                    match iter.next() {
                        Some(TokenTree::Ident(n)) => break n.to_string(),
                        other => panic!("expected type name after `{word}`, found {other:?}"),
                    }
                }
                // any other ident (e.g. `r#` raw forms are idents already) — keep scanning
            }
            Some(_) => {}
            None => panic!("serde derive: no struct/enum found in input"),
        }
    };

    // Optionally parse `<...>` generics immediately after the name.
    let mut params = Vec::new();
    let mut decl = String::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            let mut expect_param = true;
            for tt in iter.by_ref() {
                match &tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            decl.push('>');
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
                    TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expect_param => {
                        params.push("'".to_string());
                    }
                    TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                        expect_param = false;
                    }
                    TokenTree::Ident(id) if depth == 1 && expect_param => {
                        match params.last_mut() {
                            Some(last) if last == "'" => last.push_str(&id.to_string()),
                            _ => params.push(id.to_string()),
                        }
                        expect_param = false;
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                    }
                    _ => {}
                }
                decl.push_str(&tt.to_string());
                decl.push(' ');
                // restore comma-resets consumed by the ident arm above
                if let TokenTree::Punct(p) = &tt {
                    if p.as_char() == ',' && depth == 1 {
                        expect_param = true;
                    }
                }
            }
        }
    }

    ItemHeader { name, params, decl }
}

fn use_site(header: &ItemHeader) -> String {
    if header.params.is_empty() {
        header.name.clone()
    } else {
        format!("{}<{}>", header.name, header.params.join(", "))
    }
}

/// Derives the (marker) `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let header = parse_header(input);
    let decl = &header.decl;
    let target = use_site(&header);
    let bounds: String = header
        .params
        .iter()
        .filter(|p| !p.starts_with('\''))
        .map(|p| format!("{p}: ::serde::Serialize,"))
        .collect();
    let code = if header.params.is_empty() {
        format!("impl ::serde::Serialize for {target} {{}}")
    } else {
        format!("impl{decl} ::serde::Serialize for {target} where {bounds} {{}}")
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the (marker) `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let header = parse_header(input);
    let target = use_site(&header);
    let code = if header.params.is_empty() {
        format!("impl<'de> ::serde::Deserialize<'de> for {target} {{}}")
    } else {
        let decl_inner = header
            .decl
            .trim_start_matches('<')
            .trim_end_matches('>')
            .trim()
            .trim_end_matches(',')
            .to_string();
        let bounds: String = header
            .params
            .iter()
            .filter(|p| !p.starts_with('\''))
            .map(|p| format!("{p}: ::serde::Deserialize<'de>,"))
            .collect();
        format!(
            "impl<'de, {decl_inner}> ::serde::Deserialize<'de> for {target} where {bounds} {{}}"
        )
    };
    code.parse().expect("generated Deserialize impl parses")
}

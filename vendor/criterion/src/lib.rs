//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset of the criterion API the bench targets use:
//! `Criterion::default()` with the `sample_size` / `warm_up_time` /
//! `measurement_time` builders, benchmark groups, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a plain
//! wall-clock mean over the sample count (no outlier analysis, no plots);
//! results are printed one line per benchmark:
//!
//! ```text
//! group/function          time: [   1.2345 ms]  (10 samples)
//! ```
//!
//! The harness honors benchmark name filters passed on the command line
//! (`cargo bench -- <substring>`) and the `--test` flag cargo uses for
//! bench targets in test mode (each benchmark then runs exactly once).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark configuration and driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        // cargo passes `--bench`; the first non-flag argument is a filter.
        let filter = args.iter().find(|a| !a.starts_with("--")).cloned();
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, f);
        self
    }

    fn run_one<F>(&self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: if self.test_mode { 1 } else { self.sample_size },
            warm_up_time: if self.test_mode { Duration::ZERO } else { self.warm_up_time },
            measurement_time: self.measurement_time,
            mean: Duration::ZERO,
            samples: 0,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{id}: bench target ok (test mode)");
        } else {
            println!("{:<50} time: [{:>12.4?}]  ({} samples)", id, bencher.mean, bencher.samples);
        }
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&id, f);
        self
    }

    /// Finishes the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mean: Duration,
    samples: usize,
}

impl Bencher {
    /// Measures the mean wall-clock time of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1);

        // Budget the sample count so one benchmark cannot exceed the
        // measurement time by more than ~one iteration.
        let affordable = if per_iter.is_zero() {
            self.sample_size
        } else {
            let fit = self.measurement_time.as_nanos() / per_iter.as_nanos().max(1);
            (fit as usize).clamp(1, self.sample_size)
        };

        let start = Instant::now();
        for _ in 0..affordable {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.samples = affordable;
        self.mean = elapsed / affordable as u32;
    }
}

/// Declares a group of benchmark targets with an optional configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_respects_budget() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        // force non-test mode regardless of harness args
        c.test_mode = false;
        c.filter = None;
        let mut group = c.benchmark_group("g");
        group.bench_function("work", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion::default().sample_size(2);
        c.filter = Some("nomatch".into());
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(!ran, "filtered benchmark must not run");
    }
}

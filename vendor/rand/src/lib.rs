//! Offline stand-in for the `rand` 0.8 crate.
//!
//! Implements the subset of the `rand` API the workspace uses: the
//! [`RngCore`] / [`SeedableRng`] core traits, the ergonomic [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), slice shuffling and
//! distinct-index sampling under [`seq`]. Generators are deterministic for a
//! given seed, which is all the datagen layer relies on.

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit values.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let v = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// deterministic and well mixed, as in upstream `rand`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from the generator's full output range.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types with a uniform sampler over a sub-range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)`. `hi > lo` is guaranteed by callers.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64, far below
                // anything the experiments can observe.
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f32::sample_standard(rng)
    }
}

mod sealed {
    /// Marks integer `SampleUniform` types, whose inclusive ranges can step
    /// the upper bound by one.
    pub trait UniformInt {
        fn successor(self) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl UniformInt for $t {
                fn successor(self) -> Self {
                    self.checked_add(1).expect("inclusive range upper bound overflows")
                }
            }
        )*};
    }

    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + sealed::UniformInt + PartialOrd + Copy> SampleRange<T>
    for RangeInclusive<T>
{
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_range(rng, lo, hi.successor())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        f64::sample_range(rng, lo, hi)
    }
}

/// Ergonomic sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full range for integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers: shuffling and distinct-index sampling.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait adding in-place shuffling to slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Distinct-index sampling.
    pub mod index {
        use super::super::{Rng, RngCore};

        /// A set of distinct indices sampled from `0..length`.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Returns `true` if no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Consumes the set into a `Vec`.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length` by a
        /// partial Fisher–Yates pass. Panics if `amount > length`, like
        /// upstream `rand`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length} indices");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

/// Convenience generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast deterministic generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng { state: u64::from_le_bytes(seed) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1u8..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(0.5f64..=2.0);
            assert!((0.5..=2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn sample_yields_distinct_indices() {
        let mut rng = SmallRng::seed_from_u64(7);
        let idx = sample(&mut rng, 100, 20);
        assert_eq!(idx.len(), 20);
        let mut v = idx.into_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 20);
        assert!(v.iter().all(|&i| i < 100));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize` / `Deserialize` on its data types so
//! they are wire-ready for any serde data format, but no code path in the
//! repo actually serializes through a format crate (none is available
//! offline). This stub therefore keeps the *trait bounds* honest — types
//! still assert `T: Serialize + DeserializeOwned` at compile time and the
//! derives still validate their `#[serde(...)]` attributes syntactically —
//! while the traits carry no methods. Swapping in real serde later is a
//! manifest-only change.

// Lets the `::serde::...` paths the derives emit resolve inside this crate's
// own tests as well.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
///
/// In real serde this carries `fn serialize<S: Serializer>`; the offline
/// stand-in keeps only the bound so signatures and derives line up.
pub trait Serialize {}

/// Marker for types that can be deserialized from borrowed data.
pub trait Deserialize<'de>: Sized {}

/// Deserialization helpers (`serde::de`).
pub mod de {
    /// Marker for types deserializable from any lifetime (owned data).
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}

    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

macro_rules! impl_primitive {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitive!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

macro_rules! impl_tuple {
    ($($name:ident)+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {}
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {}
    };
}

impl_tuple!(A);
impl_tuple!(A B);
impl_tuple!(A B C);
impl_tuple!(A B C D);
impl_tuple!(A B C D E);
impl_tuple!(A B C D E F);

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, S: Default> Deserialize<'de>
    for std::collections::HashMap<K, V, S>
{
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}

#[cfg(test)]
mod tests {
    // The fixture types only exercise the derives; their fields are
    // intentionally never read.
    #![allow(dead_code)]

    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Plain {
        a: u32,
        b: Vec<f64>,
    }

    #[derive(Serialize, Deserialize)]
    #[serde(transparent)]
    struct Transparent(u64);

    #[derive(Serialize, Deserialize)]
    enum Kind {
        One,
        Two(u8),
    }

    fn assert_owned<T: Serialize + de::DeserializeOwned>() {}

    #[test]
    fn derives_produce_both_impls() {
        assert_owned::<Plain>();
        assert_owned::<Transparent>();
        assert_owned::<Kind>();
        assert_owned::<Vec<(u32, String)>>();
    }
}

//! Criterion bench for Fig. 16: cost versus data density on a BRITE-like
//! topology (all four algorithms, k = 1).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use rnn_bench::harness::{measure_restricted, Workload};
use rnn_core::materialize::MaterializedKnn;
use rnn_core::Algorithm;
use rnn_datagen::{brite_topology, place_points_on_nodes, sample_node_queries, BriteConfig};

fn bench(c: &mut Criterion) {
    let graph = brite_topology(&BriteConfig { num_nodes: 10_000, ..Default::default() });
    let mut group = c.benchmark_group("fig16_brite_density");
    for density in [0.0025, 0.01, 0.1] {
        let points = place_points_on_nodes(&graph, density, 3);
        let queries = sample_node_queries(&points, 5, 5);
        let workload = Workload::new(graph.clone(), points, queries);
        let table = MaterializedKnn::build(&workload.graph, &workload.points, 1);
        for algo in Algorithm::PAPER {
            let t = if algo.needs_materialization() { Some(&table) } else { None };
            group.bench_function(format!("{algo}/D={density}"), |b| {
                b.iter(|| measure_restricted(algo, &workload, t, 1))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick_criterion();
    targets = bench
}
criterion_main!(benches);

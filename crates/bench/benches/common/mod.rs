//! Shared helpers for the criterion benches.
//!
//! Every bench times one of the paper's experiments at a reduced size so that
//! `cargo bench --workspace` finishes in minutes; the `repro` binary is the
//! tool for paper-style tables with I/O accounting.

use criterion::Criterion;

/// A criterion configuration small enough for the whole suite to run quickly.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

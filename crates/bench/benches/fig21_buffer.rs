//! Criterion bench for Fig. 21: cost versus buffer size and eviction policy
//! on the SF-like road network (D = 0.01, k = 1).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use rnn_bench::harness::{measure_restricted, Workload};
use rnn_core::Algorithm;
use rnn_datagen::{
    place_points_on_nodes, sample_node_queries, spatial_road_network, SpatialConfig,
};
use rnn_storage::{BufferPoolConfig, EvictionPolicy};

fn bench(c: &mut Criterion) {
    let net = spatial_road_network(&SpatialConfig { num_nodes: 5_000, ..Default::default() });
    let points = place_points_on_nodes(&net.graph, 0.01, 3);
    let queries = sample_node_queries(&points, 5, 5);
    let mut group = c.benchmark_group("fig21_buffer");
    for buffer in [0usize, 64, 256] {
        for policy in EvictionPolicy::ALL {
            if buffer == 0 && policy != EvictionPolicy::Lru {
                // An empty pool never picks a victim; one row covers all
                // three policies.
                continue;
            }
            let workload = Workload::with_buffer_config(
                net.graph.clone(),
                points.clone(),
                queries.clone(),
                BufferPoolConfig::new(buffer).with_policy(policy),
            );
            for algo in [Algorithm::Eager, Algorithm::Lazy] {
                group.bench_function(format!("{algo}/buffer={buffer}/{}", policy.name()), |b| {
                    b.iter(|| measure_restricted(algo, &workload, None, 1))
                });
            }
        }
    }
    // The striped serving configuration: same 256-page capacity over 8
    // independently locked shards (single-threaded here, this measures the
    // sharding overhead on the sequential path — the concurrency win is
    // measured by `repro paged-scaling`).
    let striped = Workload::with_buffer_config(
        net.graph.clone(),
        points.clone(),
        queries.clone(),
        BufferPoolConfig::new(256).with_shards(8),
    );
    for algo in [Algorithm::Eager, Algorithm::Lazy] {
        group.bench_function(format!("{algo}/buffer=256x8shards"), |b| {
            b.iter(|| measure_restricted(algo, &striped, None, 1))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick_criterion();
    targets = bench
}
criterion_main!(benches);

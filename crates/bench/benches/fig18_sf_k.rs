//! Criterion bench for Fig. 18: cost versus k on the SF-like road network
//! (unrestricted queries, D = 0.01).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use rnn_bench::harness::{measure_unrestricted, UnrestrictedWorkload};
use rnn_core::Algorithm;
use rnn_datagen::{
    place_points_on_edges, sample_edge_queries, spatial_road_network, SpatialConfig,
};

fn bench(c: &mut Criterion) {
    let net = spatial_road_network(&SpatialConfig { num_nodes: 5_000, ..Default::default() });
    let points = place_points_on_edges(&net.graph, 0.01, 3);
    let queries = sample_edge_queries(&points, 5, 5);
    let workload = UnrestrictedWorkload::with_buffer(net.graph.clone(), points, queries, 256);
    let mut group = c.benchmark_group("fig18_sf_k");
    for k in [1usize, 2, 8] {
        for algo in Algorithm::PAPER {
            group.bench_function(format!("{algo}/k={k}"), |b| {
                b.iter(|| measure_unrestricted(algo, &workload, k, 8))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick_criterion();
    targets = bench
}
criterion_main!(benches);

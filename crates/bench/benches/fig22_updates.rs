//! Criterion bench for Fig. 22: maintenance of the materialized k-NN table —
//! insertion/deletion cost versus density (Fig. 22a) and versus K (Fig. 22b).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use rnn_bench::harness::{measure_updates, Workload};
use rnn_datagen::{place_points_on_nodes, spatial_road_network, SpatialConfig};
use rnn_graph::{NodeId, PointsOnNodes};

fn workload(density: f64) -> (Workload, Vec<NodeId>, Vec<NodeId>) {
    let net = spatial_road_network(&SpatialConfig { num_nodes: 5_000, ..Default::default() });
    let points = place_points_on_nodes(&net.graph, density, 3);
    let inserts: Vec<NodeId> = (0..net.graph.num_nodes())
        .map(NodeId::new)
        .filter(|n| !points.contains_node(*n))
        .take(10)
        .collect();
    let deletes: Vec<NodeId> = points.nodes().iter().copied().take(10).collect();
    (Workload::new(net.graph, points, Vec::new()), inserts, deletes)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig22_updates");
    // Fig. 22a: density sweep at K = 1.
    for density in [0.01, 0.1] {
        let (w, inserts, deletes) = workload(density);
        group.bench_function(format!("K=1/D={density}"), |b| {
            b.iter(|| measure_updates(&w.paged, &w.points, 1, &inserts, &deletes))
        });
    }
    // Fig. 22b: K sweep at D = 0.01.
    let (w, inserts, deletes) = workload(0.01);
    for capacity_k in [2usize, 8] {
        group.bench_function(format!("K={capacity_k}/D=0.01"), |b| {
            b.iter(|| measure_updates(&w.paged, &w.points, capacity_k, &inserts, &deletes))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick_criterion();
    targets = bench
}
criterion_main!(benches);

//! Criterion bench for Fig. 19: continuous RNN queries versus route size on
//! the SF-like road network (D = 0.01, k = 1).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use rnn_bench::harness::{measure_continuous, Workload};
use rnn_core::Algorithm;
use rnn_datagen::{place_points_on_nodes, sample_routes, spatial_road_network, SpatialConfig};

fn bench(c: &mut Criterion) {
    let net = spatial_road_network(&SpatialConfig { num_nodes: 5_000, ..Default::default() });
    let points = place_points_on_nodes(&net.graph, 0.01, 3);
    let workload = Workload::new(net.graph, points, Vec::new());
    let mut group = c.benchmark_group("fig19_continuous");
    for len in [4usize, 16, 32] {
        let routes = sample_routes(&workload.graph, len, 5, 9 + len as u64);
        for algo in [Algorithm::Eager, Algorithm::Lazy] {
            group.bench_function(format!("{algo}/route={len}"), |b| {
                b.iter(|| measure_continuous(algo, &workload.paged, &workload.points, &routes, 1))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick_criterion();
    targets = bench
}
criterion_main!(benches);

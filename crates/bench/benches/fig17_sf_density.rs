//! Criterion bench for Fig. 17: cost versus density on the SF-like road
//! network with data points on edges (unrestricted queries, k = 1).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use rnn_bench::harness::{measure_unrestricted, UnrestrictedWorkload};
use rnn_core::Algorithm;
use rnn_datagen::{
    place_points_on_edges, sample_edge_queries, spatial_road_network, SpatialConfig,
};

fn bench(c: &mut Criterion) {
    let net = spatial_road_network(&SpatialConfig { num_nodes: 5_000, ..Default::default() });
    let mut group = c.benchmark_group("fig17_sf_density");
    for density in [0.0025, 0.01, 0.1] {
        let points = place_points_on_edges(&net.graph, density, 3);
        let queries = sample_edge_queries(&points, 5, 5);
        let workload = UnrestrictedWorkload::with_buffer(net.graph.clone(), points, queries, 256);
        for algo in Algorithm::PAPER {
            group.bench_function(format!("{algo}/D={density}"), |b| {
                b.iter(|| measure_unrestricted(algo, &workload, 1, 1))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick_criterion();
    targets = bench
}
criterion_main!(benches);

//! Criterion bench for Fig. 15: cost versus network size on BRITE-like
//! topologies with exponential expansion (all four algorithms, D = 0.01,
//! k = 1).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use rnn_bench::harness::{measure_restricted, Workload};
use rnn_core::materialize::MaterializedKnn;
use rnn_core::Algorithm;
use rnn_datagen::{brite_topology, place_points_on_nodes, sample_node_queries, BriteConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_brite_size");
    for nodes in [5_000usize, 10_000, 20_000] {
        let graph = brite_topology(&BriteConfig { num_nodes: nodes, ..Default::default() });
        let points = place_points_on_nodes(&graph, 0.01, 3);
        let queries = sample_node_queries(&points, 5, 5);
        let workload = Workload::new(graph, points, queries);
        let table = MaterializedKnn::build(&workload.graph, &workload.points, 1);
        for algo in Algorithm::PAPER {
            let t = if algo.needs_materialization() { Some(&table) } else { None };
            group.bench_function(format!("{algo}/V={nodes}"), |b| {
                b.iter(|| measure_restricted(algo, &workload, t, 1))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick_criterion();
    targets = bench
}
criterion_main!(benches);

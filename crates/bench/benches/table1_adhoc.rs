//! Criterion bench for Table 1: ad hoc RNN queries on the coauthorship graph
//! (eager vs lazy, k = 1, predicate selectivity as the varying parameter).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use rnn_bench::harness::{measure_restricted, Workload};
use rnn_core::Algorithm;
use rnn_datagen::{coauthorship_graph, sample_node_queries, CoauthorConfig};
use rnn_graph::PointsOnNodes;

fn bench(c: &mut Criterion) {
    let co = coauthorship_graph(&CoauthorConfig {
        num_authors: 2_000,
        num_papers: 2_400,
        ..Default::default()
    });
    let mut group = c.benchmark_group("table1_adhoc");
    for threshold in [1u32, 2, 5] {
        let points = co.authors_with_at_least(threshold);
        if points.is_empty() {
            continue;
        }
        let queries = sample_node_queries(&points, 10, 7);
        let workload = Workload::new(co.graph.clone(), points, queries);
        for algo in [Algorithm::Eager, Algorithm::Lazy] {
            group.bench_function(format!("{algo}/papers>={threshold}"), |b| {
                b.iter(|| measure_restricted(algo, &workload, None, 1))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick_criterion();
    targets = bench
}
criterion_main!(benches);

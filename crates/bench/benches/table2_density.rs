//! Criterion bench for Table 2: RNN cost versus data density on the
//! coauthorship graph (eager vs lazy, k = 1).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use rnn_bench::harness::{measure_restricted, Workload};
use rnn_core::Algorithm;
use rnn_datagen::{coauthorship_graph, place_points_on_nodes, sample_node_queries, CoauthorConfig};

fn bench(c: &mut Criterion) {
    let co = coauthorship_graph(&CoauthorConfig {
        num_authors: 2_000,
        num_papers: 2_400,
        ..Default::default()
    });
    let mut group = c.benchmark_group("table2_density");
    for density in [0.0125, 0.05, 0.1] {
        let points = place_points_on_nodes(&co.graph, density, 3);
        let queries = sample_node_queries(&points, 10, 5);
        let workload = Workload::new(co.graph.clone(), points, queries);
        for algo in [Algorithm::Eager, Algorithm::Lazy] {
            group.bench_function(format!("{algo}/D={density}"), |b| {
                b.iter(|| measure_restricted(algo, &workload, None, 1))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick_criterion();
    targets = bench
}
criterion_main!(benches);

//! Criterion bench for Fig. 20: grid maps — cost versus network size
//! (Fig. 20a) and versus average degree (Fig. 20b), D = 0.01, k = 1.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use rnn_bench::harness::{measure_restricted, Workload};
use rnn_core::materialize::MaterializedKnn;
use rnn_core::Algorithm;
use rnn_datagen::{grid_map, place_points_on_nodes, sample_node_queries, GridConfig};

fn run_case(c: &mut Criterion, group_name: &str, nodes: usize, degree: f64) {
    let graph = grid_map(&GridConfig::with_nodes(nodes, degree, 11));
    let points = place_points_on_nodes(&graph, 0.01, 3);
    let queries = sample_node_queries(&points, 5, 5);
    let workload = Workload::new(graph, points, queries);
    let table = MaterializedKnn::build(&workload.graph, &workload.points, 1);
    let mut group = c.benchmark_group(group_name);
    for algo in Algorithm::PAPER {
        let t = if algo.needs_materialization() { Some(&table) } else { None };
        group.bench_function(format!("{algo}/V={nodes}/deg={degree}"), |b| {
            b.iter(|| measure_restricted(algo, &workload, t, 1))
        });
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    // Fig. 20a: size sweep at degree 4.
    for nodes in [2_500usize, 10_000] {
        run_case(c, "fig20a_grid_size", nodes, 4.0);
    }
    // Fig. 20b: degree sweep at a fixed size.
    for degree in [4.0f64, 6.0] {
        run_case(c, "fig20b_grid_degree", 10_000, degree);
    }
}

criterion_group! {
    name = benches;
    config = common::quick_criterion();
    targets = bench
}
criterion_main!(benches);

//! Reproduction harness: prints paper-style rows for every table and figure
//! of the evaluation section.
//!
//! Usage:
//!
//! ```text
//! repro [EXPERIMENT ...] [--full] [--markdown]
//!
//! EXPERIMENT   one or more of: table1 table2 fig15 fig16 fig17 fig18 fig19
//!              fig20a fig20b fig21 fig22a fig22b throughput paged-scaling
//!              index serving all (default: all)
//! --full       use the paper's graph cardinalities instead of the quick,
//!              laptop-friendly sizes
//! --markdown   emit Markdown tables (for EXPERIMENTS.md) instead of plain text
//! ```

use rnn_bench::experiments::{run_by_name, ALL_EXPERIMENTS};
use rnn_bench::Scale;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let markdown = args.iter().any(|a| a == "--markdown");
    let scale = if full { Scale::Full } else { Scale::Quick };

    let mut requested: Vec<String> =
        args.iter().filter(|a| !a.starts_with("--")).cloned().collect();
    if requested.is_empty() || requested.iter().any(|r| r == "all") {
        requested = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    eprintln!("# reproduction run: scale = {:?}, experiments = {}", scale, requested.join(", "));

    let mut failures = 0;
    for name in &requested {
        let started = Instant::now();
        match run_by_name(name, scale) {
            Some(report) => {
                if markdown {
                    println!("{}", report.to_markdown());
                } else {
                    println!("{report}");
                }
                eprintln!("# {name} finished in {:.1?}", started.elapsed());
            }
            None => {
                eprintln!(
                    "unknown experiment '{name}'; available: {} all",
                    ALL_EXPERIMENTS.join(" ")
                );
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(2);
    }
}

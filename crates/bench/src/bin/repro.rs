//! Reproduction harness: prints paper-style rows for every table and figure
//! of the evaluation section.
//!
//! Usage:
//!
//! ```text
//! repro [EXPERIMENT ...] [--full] [--markdown] [--json DIR]
//! repro check --baseline DIR [--fresh DIR]
//!
//! EXPERIMENT   one or more of: table1 table2 fig15 fig16 fig17 fig18 fig19
//!              fig20a fig20b fig21 fig22a fig22b throughput paged-scaling
//!              paging index label-build serving obs-overhead slo all
//!              (default: all)
//! --full       use the paper's graph cardinalities instead of the quick,
//!              laptop-friendly sizes
//! --markdown   emit Markdown tables (for EXPERIMENTS.md) instead of plain text
//! --json DIR   additionally write each report as DIR/BENCH_<experiment>.json
//!              (machine-readable `rnn-bench-report/v1`, committed per PR so
//!              the perf trajectory is diffable)
//!
//! check        the perf-regression gate: compare every BENCH_*.json in the
//!              baseline directory against the same-named fresh artifact
//!              (default fresh dir: .) with per-metric tolerance bands —
//!              wide for machine-dependent throughput, tight for
//!              determinism/size metrics — and exit 1 on any violation
//! ```

use rnn_bench::experiments::{run_by_name, ALL_EXPERIMENTS};
use rnn_bench::{check, Scale};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The JSON artifact name for an experiment: `BENCH_<name>.json`, except
/// where a historical artifact name is already established.
fn json_name(experiment: &str) -> &str {
    match experiment {
        "label-build" => "labels",
        "obs-overhead" => "obs",
        other => other,
    }
}

/// Reads the value of `flag` from `args` (the argument that follows it).
fn flag_value(args: &[String], flag: &str) -> Option<PathBuf> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(PathBuf::from(v)),
        _ => {
            eprintln!("{flag} requires a directory argument");
            std::process::exit(2);
        }
    }
}

/// `repro check`: sweep every `BENCH_*.json` in the baseline directory and
/// compare it against the same-named artifact in the fresh directory.
/// Returns the number of violations (all printed to stderr).
fn run_check(baseline_dir: &Path, fresh_dir: &Path) -> usize {
    let mut artifacts: Vec<PathBuf> = match std::fs::read_dir(baseline_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("cannot read baseline directory {}: {e}", baseline_dir.display());
            std::process::exit(2);
        }
    };
    artifacts.sort();
    if artifacts.is_empty() {
        eprintln!("no BENCH_*.json baselines in {}", baseline_dir.display());
        std::process::exit(2);
    }

    let mut violations = 0;
    for baseline_path in artifacts {
        let name = baseline_path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{name}: unreadable baseline: {e}");
                violations += 1;
                continue;
            }
        };
        let fresh = match std::fs::read_to_string(fresh_dir.join(&name)) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{name}: missing fresh artifact in {}: {e}", fresh_dir.display());
                violations += 1;
                continue;
            }
        };
        let found = check::compare_artifact(&name, &baseline, &fresh);
        if found.is_empty() {
            eprintln!("# {name}: within tolerance");
        }
        for v in &found {
            eprintln!("REGRESSION {v}");
        }
        violations += found.len();
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check") {
        let rest = &args[1..];
        let baseline = flag_value(rest, "--baseline").unwrap_or_else(|| {
            eprintln!("usage: repro check --baseline DIR [--fresh DIR]");
            std::process::exit(2);
        });
        let fresh = flag_value(rest, "--fresh").unwrap_or_else(|| PathBuf::from("."));
        let violations = run_check(&baseline, &fresh);
        if violations > 0 {
            eprintln!("# perf-regression gate: {violations} violation(s)");
            std::process::exit(1);
        }
        eprintln!("# perf-regression gate: all artifacts within tolerance");
        return;
    }
    let full = args.iter().any(|a| a == "--full");
    let markdown = args.iter().any(|a| a == "--markdown");
    let scale = if full { Scale::Full } else { Scale::Quick };
    let json_flag = args.iter().position(|a| a == "--json");
    let json_dir: Option<PathBuf> = json_flag.and_then(|_| flag_value(&args, "--json"));
    let json_dir_arg = json_flag.map(|i| i + 1);

    let mut requested: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| !a.starts_with("--") && Some(i) != json_dir_arg)
        .map(|(_, a)| a.clone())
        .collect();
    if requested.is_empty() || requested.iter().any(|r| r == "all") {
        requested = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    eprintln!("# reproduction run: scale = {:?}, experiments = {}", scale, requested.join(", "));

    let mut failures = 0;
    for name in &requested {
        let started = Instant::now();
        match run_by_name(name, scale) {
            Some(report) => {
                if markdown {
                    println!("{}", report.to_markdown());
                } else {
                    println!("{report}");
                }
                if let Some(dir) = &json_dir {
                    let path = dir.join(format!("BENCH_{}.json", json_name(name)));
                    if let Err(e) = std::fs::write(&path, report.to_json()) {
                        eprintln!("failed to write {}: {e}", path.display());
                        failures += 1;
                    } else {
                        eprintln!("# wrote {}", path.display());
                    }
                }
                eprintln!("# {name} finished in {:.1?}", started.elapsed());
            }
            None => {
                eprintln!(
                    "unknown experiment '{name}'; available: {} all",
                    ALL_EXPERIMENTS.join(" ")
                );
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(2);
    }
}

//! Reproduction harness: prints paper-style rows for every table and figure
//! of the evaluation section.
//!
//! Usage:
//!
//! ```text
//! repro [EXPERIMENT ...] [--full] [--markdown] [--json DIR]
//!
//! EXPERIMENT   one or more of: table1 table2 fig15 fig16 fig17 fig18 fig19
//!              fig20a fig20b fig21 fig22a fig22b throughput paged-scaling
//!              paging index label-build serving obs-overhead all
//!              (default: all)
//! --full       use the paper's graph cardinalities instead of the quick,
//!              laptop-friendly sizes
//! --markdown   emit Markdown tables (for EXPERIMENTS.md) instead of plain text
//! --json DIR   additionally write each report as DIR/BENCH_<experiment>.json
//!              (machine-readable `rnn-bench-report/v1`, committed per PR so
//!              the perf trajectory is diffable)
//! ```

use rnn_bench::experiments::{run_by_name, ALL_EXPERIMENTS};
use rnn_bench::Scale;
use std::time::Instant;

/// The JSON artifact name for an experiment: `BENCH_<name>.json`, except
/// where a historical artifact name is already established.
fn json_name(experiment: &str) -> &str {
    match experiment {
        "label-build" => "labels",
        "obs-overhead" => "obs",
        other => other,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let markdown = args.iter().any(|a| a == "--markdown");
    let scale = if full { Scale::Full } else { Scale::Quick };
    let json_flag = args.iter().position(|a| a == "--json");
    let json_dir: Option<std::path::PathBuf> = json_flag.map(|i| match args.get(i + 1) {
        Some(dir) if !dir.starts_with("--") => std::path::PathBuf::from(dir),
        _ => {
            eprintln!("--json requires a directory argument");
            std::process::exit(2);
        }
    });
    let json_dir_arg = json_flag.map(|i| i + 1);

    let mut requested: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| !a.starts_with("--") && Some(i) != json_dir_arg)
        .map(|(_, a)| a.clone())
        .collect();
    if requested.is_empty() || requested.iter().any(|r| r == "all") {
        requested = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    eprintln!("# reproduction run: scale = {:?}, experiments = {}", scale, requested.join(", "));

    let mut failures = 0;
    for name in &requested {
        let started = Instant::now();
        match run_by_name(name, scale) {
            Some(report) => {
                if markdown {
                    println!("{}", report.to_markdown());
                } else {
                    println!("{report}");
                }
                if let Some(dir) = &json_dir {
                    let path = dir.join(format!("BENCH_{}.json", json_name(name)));
                    if let Err(e) = std::fs::write(&path, report.to_json()) {
                        eprintln!("failed to write {}: {e}", path.display());
                        failures += 1;
                    } else {
                        eprintln!("# wrote {}", path.display());
                    }
                }
                eprintln!("# {name} finished in {:.1?}", started.elapsed());
            }
            None => {
                eprintln!(
                    "unknown experiment '{name}'; available: {} all",
                    ALL_EXPERIMENTS.join(" ")
                );
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(2);
    }
}

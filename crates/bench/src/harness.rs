//! Measurement utilities shared by the experiments and the criterion benches.

use rnn_core::cost::{AverageCost, CostModel, QueryCost};
use rnn_core::materialize::MaterializedKnn;
use rnn_core::unrestricted::{
    transform_to_restricted, unrestricted_eager_rknn, unrestricted_lazy_rknn,
    unrestricted_naive_rknn, EdgePosition,
};
use rnn_core::{run_rknn, Algorithm, Precomputed};
use rnn_graph::{EdgePointSet, Graph, NodeId, NodePointSet, PointId, Route};
use rnn_index::HubLabelIndex;
use rnn_storage::{BufferPoolConfig, IoCounters, IoStats, LayoutStrategy, PagedGraph};
use std::time::{Duration, Instant};

/// Experiment scale: laptop-friendly or the paper's cardinalities.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes (default): every experiment finishes in seconds to a few
    /// minutes on a laptop.
    Quick,
    /// The paper's sizes (up to 360K nodes); substantially slower.
    Full,
}

impl Scale {
    /// Picks `quick` or `full` depending on the scale.
    pub fn pick<T: Copy>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// Number of queries per workload (the paper uses 50).
    pub fn queries(self) -> usize {
        self.pick(20, 50)
    }
}

/// A restricted-network workload ready to be measured: the in-memory graph,
/// its paged counterpart, a data point set and the query nodes.
pub struct Workload {
    /// The in-memory graph (used to build materializations and transforms).
    pub graph: Graph,
    /// The disk-page backed view used for the measured traversals.
    pub paged: PagedGraph,
    /// The data points.
    pub points: NodePointSet,
    /// Query nodes, drawn from the data points.
    pub queries: Vec<NodeId>,
}

impl Workload {
    /// Builds a workload with the paper's default 256-page buffer.
    pub fn new(graph: Graph, points: NodePointSet, queries: Vec<NodeId>) -> Self {
        Self::with_buffer(graph, points, queries, 256)
    }

    /// Builds a workload with an explicit buffer capacity (in pages) and a
    /// single-shard pool (the paper's exact victim order).
    pub fn with_buffer(
        graph: Graph,
        points: NodePointSet,
        queries: Vec<NodeId>,
        buffer_pages: usize,
    ) -> Self {
        Self::with_buffer_config(graph, points, queries, BufferPoolConfig::new(buffer_pages))
    }

    /// Builds a workload with full buffer control (capacity and shard
    /// count), for measuring the striped serving configurations.
    pub fn with_buffer_config(
        graph: Graph,
        points: NodePointSet,
        queries: Vec<NodeId>,
        config: BufferPoolConfig,
    ) -> Self {
        let paged = PagedGraph::build_with_config(
            &graph,
            LayoutStrategy::BfsLocality,
            config,
            IoCounters::new(),
        )
        .expect("paged graph construction");
        Workload { graph, paged, points, queries }
    }
}

/// The averaged outcome of running one algorithm over a workload.
#[derive(Clone, Debug, PartialEq)]
pub struct Measurement {
    /// The algorithm that was measured.
    pub algorithm: Algorithm,
    /// Per-query averages (CPU seconds, buffer faults, page accesses).
    pub avg: AverageCost,
    /// Average result cardinality.
    pub avg_result_size: f64,
}

impl Measurement {
    /// Combined cost in seconds under the paper's 10 ms/fault model.
    pub fn total_seconds(&self) -> f64 {
        self.avg.total_seconds(&CostModel::default())
    }
}

fn finish(
    algorithm: Algorithm,
    cpu: Duration,
    io: IoStats,
    result_total: usize,
    queries: usize,
) -> Measurement {
    let cost = QueryCost::new(cpu, io);
    Measurement {
        algorithm,
        avg: cost.averaged_over(queries),
        avg_result_size: result_total as f64 / queries.max(1) as f64,
    }
}

/// Measures one algorithm over a restricted workload. The buffer is cold at
/// the start of the workload and shared across its queries, as in the paper.
///
/// [`Algorithm::HubLabel`] builds its index here, *before* the cold start:
/// like the caller-provided materialized table, the labeling is
/// preprocessing, so its page accesses stay out of the measured query I/O
/// (the queries themselves then touch no pages at all — that is the point).
pub fn measure_restricted(
    algorithm: Algorithm,
    workload: &Workload,
    table: Option<&MaterializedKnn>,
    k: usize,
) -> Measurement {
    let hub_index = algorithm
        .needs_hub_labels()
        .then(|| HubLabelIndex::build(&workload.paged, &workload.points));
    let mut pre = Precomputed::none();
    if let Some(t) = table {
        pre = pre.with_materialized(t);
    }
    if let Some(ix) = &hub_index {
        pre = pre.with_hub_labels(ix);
    }
    workload.paged.cold_start();
    if let Some(t) = table {
        t.reset_io();
    }
    let mut result_total = 0usize;
    let start = Instant::now();
    for &q in &workload.queries {
        let out = run_rknn(algorithm, &workload.paged, &workload.points, pre, q, k);
        result_total += out.len();
    }
    let cpu = start.elapsed();
    let mut io = workload.paged.io_stats();
    if let Some(t) = table {
        io += t.io_stats();
    }
    finish(algorithm, cpu, io, result_total, workload.queries.len())
}

/// An unrestricted workload: the spatial graph, data points on its edges and
/// query points (drawn from the data points).
pub struct UnrestrictedWorkload {
    /// The in-memory road graph.
    pub graph: Graph,
    /// The paged view used for the measured traversals.
    pub paged: PagedGraph,
    /// Data points on edges.
    pub points: EdgePointSet,
    /// Query points.
    pub queries: Vec<PointId>,
}

impl UnrestrictedWorkload {
    /// Builds an unrestricted workload with a given buffer capacity.
    pub fn with_buffer(
        graph: Graph,
        points: EdgePointSet,
        queries: Vec<PointId>,
        buffer_pages: usize,
    ) -> Self {
        let paged = PagedGraph::build_with(
            &graph,
            LayoutStrategy::BfsLocality,
            buffer_pages,
            IoCounters::new(),
        )
        .expect("paged graph construction");
        UnrestrictedWorkload { graph, paged, points, queries }
    }
}

/// Measures eager / lazy / naive natively on an unrestricted workload.
/// `Algorithm::EagerMaterialized`, `Algorithm::LazyExtendedPruning` and
/// `Algorithm::HubLabel` are measured on the equivalent restricted
/// transformation (see DESIGN.md) — the hub labeling is built over the
/// transformed graph.
pub fn measure_unrestricted(
    algorithm: Algorithm,
    workload: &UnrestrictedWorkload,
    k: usize,
    table_capacity: usize,
) -> Measurement {
    match algorithm {
        Algorithm::Eager | Algorithm::Lazy | Algorithm::Naive => {
            workload.paged.cold_start();
            let mut result_total = 0usize;
            let start = Instant::now();
            for &q in &workload.queries {
                let query = EdgePosition::of_point(&workload.graph, &workload.points, q);
                let out = match algorithm {
                    Algorithm::Eager => unrestricted_eager_rknn(
                        &workload.paged,
                        &workload.graph,
                        &workload.points,
                        &query,
                        k,
                    ),
                    Algorithm::Lazy => unrestricted_lazy_rknn(
                        &workload.paged,
                        &workload.graph,
                        &workload.points,
                        &query,
                        k,
                    ),
                    Algorithm::Naive => unrestricted_naive_rknn(
                        &workload.paged,
                        &workload.graph,
                        &workload.points,
                        &query,
                        k,
                    ),
                    Algorithm::EagerMaterialized
                    | Algorithm::LazyExtendedPruning
                    | Algorithm::HubLabel => {
                        unreachable!("handled by the transform branch of the outer match")
                    }
                };
                result_total += out.len();
            }
            let cpu = start.elapsed();
            finish(algorithm, cpu, workload.paged.io_stats(), result_total, workload.queries.len())
        }
        Algorithm::EagerMaterialized | Algorithm::LazyExtendedPruning | Algorithm::HubLabel => {
            // Transform to a restricted instance and measure there.
            let view = transform_to_restricted(&workload.graph, &workload.points)
                .expect("datagen produces transformable instances");
            let queries: Vec<NodeId> =
                workload.queries.iter().map(|&q| view.node_of_point[q.index()]).collect();
            let restricted = Workload::with_buffer(
                view.graph.clone(),
                view.points.clone(),
                queries,
                workload.paged.buffer_capacity(),
            );
            let table = if algorithm.needs_materialization() {
                Some(MaterializedKnn::build(
                    &restricted.paged,
                    &restricted.points,
                    table_capacity.max(k),
                ))
            } else {
                None
            };
            measure_restricted(algorithm, &restricted, table.as_ref(), k)
        }
    }
}

/// Measures continuous queries (eager or lazy) over routes on a restricted
/// workload view of the graph.
pub fn measure_continuous(
    algorithm: Algorithm,
    paged: &PagedGraph,
    points: &NodePointSet,
    routes: &[Route],
    k: usize,
) -> Measurement {
    paged.cold_start();
    let mut result_total = 0usize;
    let start = Instant::now();
    for route in routes {
        let out = match algorithm {
            Algorithm::Eager => {
                rnn_core::continuous::continuous_eager_rknn(paged, points, route, k)
            }
            Algorithm::Lazy => rnn_core::continuous::continuous_lazy_rknn(paged, points, route, k),
            Algorithm::Naive => {
                rnn_core::continuous::naive_continuous_rknn(paged, points, route, k)
            }
            Algorithm::EagerMaterialized | Algorithm::LazyExtendedPruning | Algorithm::HubLabel => {
                // No continuous variant exists for these (the paper evaluates
                // eager/lazy; hub labels would need a route-transformed
                // labeling). Fail loudly instead of silently measuring a
                // stand-in.
                panic!("continuous measurement supports eager / lazy / naive, not {algorithm}")
            }
        };
        result_total += out.len();
    }
    let cpu = start.elapsed();
    finish(algorithm, cpu, paged.io_stats(), result_total, routes.len())
}

/// Measures the maintenance cost of the materialized k-NN table: the average
/// cost of an insertion and of a deletion, in the same units as queries.
pub fn measure_updates(
    paged: &PagedGraph,
    points: &NodePointSet,
    capacity_k: usize,
    insert_nodes: &[NodeId],
    delete_nodes: &[NodeId],
) -> (AverageCost, AverageCost) {
    let mut table = MaterializedKnn::build(paged, points, capacity_k);

    paged.cold_start();
    table.reset_io();
    let start = Instant::now();
    for &n in insert_nodes {
        table.insert_point(paged, n);
    }
    let cpu = start.elapsed();
    let mut io = paged.io_stats();
    io += table.io_stats();
    let inserts = QueryCost::new(cpu, io).averaged_over(insert_nodes.len());

    paged.cold_start();
    table.reset_io();
    let start = Instant::now();
    for &n in delete_nodes {
        table.delete_point(paged, n);
    }
    let cpu = start.elapsed();
    let mut io = paged.io_stats();
    io += table.io_stats();
    let deletes = QueryCost::new(cpu, io).averaged_over(delete_nodes.len());

    (inserts, deletes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_datagen::{grid_map, place_points_on_nodes, sample_node_queries, GridConfig};

    fn small_workload() -> Workload {
        let g = grid_map(&GridConfig { rows: 20, cols: 20, ..Default::default() });
        let pts = place_points_on_nodes(&g, 0.05, 3);
        let queries = sample_node_queries(&pts, 5, 4);
        Workload::new(g, pts, queries)
    }

    #[test]
    fn all_algorithms_produce_identical_result_sizes_and_positive_io() {
        let w = small_workload();
        let table = MaterializedKnn::build(&w.graph, &w.points, 2);
        let mut sizes = Vec::new();
        for algo in Algorithm::ALL {
            let m = measure_restricted(algo, &w, Some(&table), 1);
            assert_eq!(m.algorithm, algo);
            if algo.needs_hub_labels() {
                // Label-served queries never touch the paged graph; their
                // index construction I/O happens before the cold start.
                assert_eq!(m.avg.accesses, 0.0, "{algo} must answer without page accesses");
            } else {
                assert!(m.avg.accesses > 0.0, "{algo} must access pages");
            }
            assert!(m.total_seconds() >= 0.0);
            sizes.push(m.avg_result_size);
        }
        for s in &sizes {
            assert_eq!(*s, sizes[0], "every algorithm reports the same result sizes");
        }
    }

    #[test]
    fn scale_helpers() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
        assert_eq!(Scale::Full.queries(), 50);
        assert_eq!(Scale::Quick.queries(), 20);
    }

    #[test]
    fn update_measurements_are_positive() {
        let w = small_workload();
        let inserts: Vec<NodeId> = (0..5)
            .map(|i| NodeId::new(i * 7 + 3))
            .filter(|n| {
                use rnn_graph::PointsOnNodes;
                !w.points.contains_node(*n)
            })
            .collect();
        let deletes: Vec<NodeId> = w.points.nodes().iter().take(3).copied().collect();
        let (ins, del) = measure_updates(&w.paged, &w.points, 2, &inserts, &deletes);
        assert!(ins.accesses > 0.0);
        assert!(del.accesses > 0.0);
    }
}

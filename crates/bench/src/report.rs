//! Tabular experiment reports.

use std::fmt;

/// One reproduced table or figure: a header row plus one labelled row per
/// x-axis value, with one numeric column per series (algorithm/metric).
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Experiment identifier (e.g. "Table 1", "Fig 15").
    pub id: String,
    /// Human readable title with the fixed parameters.
    pub title: String,
    /// Name of the x-axis (first column).
    pub x_label: String,
    /// Names of the numeric columns.
    pub columns: Vec<String>,
    /// Rows: x-axis label plus one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row; the number of values must match the number of columns.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        debug_assert_eq!(values.len(), self.columns.len());
        self.rows.push((label.into(), values));
    }

    /// Returns the value at (row, column) if present.
    pub fn value(&self, row: usize, column: usize) -> Option<f64> {
        self.rows.get(row).and_then(|(_, v)| v.get(column)).copied()
    }

    /// Looks up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Renders the report as machine-readable JSON — the cross-PR perf
    /// trajectory format (`BENCH_<experiment>.json`). Hand-rolled because
    /// the workspace's serde is a vendored marker stub: the grammar here is
    /// a flat object with a `schema` tag, so downstream tooling can evolve
    /// it without guessing. Non-finite values serialize as `null` (JSON has
    /// no NaN/Inf).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"rnn-bench-report/v1\",\n");
        out.push_str(&format!("  \"id\": {},\n", json_string(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        out.push_str(&format!("  \"x_label\": {},\n", json_string(&self.x_label)));
        out.push_str("  \"columns\": [");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(c));
        }
        out.push_str("],\n");
        out.push_str("  \"rows\": [\n");
        for (r, (label, values)) in self.rows.iter().enumerate() {
            out.push_str(&format!("    {{\"label\": {}, \"values\": [", json_string(label)));
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_number(*v));
            }
            out.push_str(if r + 1 < self.rows.len() { "]},\n" } else { "]}\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the report as a Markdown table (used by EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("| {} |", self.x_label));
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
        out.push_str(&format!("|{}", "---|".repeat(self.columns.len() + 1)));
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("| {label} |"));
            for v in values {
                out.push_str(&format!(" {} |", format_value(*v)));
            }
            out.push('\n');
        }
        out
    }
}

/// Escapes a string into a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite f64 as a JSON number; NaN and infinities become `null`.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trip float formatting is JSON-compatible.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        write!(f, "{:>18}", self.x_label)?;
        for c in &self.columns {
            write!(f, "{c:>16}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:>18}")?;
            for v in values {
                write!(f, "{:>16}", format_value(*v))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_builds_and_renders() {
        let mut r = Report::new("Fig X", "test", "D", vec!["eager".into(), "lazy".into()]);
        r.push_row("0.01", vec![1.5, 1234.0]);
        r.push_row("0.1", vec![0.25, 0.0]);
        assert_eq!(r.value(0, 1), Some(1234.0));
        assert_eq!(r.value(5, 0), None);
        assert_eq!(r.column_index("lazy"), Some(1));
        assert_eq!(r.column_index("nope"), None);

        let text = r.to_string();
        assert!(text.contains("Fig X"));
        assert!(text.contains("eager"));
        assert!(text.contains("1234"));

        let md = r.to_markdown();
        assert!(md.starts_with("### Fig X"));
        assert!(md.contains("| 0.01 | 1.50 | 1234 |"));
        assert!(md.contains("| 0.1 | 0.2500 | 0 |"));
    }

    #[test]
    fn json_rendering_is_well_formed_and_guards_non_finite() {
        let mut r = Report::new(
            "serving",
            "open-loop \"QoS\"",
            "offered",
            vec!["qps".into(), "p99".into()],
        );
        r.push_row("0.5x", vec![123.25, f64::NAN]);
        r.push_row("1x", vec![0.5, f64::INFINITY]);
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"rnn-bench-report/v1\""));
        assert!(json.contains("\"title\": \"open-loop \\\"QoS\\\"\""), "quotes escaped");
        assert!(json.contains("\"columns\": [\"qps\", \"p99\"]"));
        assert!(json.contains("{\"label\": \"0.5x\", \"values\": [123.25, null]}"));
        assert!(json.contains("{\"label\": \"1x\", \"values\": [0.5, null]}"));
        // Structurally balanced (cheap well-formedness check without a
        // parser dependency).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.ends_with("}\n"));

        assert_eq!(json_string("a\nb\u{1}"), "\"a\\nb\\u0001\"");
        assert_eq!(json_number(2.5), "2.5");
        assert_eq!(json_number(f64::NEG_INFINITY), "null");
    }
}

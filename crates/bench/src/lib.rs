//! Benchmark harness reproducing the paper's experimental evaluation.
//!
//! Section 6 of the paper reports two tables and eight figures. Every one of
//! them is implemented as a function in [`experiments`] that builds the
//! corresponding workload with `rnn-datagen`, runs the algorithms over the
//! disk-page backed graph of `rnn-storage`, and returns a [`report::Report`]
//! whose rows mirror the rows/series of the original table or figure.
//!
//! Two entry points consume those functions:
//!
//! * the `repro` binary (`cargo run -p rnn-bench --release --bin repro`),
//!   which prints paper-style tables; and
//! * the criterion benches (`cargo bench -p rnn-bench`), one per table or
//!   figure, which time the same workloads at reduced scale.
//!
//! The default [`Scale::Quick`] sizes keep the whole suite at laptop scale
//! (tens of thousands of nodes); [`Scale::Full`] uses the paper's
//! cardinalities (up to 360K nodes) and takes correspondingly longer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod experiments;
pub mod harness;
pub mod report;

pub use harness::{Measurement, Scale, Workload};
pub use report::Report;

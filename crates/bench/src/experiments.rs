//! One function per table / figure of the paper's evaluation (Section 6).
//!
//! Every function builds the corresponding workload, measures the algorithms
//! on the disk-page backed graph and returns a [`Report`] whose rows mirror
//! the original table or figure. See DESIGN.md for the per-experiment index
//! and EXPERIMENTS.md for measured-vs-paper numbers.

use crate::harness::{
    measure_continuous, measure_restricted, measure_unrestricted, measure_updates, Measurement,
    Scale, UnrestrictedWorkload, Workload,
};
use crate::report::Report;
use rnn_core::engine::{QueryEngine, Workload as QueryWorkload};
use rnn_core::materialize::MaterializedKnn;
use rnn_core::{run_rknn, run_rknn_with, Algorithm, Precomputed, Scratch};
use rnn_datagen::{
    brite_topology, coauthorship_graph, grid_map, place_points_on_edges, place_points_on_nodes,
    sample_edge_queries, sample_node_queries, sample_routes, spatial_road_network, BriteConfig,
    CoauthorConfig, GridConfig, SpatialConfig,
};
use rnn_graph::{NodeId, PointsOnNodes};
use rnn_index::HubLabelIndex;
use rnn_storage::buffer::DEFAULT_BUFFER_PAGES;
use rnn_storage::{
    BufferPoolConfig, EvictionPolicy, IoCounters, IoStats, LayoutStrategy, PageId, PagedGraph,
};

const SEED: u64 = 42;

/// The four algorithms shown in the paper's figures.
const FIGURE_ALGOS: [Algorithm; 4] = Algorithm::PAPER;

fn cost_columns(algos: &[Algorithm]) -> Vec<String> {
    algos
        .iter()
        .flat_map(|a| {
            [
                format!("{} faults", a.short_name()),
                format!("{} cpu(s)", a.short_name()),
                format!("{} cost(s)", a.short_name()),
            ]
        })
        .collect()
}

fn cost_values(ms: &[Measurement]) -> Vec<f64> {
    ms.iter().flat_map(|m| [m.avg.faults, m.avg.cpu_seconds, m.total_seconds()]).collect()
}

// ---------------------------------------------------------------------------
// Table 1 and Table 2: the DBLP coauthorship graph.
// ---------------------------------------------------------------------------

/// Table 1: ad hoc queries on the coauthorship graph (k = 1). The data set is
/// defined at query time by "at least N SIGMOD papers", so materialization is
/// not applicable and the paper compares eager with lazy.
pub fn table1_adhoc(scale: Scale) -> Report {
    let co = coauthorship_graph(&CoauthorConfig::default());
    let algos = [Algorithm::Eager, Algorithm::Lazy];
    let mut report = Report::new(
        "Table 1",
        format!(
            "ad hoc queries on the coauthorship graph (|V|={}, |E|={}, k=1)",
            co.graph.num_nodes(),
            co.graph.num_edges()
        ),
        "condition",
        cost_columns(&algos),
    );
    for threshold in [1u32, 2, 5] {
        let points = co.authors_with_at_least(threshold);
        if points.is_empty() {
            continue;
        }
        let queries = sample_node_queries(&points, scale.queries(), SEED + threshold as u64);
        let workload = Workload::new(co.graph.clone(), points, queries);
        let ms: Vec<Measurement> =
            algos.iter().map(|&a| measure_restricted(a, &workload, None, 1)).collect();
        report.push_row(
            format!(">= {threshold} SIGMOD papers (sel. {:.3})", co.selectivity(threshold)),
            cost_values(&ms),
        );
    }
    report
}

/// Table 2: cost versus data density on the coauthorship graph (k = 1).
pub fn table2_density(scale: Scale) -> Report {
    let co = coauthorship_graph(&CoauthorConfig::default());
    let algos = [Algorithm::Eager, Algorithm::Lazy];
    let mut report = Report::new(
        "Table 2",
        format!("cost vs density on the coauthorship graph (|V|={}, k=1)", co.graph.num_nodes()),
        "density D",
        cost_columns(&algos),
    );
    for density in [0.0125, 0.025, 0.05, 0.1] {
        let points = place_points_on_nodes(&co.graph, density, SEED);
        let queries = sample_node_queries(&points, scale.queries(), SEED + 1);
        let workload = Workload::new(co.graph.clone(), points, queries);
        let ms: Vec<Measurement> =
            algos.iter().map(|&a| measure_restricted(a, &workload, None, 1)).collect();
        report.push_row(format!("{density}"), cost_values(&ms));
    }
    report
}

// ---------------------------------------------------------------------------
// Fig. 15 / Fig. 16: BRITE topologies (exponential expansion).
// ---------------------------------------------------------------------------

fn measure_brite(
    graph_nodes: usize,
    density: f64,
    k: usize,
    queries: usize,
    seed: u64,
) -> Vec<Measurement> {
    let graph = brite_topology(&BriteConfig { num_nodes: graph_nodes, seed, ..Default::default() });
    let points = place_points_on_nodes(&graph, density, seed + 1);
    let query_nodes = sample_node_queries(&points, queries, seed + 2);
    let workload = Workload::new(graph, points, query_nodes);
    let table = MaterializedKnn::build(&workload.graph, &workload.points, k.max(1));
    FIGURE_ALGOS
        .iter()
        .map(|&a| {
            let t = if a.needs_materialization() { Some(&table) } else { None };
            measure_restricted(a, &workload, t, k)
        })
        .collect()
}

/// Fig. 15: cost versus network size on BRITE-like topologies
/// (D = 0.01, k = 1).
pub fn fig15_brite_size(scale: Scale) -> Report {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[20_000, 40_000, 80_000],
        Scale::Full => &[90_000, 180_000, 270_000, 360_000],
    };
    let mut report = Report::new(
        "Fig 15",
        "cost vs |V| (BRITE-like topology, D=0.01, k=1)",
        "|V|",
        cost_columns(&FIGURE_ALGOS),
    );
    for &n in sizes {
        let ms = measure_brite(n, 0.01, 1, scale.queries(), SEED);
        report.push_row(format!("{n}"), cost_values(&ms));
    }
    report
}

/// Fig. 16: cost versus density on a BRITE-like topology (k = 1).
pub fn fig16_brite_density(scale: Scale) -> Report {
    let nodes = scale.pick(40_000, 160_000);
    let mut report = Report::new(
        "Fig 16",
        format!("cost vs density (BRITE-like topology, |V|={nodes}, k=1)"),
        "density D",
        cost_columns(&FIGURE_ALGOS),
    );
    for density in [0.0025, 0.01, 0.04, 0.1] {
        let ms = measure_brite(nodes, density, 1, scale.queries(), SEED);
        report.push_row(format!("{density}"), cost_values(&ms));
    }
    report
}

// ---------------------------------------------------------------------------
// Fig. 17 / Fig. 18: the San-Francisco-like unrestricted road network.
// ---------------------------------------------------------------------------

fn sf_workload(scale: Scale, density: f64, seed: u64) -> UnrestrictedWorkload {
    let net = spatial_road_network(&SpatialConfig {
        num_nodes: scale.pick(20_000, 175_000),
        seed,
        ..Default::default()
    });
    let points = place_points_on_edges(&net.graph, density, seed + 1);
    let queries = sample_edge_queries(&points, scale.queries(), seed + 2);
    UnrestrictedWorkload::with_buffer(net.graph, points, queries, 256)
}

/// Fig. 17: cost versus density on the road network (unrestricted points,
/// k = 1). Eager and lazy run natively on the unrestricted network; eager-M
/// and lazy-EP run on the equivalent restricted transformation.
pub fn fig17_sf_density(scale: Scale) -> Report {
    let mut report = Report::new(
        "Fig 17",
        format!("cost vs density (SF-like road network, |V|≈{}, k=1)", scale.pick(20_000, 175_000)),
        "density D",
        cost_columns(&FIGURE_ALGOS),
    );
    for density in [0.0025, 0.01, 0.04, 0.1] {
        let workload = sf_workload(scale, density, SEED);
        let ms: Vec<Measurement> =
            FIGURE_ALGOS.iter().map(|&a| measure_unrestricted(a, &workload, 1, 1)).collect();
        report.push_row(format!("{density}"), cost_values(&ms));
    }
    report
}

/// Fig. 18: cost versus k on the road network (D = 0.01).
pub fn fig18_sf_k(scale: Scale) -> Report {
    let workload = sf_workload(scale, 0.01, SEED);
    let mut report = Report::new(
        "Fig 18",
        format!("cost vs k (SF-like road network, |V|≈{}, D=0.01)", scale.pick(20_000, 175_000)),
        "k",
        cost_columns(&FIGURE_ALGOS),
    );
    for k in [1usize, 2, 4, 8] {
        let ms: Vec<Measurement> =
            FIGURE_ALGOS.iter().map(|&a| measure_unrestricted(a, &workload, k, 8)).collect();
        report.push_row(format!("{k}"), cost_values(&ms));
    }
    report
}

// ---------------------------------------------------------------------------
// Fig. 19: continuous queries along routes.
// ---------------------------------------------------------------------------

/// Fig. 19: continuous RNN queries versus route size on the road network
/// (D = 0.01, k = 1). The paper evaluates all four variants; this harness
/// reports the eager and lazy continuous algorithms (Section 5.1).
pub fn fig19_continuous(scale: Scale) -> Report {
    let net = spatial_road_network(&SpatialConfig {
        num_nodes: scale.pick(20_000, 175_000),
        seed: SEED,
        ..Default::default()
    });
    let points = place_points_on_nodes(&net.graph, 0.01, SEED + 1);
    let workload = Workload::new(net.graph, points, Vec::new());
    let algos = [Algorithm::Eager, Algorithm::Lazy];
    let mut report = Report::new(
        "Fig 19",
        "continuous queries: cost vs route size (SF-like road network, D=0.01, k=1)",
        "route nodes",
        cost_columns(&algos),
    );
    for len in [4usize, 8, 16, 32] {
        let routes =
            sample_routes(&workload.graph, len, scale.queries().min(20), SEED + len as u64);
        let ms: Vec<Measurement> = algos
            .iter()
            .map(|&a| measure_continuous(a, &workload.paged, &workload.points, &routes, 1))
            .collect();
        report.push_row(format!("{len}"), cost_values(&ms));
    }
    report
}

// ---------------------------------------------------------------------------
// Fig. 20: synthetic grid maps.
// ---------------------------------------------------------------------------

fn measure_grid(nodes: usize, degree: f64, scale: Scale) -> Vec<Measurement> {
    let graph = grid_map(&GridConfig::with_nodes(nodes, degree, SEED));
    let points = place_points_on_nodes(&graph, 0.01, SEED + 1);
    let queries = sample_node_queries(&points, scale.queries(), SEED + 2);
    let workload = Workload::new(graph, points, queries);
    let table = MaterializedKnn::build(&workload.graph, &workload.points, 1);
    FIGURE_ALGOS
        .iter()
        .map(|&a| {
            let t = if a.needs_materialization() { Some(&table) } else { None };
            measure_restricted(a, &workload, t, 1)
        })
        .collect()
}

/// Fig. 20a: grid maps, cost versus network size (degree 4, D = 0.01, k = 1).
pub fn fig20a_grid_size(scale: Scale) -> Report {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[10_000, 22_500, 40_000],
        Scale::Full => &[40_000, 90_000, 160_000, 250_000],
    };
    let mut report = Report::new(
        "Fig 20a",
        "grid maps: cost vs |V| (degree 4, D=0.01, k=1)",
        "|V|",
        cost_columns(&FIGURE_ALGOS),
    );
    for &n in sizes {
        let ms = measure_grid(n, 4.0, scale);
        report.push_row(format!("{n}"), cost_values(&ms));
    }
    report
}

/// Fig. 20b: grid maps, cost versus average degree (D = 0.01, k = 1).
pub fn fig20b_grid_degree(scale: Scale) -> Report {
    let nodes = scale.pick(40_000, 160_000);
    let mut report = Report::new(
        "Fig 20b",
        format!("grid maps: cost vs degree (|V|={nodes}, D=0.01, k=1)"),
        "degree",
        cost_columns(&FIGURE_ALGOS),
    );
    for degree in [4.0, 5.0, 6.0, 7.0] {
        let ms = measure_grid(nodes, degree, scale);
        report.push_row(format!("{degree}"), cost_values(&ms));
    }
    report
}

// ---------------------------------------------------------------------------
// Fig. 21: buffer size.
// ---------------------------------------------------------------------------

/// Fig. 21: cost versus buffer size on the road network (D = 0.01, k = 1).
/// Restricted view of the spatial graph, matching the eager/lazy comparison
/// of the paper. Beyond the paper, every buffer size is measured under each
/// eviction policy (the paper's LRU plus Clock and 2Q) on the *same*
/// workload, so the policies' fault counts are directly comparable in one
/// table.
pub fn fig21_buffer(scale: Scale) -> Report {
    let net = spatial_road_network(&SpatialConfig {
        num_nodes: scale.pick(20_000, 175_000),
        seed: SEED,
        ..Default::default()
    });
    let points = place_points_on_nodes(&net.graph, 0.01, SEED + 1);
    let queries = sample_node_queries(&points, scale.queries(), SEED + 2);
    let algos = [Algorithm::Eager, Algorithm::Lazy];
    let mut report = Report::new(
        "Fig 21",
        "cost vs buffer size in pages and eviction policy (SF-like road network, D=0.01, k=1)",
        "buffer pages / policy",
        cost_columns(&algos),
    );
    for buffer in [0usize, 16, 64, 256, 1024] {
        for policy in EvictionPolicy::ALL {
            if buffer == 0 && policy != EvictionPolicy::Lru {
                // An empty pool never picks a victim; one row covers all
                // three policies.
                continue;
            }
            let workload = Workload::with_buffer_config(
                net.graph.clone(),
                points.clone(),
                queries.clone(),
                BufferPoolConfig::new(buffer).with_policy(policy),
            );
            let ms: Vec<Measurement> =
                algos.iter().map(|&a| measure_restricted(a, &workload, None, 1)).collect();
            report.push_row(format!("{buffer} {}", policy.name()), cost_values(&ms));
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Fig. 22: maintenance of the materialized table.
// ---------------------------------------------------------------------------

fn update_workload(scale: Scale, density: f64) -> (Workload, Vec<NodeId>, Vec<NodeId>) {
    let net = spatial_road_network(&SpatialConfig {
        num_nodes: scale.pick(20_000, 175_000),
        seed: SEED,
        ..Default::default()
    });
    let points = place_points_on_nodes(&net.graph, density, SEED + 1);
    let num_updates = scale.queries();
    // Inserted points follow the node distribution; deletions pick existing points.
    let empty_nodes: Vec<NodeId> = (0..net.graph.num_nodes())
        .map(NodeId::new)
        .filter(|n| !points.contains_node(*n))
        .take(num_updates)
        .collect();
    let delete_nodes: Vec<NodeId> = points.nodes().iter().copied().take(num_updates).collect();
    (Workload::new(net.graph, points, Vec::new()), empty_nodes, delete_nodes)
}

/// Fig. 22a: maintenance cost versus density (K = 1).
pub fn fig22a_update_density(scale: Scale) -> Report {
    let mut report = Report::new(
        "Fig 22a",
        "materialization maintenance: cost vs density (SF-like road network, K=1)",
        "density D",
        vec![
            "insert faults".into(),
            "insert cpu(s)".into(),
            "insert cost(s)".into(),
            "delete faults".into(),
            "delete cpu(s)".into(),
            "delete cost(s)".into(),
        ],
    );
    let model = rnn_core::CostModel::default();
    for density in [0.0025, 0.01, 0.04, 0.1] {
        let (workload, inserts, deletes) = update_workload(scale, density);
        let (ins, del) = measure_updates(&workload.paged, &workload.points, 1, &inserts, &deletes);
        report.push_row(
            format!("{density}"),
            vec![
                ins.faults,
                ins.cpu_seconds,
                ins.total_seconds(&model),
                del.faults,
                del.cpu_seconds,
                del.total_seconds(&model),
            ],
        );
    }
    report
}

/// Fig. 22b: maintenance cost versus the number K of materialized neighbors
/// (D = 0.01).
pub fn fig22b_update_k(scale: Scale) -> Report {
    let mut report = Report::new(
        "Fig 22b",
        "materialization maintenance: cost vs K (SF-like road network, D=0.01)",
        "K",
        vec![
            "insert faults".into(),
            "insert cpu(s)".into(),
            "insert cost(s)".into(),
            "delete faults".into(),
            "delete cpu(s)".into(),
            "delete cost(s)".into(),
        ],
    );
    let model = rnn_core::CostModel::default();
    let (workload, inserts, deletes) = update_workload(scale, 0.01);
    for capacity_k in [1usize, 2, 4, 8] {
        let (ins, del) =
            measure_updates(&workload.paged, &workload.points, capacity_k, &inserts, &deletes);
        report.push_row(
            format!("{capacity_k}"),
            vec![
                ins.faults,
                ins.cpu_seconds,
                ins.total_seconds(&model),
                del.faults,
                del.cpu_seconds,
                del.total_seconds(&model),
            ],
        );
    }
    report
}

// ---------------------------------------------------------------------------
// Beyond the paper: batch serving throughput.
// ---------------------------------------------------------------------------

/// Batch query throughput versus worker thread count on the in-memory
/// backend (grid map, D = 0.01, k = 1).
///
/// This is not a figure of the paper: it measures the serving scenario the
/// engine layer exists for — a workload of queries executed by
/// `QueryEngine::run_batch` at 1/2/4/8 threads, reported as queries/second
/// and as speedup over the single-threaded run. Results are asserted to be
/// identical across thread counts (scaling must not change answers);
/// speedups depend on the machine's core count.
pub fn throughput(scale: Scale) -> Report {
    let nodes = scale.pick(10_000, 40_000);
    let graph = grid_map(&GridConfig::with_nodes(nodes, 4.0, SEED));
    let points = place_points_on_nodes(&graph, 0.01, SEED + 1);
    let query_nodes = sample_node_queries(&points, scale.pick(64, 200), SEED + 2);
    let algos = [Algorithm::Eager, Algorithm::Lazy, Algorithm::LazyExtendedPruning];

    let columns = algos
        .iter()
        .flat_map(|a| [format!("{} q/s", a.short_name()), format!("{} speedup", a.short_name())])
        .collect();
    let mut report = Report::new(
        "Throughput",
        format!(
            "batch throughput vs worker threads (grid map, |V|={nodes}, D=0.01, k=1, \
             in-memory backend, {} queries)",
            query_nodes.len()
        ),
        "threads",
        columns,
    );

    let mut baseline_qps = vec![0.0f64; algos.len()];
    let mut baseline_results = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let mut values = Vec::new();
        for (i, &algorithm) in algos.iter().enumerate() {
            let engine = QueryEngine::new(&graph, &points).with_threads(threads);
            let workload = QueryWorkload::uniform(algorithm, 1, query_nodes.iter().copied());
            let start = std::time::Instant::now();
            let batch = engine.run_batch(&workload);
            let seconds = start.elapsed().as_secs_f64().max(1e-9);
            let qps = workload.len() as f64 / seconds;
            if threads == 1 {
                baseline_qps[i] = qps;
                baseline_results.push(batch.results);
            } else {
                assert_eq!(
                    batch.results, baseline_results[i],
                    "{algorithm} at {threads} threads must reproduce the sequential results"
                );
            }
            values.push(qps);
            values.push(qps / baseline_qps[i]);
        }
        report.push_row(format!("{threads}"), values);
    }
    report
}

/// Batch query throughput versus worker thread count on the **paged**
/// backend: all workers share one sharded buffer pool (grid map, D = 0.01,
/// k = 1, 256-page pool striped over 8 shards).
///
/// This is the disk-resident serving scenario the striped storage path
/// exists for: before sharding, every page access of every worker funneled
/// through one buffer-pool mutex and one I/O-counter mutex. Results are
/// asserted identical across thread counts *and* identical to the in-memory
/// backend before any number is reported (storage affects cost, never
/// answers); speedups depend on the machine's core count.
pub fn paged_scaling(scale: Scale) -> Report {
    let nodes = scale.pick(10_000, 40_000);
    let graph = grid_map(&GridConfig::with_nodes(nodes, 4.0, SEED));
    let points = place_points_on_nodes(&graph, 0.01, SEED + 1);
    let query_nodes = sample_node_queries(&points, scale.pick(64, 200), SEED + 2);
    let algos = [Algorithm::Eager, Algorithm::Lazy];
    let shards = 8;

    let counters = IoCounters::new();
    let paged = PagedGraph::build_with_config(
        &graph,
        LayoutStrategy::BfsLocality,
        BufferPoolConfig::new(DEFAULT_BUFFER_PAGES).with_shards(shards),
        counters.clone(),
    )
    .expect("paged graph");

    let mut columns: Vec<String> = algos
        .iter()
        .flat_map(|a| [format!("{} q/s", a.short_name()), format!("{} speedup", a.short_name())])
        .collect();
    columns.push("hit ratio".into());
    let mut report = Report::new(
        "Paged scaling",
        format!(
            "batch throughput vs worker threads on the paged backend (grid map, |V|={nodes}, \
             D=0.01, k=1, shared {DEFAULT_BUFFER_PAGES}-page pool, {} shards, {} queries)",
            paged.buffer().num_shards(),
            query_nodes.len()
        ),
        "threads",
        columns,
    );

    // The in-memory reference the paged results must reproduce exactly.
    let mut reference = Vec::new();
    for &algorithm in &algos {
        let workload = QueryWorkload::uniform(algorithm, 1, query_nodes.iter().copied());
        reference.push(QueryEngine::new(&graph, &points).run_batch(&workload).results);
    }

    let mut baseline_qps = vec![0.0f64; algos.len()];
    for threads in [1usize, 2, 4, 8] {
        let mut values = Vec::new();
        let mut io = IoStats::default();
        for (i, &algorithm) in algos.iter().enumerate() {
            paged.cold_start();
            let engine =
                QueryEngine::new(&paged, &points).with_io_counters(&counters).with_threads(threads);
            let workload = QueryWorkload::uniform(algorithm, 1, query_nodes.iter().copied());
            let start = std::time::Instant::now();
            let batch = engine.run_batch(&workload);
            let seconds = start.elapsed().as_secs_f64().max(1e-9);
            assert_eq!(
                batch.results, reference[i],
                "{algorithm} at {threads} threads on the paged backend must reproduce the \
                 in-memory results"
            );
            io += batch.aggregate_io;
            let qps = workload.len() as f64 / seconds;
            if threads == 1 {
                baseline_qps[i] = qps;
            }
            values.push(qps);
            values.push(qps / baseline_qps[i]);
        }
        values.push(io.hit_ratio());
        report.push_row(format!("{threads}"), values);
    }
    report
}

// ---------------------------------------------------------------------------
// Beyond the paper: the paged-query fast path (eviction policies + prefetch).
// ---------------------------------------------------------------------------

/// Replays a scan-thrash page trace (a hot working set interleaved with a
/// one-time cold scan) directly against a single-shard pool under `policy`,
/// returning `(demand faults, hit rate)`.
///
/// The trace alternates a sweep over a small hot set with a burst of
/// one-time scan pages. The first bursts are short — under 2Q they evict the
/// hot set into the A1out ghost queue and the next sweep promotes it into
/// Am. The remaining bursts are longer than the pool, which flushes the hot
/// set out of any recency-based policy every round, while 2Q's Am (which
/// single-access scan pages never enter) keeps it resident.
fn scan_thrash(graph: &rnn_graph::Graph, policy: EvictionPolicy) -> (u64, f64) {
    let probe = PagedGraph::build_with(graph, LayoutStrategy::BfsLocality, 1, IoCounters::new())
        .expect("paged graph");
    let pages = probe.num_pages();
    let capacity = (pages / 2).clamp(4, 16);
    let paged = PagedGraph::build_with_config(
        graph,
        LayoutStrategy::BfsLocality,
        BufferPoolConfig::new(capacity).with_policy(policy).with_shards(1),
        IoCounters::new(),
    )
    .expect("paged graph");
    let hot = (capacity / 4).max(1);
    let mut cursor = hot;
    let mut round = |burst: usize| {
        for h in 0..hot {
            let _ = paged.buffer().fetch(PageId::new(h));
        }
        for _ in 0..burst {
            let _ = paged.buffer().fetch(PageId::new(cursor));
            cursor += 1;
            if cursor >= pages {
                cursor = hot;
            }
        }
    };
    for _warmup in 0..3 {
        round(capacity / 2);
    }
    for _thrash in 0..10 {
        round(capacity + hot + 8);
    }
    let total = paged.pool_stats().total;
    (total.faults, total.hits as f64 / total.accesses().max(1) as f64)
}

/// Paged-query fast path: all six algorithms on page-resident BRITE and grid
/// worlds under every eviction policy (LRU / Clock / 2Q) × shard count ×
/// frontier prefetch off/on, measured over a cold pool and again over the
/// warmed pool.
///
/// Every cell's result sets — cold pass and warm pass — are asserted
/// byte-identical to the in-memory oracle before any number is reported:
/// policies, sharding and prefetch change cost, never answers. Prefetch
/// accounting is reported honestly: issued / useful / wasted are separate
/// columns (never folded into demand hits), `useful + wasted <= issued` is
/// asserted, and the wasted ratio gets its own column. Per policy and shard
/// count, the cold pass with prefetch must demand-fault less than without
/// (asserted). The final rows replay a scan-thrash trace directly against
/// the pool, where 2Q's scan resistance must beat LRU's fault count
/// (asserted); their prefetch columns are zero by construction.
pub fn paging(scale: Scale) -> Report {
    let k = 1usize;
    let instances = [
        (
            "brite",
            brite_topology(&BriteConfig {
                num_nodes: scale.pick(2_000, 10_000),
                seed: SEED,
                ..Default::default()
            }),
        ),
        ("grid", grid_map(&GridConfig::with_nodes(scale.pick(2_500, 10_000), 4.0, SEED))),
    ];
    let algos = Algorithm::ALL;
    let queries_per_cell = scale.pick(12, 50);
    let mut report = Report::new(
        "Paging",
        format!(
            "paged-query fast path: demand faults and prefetch usefulness per eviction policy \
             x shards x prefetch (all {} algorithms, D=0.01, k={k}; every cell byte-identical \
             to the in-memory oracle; final rows replay a scan-thrash page trace)",
            algos.len()
        ),
        "graph policy shards prefetch",
        vec![
            "cold faults".into(),
            "warm faults".into(),
            "hit rate".into(),
            "pf issued".into(),
            "pf useful".into(),
            "pf wasted".into(),
            "pf wasted ratio".into(),
        ],
    );

    for (name, graph) in &instances {
        let points = place_points_on_nodes(graph, 0.01, SEED + 1);
        let queries = sample_node_queries(&points, queries_per_cell, SEED + 2);
        let table = MaterializedKnn::build(graph, &points, k);
        let hub = HubLabelIndex::build(graph, &points);
        let pre = Precomputed::none().with_materialized(&table).with_hub_labels(&hub);
        // The in-memory oracle every paged cell must reproduce byte for byte.
        let oracle: Vec<Vec<_>> = algos
            .iter()
            .map(|&a| queries.iter().map(|&q| run_rknn(a, graph, &points, pre, q, k)).collect())
            .collect();

        // The pool holds the whole graph with headroom in every shard: the
        // cold-pass columns then isolate what frontier prefetch is for —
        // converting first-touch demand faults into hits — without eviction
        // noise racing the prefetcher. (Eviction pressure is what the fig21
        // policy rows and the scan-thrash rows below measure.)
        let probe =
            PagedGraph::build_with(graph, LayoutStrategy::BfsLocality, 1, IoCounters::new())
                .expect("paged graph");
        let capacity = probe.num_pages().max(8) * 2;

        for policy in EvictionPolicy::ALL {
            for shards in [1usize, 4] {
                let mut cold_faults_without_prefetch = 0u64;
                for prefetch in [false, true] {
                    let cell = format!("{name} {} s{shards} {}", policy.name(), {
                        if prefetch {
                            "pf"
                        } else {
                            "nopf"
                        }
                    });
                    let paged = PagedGraph::build_with_config(
                        graph,
                        LayoutStrategy::BfsLocality,
                        BufferPoolConfig::new(capacity).with_policy(policy).with_shards(shards),
                        IoCounters::new(),
                    )
                    .expect("paged graph")
                    .with_prefetch(prefetch);

                    paged.cold_start();
                    let mut cold_stats = None;
                    for pass in ["cold", "warm"] {
                        for (i, &a) in algos.iter().enumerate() {
                            for (j, &q) in queries.iter().enumerate() {
                                let out = run_rknn(a, &paged, &points, pre, q, k);
                                assert_eq!(
                                    out, oracle[i][j],
                                    "cell [{cell}] {pass} pass: {a} on query {q:?} must \
                                     reproduce the in-memory oracle byte for byte"
                                );
                            }
                        }
                        if pass == "cold" {
                            cold_stats = Some(paged.pool_stats().total);
                        }
                    }
                    let cold = cold_stats.take().expect("cold pass ran");
                    let total = paged.pool_stats().total;
                    let warm_faults = total.faults - cold.faults;
                    let hit_rate = total.hits as f64 / total.accesses().max(1) as f64;
                    assert!(
                        total.prefetch_useful + total.prefetch_wasted <= total.prefetch_issued,
                        "cell [{cell}]: useful + wasted must not exceed issued"
                    );
                    if prefetch {
                        assert!(
                            total.prefetch_issued > 0 && total.prefetch_useful > 0,
                            "cell [{cell}]: the frontier prefetcher must issue useful \
                             prefetches on an expansion workload"
                        );
                        assert!(
                            cold.faults < cold_faults_without_prefetch,
                            "cell [{cell}]: prefetch must reduce cold-pool demand faults \
                             ({} with vs {} without)",
                            cold.faults,
                            cold_faults_without_prefetch
                        );
                    } else {
                        assert_eq!(
                            total.prefetch_issued, 0,
                            "cell [{cell}]: prefetch disabled must issue nothing"
                        );
                        cold_faults_without_prefetch = cold.faults;
                    }
                    let wasted_ratio =
                        total.prefetch_wasted as f64 / (total.prefetch_issued.max(1)) as f64;
                    report.push_row(
                        cell,
                        vec![
                            cold.faults as f64,
                            warm_faults as f64,
                            hit_rate,
                            total.prefetch_issued as f64,
                            total.prefetch_useful as f64,
                            total.prefetch_wasted as f64,
                            wasted_ratio,
                        ],
                    );
                }
            }
        }
    }

    // Scan-thrash: the access pattern 2Q exists for. Replayed on the grid
    // graph's pages with a single shard so victim order is deterministic.
    let (_, thrash_graph) = &instances[1];
    let mut faults_by_policy = Vec::new();
    for policy in EvictionPolicy::ALL {
        let (faults, hit_rate) = scan_thrash(thrash_graph, policy);
        faults_by_policy.push((policy, faults));
        report.push_row(
            format!("scan-thrash {} s1 -", policy.name()),
            vec![faults as f64, 0.0, hit_rate, 0.0, 0.0, 0.0, 0.0],
        );
    }
    let lru = faults_by_policy[0].1;
    let twoq = faults_by_policy[2].1;
    assert!(
        twoq < lru,
        "2Q must keep the hot set resident across the cold scan: {twoq} faults vs LRU's {lru}"
    );
    report
}

/// Hub-label index: construction cost, label size and label-vs-expansion
/// query latency on grid and BRITE graphs (in-memory backend).
///
/// Not a figure of the paper: this measures the preprocessing/latency trade
/// the `rnn-index` subsystem makes. Every hub-label result set is asserted
/// byte-identical to eager's before any number is reported.
pub fn index(scale: Scale) -> Report {
    let grid_nodes = scale.pick(2_500, 10_000);
    let brite_nodes = scale.pick(2_000, 8_000);
    let mut report = Report::new(
        "Index",
        "hub-label index vs eager expansion (in-memory backend, D=0.01, k=1)",
        "graph",
        vec![
            "build(s)".into(),
            "hubs/node".into(),
            "label MiB".into(),
            "HL q/s".into(),
            "E q/s".into(),
            "HL speedup".into(),
        ],
    );

    let instances = [
        (
            format!("grid |V|={grid_nodes}"),
            grid_map(&GridConfig::with_nodes(grid_nodes, 4.0, SEED)),
        ),
        (
            format!("brite |V|={brite_nodes}"),
            brite_topology(&BriteConfig {
                num_nodes: brite_nodes,
                seed: SEED,
                ..Default::default()
            }),
        ),
    ];
    for (label, graph) in instances {
        let points = place_points_on_nodes(&graph, 0.01, SEED + 1);
        let queries = sample_node_queries(&points, scale.queries(), SEED + 2);

        let start = std::time::Instant::now();
        let hub_index = HubLabelIndex::build(&graph, &points);
        let build_seconds = start.elapsed().as_secs_f64();
        let stats = hub_index.labeling().stats();

        let mut scratch = Scratch::new();
        let pre = Precomputed::hub_labels(&hub_index);
        let start = std::time::Instant::now();
        let label_results: Vec<_> = queries
            .iter()
            .map(|&q| run_rknn_with(Algorithm::HubLabel, &graph, &points, pre, q, 1, &mut scratch))
            .collect();
        let label_seconds = start.elapsed().as_secs_f64().max(1e-9);

        let start = std::time::Instant::now();
        let eager_results: Vec<_> = queries
            .iter()
            .map(|&q| {
                run_rknn_with(
                    Algorithm::Eager,
                    &graph,
                    &points,
                    Precomputed::none(),
                    q,
                    1,
                    &mut scratch,
                )
            })
            .collect();
        let eager_seconds = start.elapsed().as_secs_f64().max(1e-9);

        for (hl, e) in label_results.iter().zip(&eager_results) {
            assert_eq!(hl.points, e.points, "{label}: hub-label must reproduce eager's results");
        }

        let n = queries.len() as f64;
        report.push_row(
            label,
            vec![
                build_seconds,
                stats.avg_label(),
                stats.label_bytes() as f64 / (1024.0 * 1024.0),
                n / label_seconds,
                n / eager_seconds,
                eager_seconds / label_seconds,
            ],
        );
    }
    report
}

/// The hub-label construction pipeline: parallel build wall-time at 1, 2, 4
/// and 8 threads, label size for the full-width and compressed layouts, and
/// hub-label vs eager query throughput on the BRITE instance.
///
/// Not a figure of the paper: this measures the `rnn-index` preprocessing
/// lever. Before any number is reported, every parallel build is asserted
/// **identical** to the sequential one (level-synchronous construction makes
/// the labeling a pure function of the graph, whatever the thread count),
/// and the compressed tiers (delta-varint ranks with exact or `f32`
/// distances) are asserted to reproduce the exact tier's and eager's RkNN
/// result sets query for query. On a single-CPU runner the speedup column
/// stays ~1.0x by construction — the determinism assertion is the point
/// there; multi-core machines additionally see the build-time scaling.
pub fn label_build(scale: Scale) -> Report {
    use rnn_index::LabelPrecision;
    const MIB: f64 = 1024.0 * 1024.0;

    let nodes = scale.pick(2_000, 8_000);
    let graph = brite_topology(&BriteConfig { num_nodes: nodes, seed: SEED, ..Default::default() });
    let points = place_points_on_nodes(&graph, 0.01, SEED + 1);
    let queries = sample_node_queries(&points, scale.queries(), SEED + 2);

    let start = std::time::Instant::now();
    let reference = HubLabelIndex::build(&graph, &points);
    let sequential_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let stats = reference.labeling().stats();
    let full_mib = stats.label_bytes() as f64 / MIB;

    let exact = reference.compressed(LabelPrecision::Exact);
    let exact_mib = exact.labeling().stats().label_bytes() as f64 / MIB;
    let compact = reference.compressed(LabelPrecision::F32);
    let compact_mib = compact.labeling().stats().label_bytes() as f64 / MIB;
    let cut = 1.0 - compact_mib / full_mib;
    assert!(
        cut >= 0.40,
        "delta-rank + f32 labels must cut label_bytes() by at least 40% on BRITE \
         (full {full_mib:.2} MiB, compressed {compact_mib:.2} MiB)"
    );

    // Query every tier against the eager oracle: compression must never
    // change an answer (the f32 tier re-derives its point table from the
    // rounded labeling, so both RkNN phases sum identically-rounded values).
    let mut scratch = Scratch::new();
    let mut tiers = [(&reference, 0.0f64), (&exact, 0.0), (&compact, 0.0)];
    for (tier, seconds) in &mut tiers {
        let pre = Precomputed::hub_labels(*tier);
        let start = std::time::Instant::now();
        let results: Vec<_> = queries
            .iter()
            .map(|&q| run_rknn_with(Algorithm::HubLabel, &graph, &points, pre, q, 1, &mut scratch))
            .collect();
        *seconds = start.elapsed().as_secs_f64().max(1e-9);
        for (&q, r) in queries.iter().zip(&results) {
            let e = run_rknn_with(
                Algorithm::Eager,
                &graph,
                &points,
                Precomputed::none(),
                q,
                1,
                &mut scratch,
            );
            assert_eq!(r.points, e.points, "query {q:?}: every label tier must reproduce eager");
        }
    }
    let start = std::time::Instant::now();
    for &q in &queries {
        run_rknn_with(Algorithm::Eager, &graph, &points, Precomputed::none(), q, 1, &mut scratch);
    }
    let eager_seconds = start.elapsed().as_secs_f64().max(1e-9);

    let n = queries.len() as f64;
    let hl_qps = n / tiers[0].1;
    let eager_qps = n / eager_seconds;

    let mut report = Report::new(
        "Label build",
        format!(
            "parallel + compressed hub-label pipeline (BRITE |V|={nodes}, D=0.01, k=1; \
             every parallel build asserted identical to sequential, every compressed \
             result set asserted equal to exact and eager; label storage: \
             {full_mib:.2} MiB full, {exact_mib:.2} MiB delta-rank exact, \
             {compact_mib:.2} MiB delta-rank f32 = {:.0}% cut)",
            cut * 100.0
        ),
        "threads",
        vec![
            "build(s)".into(),
            "speedup".into(),
            "hubs/node".into(),
            "full MiB".into(),
            "f32 MiB".into(),
            "cut %".into(),
            "HL q/s".into(),
            "E q/s".into(),
        ],
    );
    for threads in [1usize, 2, 4, 8] {
        let start = std::time::Instant::now();
        let built = HubLabelIndex::build_with_threads(&graph, &points, threads);
        let build_seconds = start.elapsed().as_secs_f64().max(1e-9);
        assert!(
            built == reference,
            "{threads}-thread build must be identical to the sequential build"
        );
        report.push_row(
            format!("{threads}"),
            vec![
                build_seconds,
                sequential_seconds / build_seconds,
                stats.avg_label(),
                full_mib,
                compact_mib,
                cut * 100.0,
                hl_qps,
                eager_qps,
            ],
        );
    }
    report
}

/// Online serving under open-loop load: a mixed-algorithm, mixed-priority
/// request stream submitted to `rnn-server` in bursts at several offered
/// arrival rates, reporting achieved throughput and the **per-class**
/// queue-wait / service-time latency split (p50/p99 from the server's
/// log-scale histograms).
///
/// Open loop means arrivals are paced by a clock, not by completions — the
/// regime where queueing happens: below the capacity of the 2-worker pool
/// the queue-wait percentiles stay near zero, at and above capacity they
/// grow while service time stays flat, which is exactly the split the
/// histograms exist to show. Every fourth request rides the batch class, so
/// under overload the per-class columns show the QoS separation: interactive
/// queue wait stays lower than batch queue wait while service times match.
/// Arrivals come in bursts of 4 through `Server::submit_all` — one queue
/// lock round-trip per burst, the intended pattern for bursty open-loop
/// traffic. Offered rates are calibrated against the sequential execution
/// of the same stream, so the rows land in the same load regimes on any
/// machine. Every served result is asserted byte-identical to the
/// sequential oracle before any number is reported — admission, queueing,
/// priorities and worker scheduling must never change answers.
pub fn serving(scale: Scale) -> Report {
    use rnn_server::{BackpressurePolicy, Priority, Request, Server, ServerConfig, World};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let nodes = scale.pick(10_000, 40_000);
    let graph = Arc::new(grid_map(&GridConfig::with_nodes(nodes, 4.0, SEED)));
    let points = Arc::new(place_points_on_nodes(&graph, 0.01, SEED + 1));
    let query_nodes = sample_node_queries(&points, scale.pick(64, 200), SEED + 2);
    let algos = [Algorithm::Eager, Algorithm::Lazy, Algorithm::LazyExtendedPruning];
    let workers = 2;
    const BURST: usize = 4;

    // The mixed stream: algorithms round-robin over the query nodes; every
    // fourth request is batch-class.
    let priority_of = |i: usize| if i % 4 == 3 { Priority::Batch } else { Priority::Interactive };
    let stream: Vec<(Algorithm, rnn_graph::NodeId)> =
        query_nodes.iter().enumerate().map(|(i, &q)| (algos[i % algos.len()], q)).collect();
    let batch_requests = (0..stream.len()).filter(|&i| priority_of(i) == Priority::Batch).count();

    // Sequential oracle + capacity calibration (one thread, one scratch).
    let mut scratch = Scratch::new();
    let started = Instant::now();
    let oracle: Vec<_> = stream
        .iter()
        .map(|&(a, q)| run_rknn_with(a, &*graph, &*points, Precomputed::none(), q, 1, &mut scratch))
        .collect();
    let sequential_seconds = started.elapsed().as_secs_f64().max(1e-9);
    let capacity_qps = stream.len() as f64 / sequential_seconds;

    let mut report = Report::new(
        "Serving",
        format!(
            "online serving under open-loop load (grid map, |V|={nodes}, D=0.01, k=1, \
             {workers} workers, mixed E/L/LP stream of {} requests, {batch_requests} of them \
             batch-class, submit_all bursts of {BURST}; offered rates relative to the \
             {capacity_qps:.0} q/s sequential capacity)",
            stream.len()
        ),
        "offered load",
        vec![
            "offered q/s".into(),
            "served q/s".into(),
            "int qwait p50(ms)".into(),
            "int qwait p99(ms)".into(),
            "int service p99(ms)".into(),
            "bat qwait p50(ms)".into(),
            "bat qwait p99(ms)".into(),
            "bat service p99(ms)".into(),
        ],
    );

    for (label, factor) in [("0.5x", 0.5), ("1x", 1.0), ("2x", 2.0)] {
        let offered_qps = capacity_qps * factor;
        let interarrival = Duration::from_secs_f64(1.0 / offered_qps);
        let world = World::new(graph.clone(), points.clone());
        let server = Server::start(
            world,
            ServerConfig::default()
                .with_workers(workers)
                .with_queue_capacity(stream.len().max(1))
                .with_policy(BackpressurePolicy::Block),
        );

        // Open-loop arrivals in bursts: burst b (requests b*BURST..) is
        // submitted at start + b*BURST * 1/rate through one submit_all
        // call, regardless of how far the workers have gotten.
        let started = Instant::now();
        let mut tickets = Vec::with_capacity(stream.len());
        for (b, chunk) in stream.chunks(BURST).enumerate() {
            let due = started + interarrival * (b * BURST) as u32;
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let burst: Vec<Request> = chunk
                .iter()
                .enumerate()
                .map(|(j, &(a, q))| Request::new(a, q, 1).with_priority(priority_of(b * BURST + j)))
                .collect();
            for result in server.submit_all(&burst) {
                tickets.push(result.expect("admitted under Block"));
            }
        }
        for (i, (ticket, expected)) in tickets.into_iter().zip(&oracle).enumerate() {
            let served = ticket.wait().expect("served");
            assert_eq!(
                served.outcome, *expected,
                "request {i} ({label} load) must equal the sequential oracle"
            );
        }
        let wall_seconds = started.elapsed().as_secs_f64().max(1e-9);
        let stats = server.shutdown();
        assert_eq!(stats.completed, stream.len() as u64, "{label}: everything served");
        assert_eq!(stats.accounted(), stats.submitted, "{label}: nothing lost");
        let interactive = stats.class(Priority::Interactive);
        let batch = stats.class(Priority::Batch);
        assert_eq!(batch.completed, batch_requests as u64, "{label}: batch class served");
        assert_eq!(
            interactive.completed,
            (stream.len() - batch_requests) as u64,
            "{label}: interactive class served"
        );
        for (class, s) in [("interactive", interactive), ("batch", batch)] {
            assert_eq!(s.accounted(), s.submitted, "{label}/{class}: per-class conservation");
            assert_eq!(
                s.queue_wait.count(),
                s.completed + s.shed_at_dequeue,
                "{label}/{class}: queue-wait histogram covers completions + dequeue sheds"
            );
        }

        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        report.push_row(
            label.to_string(),
            vec![
                offered_qps,
                stats.completed as f64 / wall_seconds,
                ms(interactive.queue_wait.p50()),
                ms(interactive.queue_wait.p99()),
                ms(interactive.service.p99()),
                ms(batch.queue_wait.p50()),
                ms(batch.queue_wait.p99()),
                ms(batch.service.p99()),
            ],
        );
    }
    report
}

/// Tracing overhead on the serving path: the same closed-loop mixed stream
/// of **all six** algorithms is pushed through an untraced server and a
/// fully observed one (phase tracing + trace recorder + slow-query log +
/// registry source), interleaved best-of-N so machine noise hits both modes
/// alike, and the traced throughput is asserted to stay within 5% of the
/// untraced best.
///
/// The traced trials double as an end-to-end check of the observability
/// layer under benchmark load: every algorithm must report non-trivial
/// phase counters (calls *and* nanoseconds) in the final registry snapshot,
/// and both exporters must render that snapshot byte-deterministically.
/// Results are asserted byte-identical to a sequential oracle in every
/// trial, so tracing can never change answers either.
pub fn obs_overhead(scale: Scale) -> Report {
    use rnn_obs::{prometheus_text, report_json, MetricsRegistry, Phase};
    use rnn_server::{Request, Server, ServerConfig, World};
    use std::sync::Arc;
    use std::time::Instant;

    let nodes = scale.pick(2_000, 8_000);
    let graph = Arc::new(grid_map(&GridConfig::with_nodes(nodes, 4.0, SEED)));
    let points = Arc::new(place_points_on_nodes(&graph, 0.02, SEED + 1));
    let table = Arc::new(MaterializedKnn::build(&*graph, &*points, 2));
    let hub_index = Arc::new(HubLabelIndex::build(&*graph, &*points));
    let query_nodes = sample_node_queries(&points, scale.pick(32, 96), SEED + 2);
    let workers = 2;
    const TRIALS: usize = 5;

    // The mixed stream: every algorithm visits every query node at k=2.
    let stream: Vec<(Algorithm, NodeId)> =
        Algorithm::ALL.iter().flat_map(|&a| query_nodes.iter().map(move |&q| (a, q))).collect();
    let precomputed = Precomputed::materialized(&table).with_hub_labels(&*hub_index);
    let mut scratch = Scratch::new();
    let oracle: Vec<_> = stream
        .iter()
        .map(|&(a, q)| run_rknn_with(a, &*graph, &*points, precomputed, q, 2, &mut scratch))
        .collect();

    let config = ServerConfig::default().with_workers(workers).with_queue_capacity(stream.len());
    // One closed-loop trial: submit the whole stream in one burst, wait for
    // everything, check against the oracle, return achieved q/s.
    let run_trial = |server: &Server| -> f64 {
        let requests: Vec<Request> = stream.iter().map(|&(a, q)| Request::new(a, q, 2)).collect();
        let started = Instant::now();
        let tickets: Vec<_> = server
            .submit_all(&requests)
            .into_iter()
            .map(|r| r.expect("admitted under Block"))
            .collect();
        for (i, (ticket, expected)) in tickets.into_iter().zip(&oracle).enumerate() {
            let served = ticket.wait().expect("served");
            assert_eq!(served.outcome, *expected, "request {i} must equal the sequential oracle");
        }
        stream.len() as f64 / started.elapsed().as_secs_f64().max(1e-9)
    };

    let mut untraced = Vec::with_capacity(TRIALS);
    let mut traced = Vec::with_capacity(TRIALS);
    let mut last_snapshot = None;
    for _ in 0..TRIALS {
        // Interleaved A/B: noise (page cache, frequency scaling, neighbors
        // on the box) perturbs adjacent trials, not one whole mode.
        let world = World::new(graph.clone(), points.clone())
            .with_materialized(table.clone())
            .with_hub_labels(hub_index.clone());
        let server = Server::start(world, config);
        untraced.push(run_trial(&server));
        server.shutdown();

        let registry = MetricsRegistry::new();
        let world = World::new(graph.clone(), points.clone())
            .with_materialized(table.clone())
            .with_hub_labels(hub_index.clone());
        let server = Server::start_observed(
            world,
            config.with_tracing(true).with_slow_query_log(8, 16, 32, SEED),
            None,
            &registry,
        );
        traced.push(run_trial(&server));
        assert!(!server.drain_slow_queries().worst.is_empty(), "slow log must capture traffic");
        server.shutdown();
        last_snapshot = Some(registry.snapshot());
    }

    // The observed mode must actually have observed: every algorithm shows
    // non-trivial phase activity, and the exporters are byte-deterministic.
    let snap = last_snapshot.expect("at least one traced trial");
    for algorithm in Algorithm::ALL {
        let queries =
            snap.counter(&format!("rnn_trace_queries_total{{algorithm=\"{}\"}}", algorithm.name()));
        assert_eq!(queries, Some(query_nodes.len() as u64), "{algorithm:?} traced per query");
        let (calls, nanos) = Phase::ALL.iter().fold((0, 0), |(c, n), phase| {
            let read = |kind: &str| {
                snap.counter(&format!(
                    "rnn_trace_phase_{kind}_total{{algorithm=\"{}\",phase=\"{phase}\"}}",
                    algorithm.name()
                ))
                .unwrap_or(0)
            };
            (c + read("calls"), n + read("nanos"))
        });
        assert!(calls > 0 && nanos > 0, "{algorithm:?} must report non-trivial phase counters");
    }
    assert_eq!(prometheus_text(&snap), prometheus_text(&snap), "text export deterministic");
    assert_eq!(report_json(&snap), report_json(&snap), "json export deterministic");

    let best = |qps: &[f64]| qps.iter().copied().fold(f64::MIN, f64::max);
    let (untraced_best, traced_best) = (best(&untraced), best(&traced));
    assert!(
        traced_best >= 0.95 * untraced_best,
        "tracing overhead above 5%: traced best {traced_best:.0} q/s vs untraced best \
         {untraced_best:.0} q/s"
    );

    let mut report = Report::new(
        "Obs overhead",
        format!(
            "serving throughput with full observability on vs. off (grid map, |V|={nodes}, \
             D=0.02, k=2, {workers} workers, all {} algorithms x {} queries, interleaved \
             best-of-{TRIALS}; traced best asserted within 5% of untraced best)",
            Algorithm::ALL.len(),
            query_nodes.len()
        ),
        "mode",
        vec!["best q/s".into(), "worst q/s".into(), "vs untraced best".into()],
    );
    let worst = |qps: &[f64]| qps.iter().copied().fold(f64::MAX, f64::min);
    report.push_row("untraced", vec![untraced_best, worst(&untraced), 1.0]);
    report.push_row("traced", vec![traced_best, worst(&traced), traced_best / untraced_best]);
    report
}

/// SLO burn-rate detection latency: a calibrated overload burst through a
/// telemetry-enabled server must flip the per-class latency SLO from `ok`
/// to `critical` within **one** epoch window, and the system must recover
/// to `ok` after the burst — all oracle-asserted, with windowed vs
/// cumulative p99 reported per phase of the run.
///
/// Epochs are ticked manually between phases (`Server::advance_epoch`, the
/// evaluate-then-advance driver), so window boundaries — and therefore the
/// detection latency — are exact functions of the run script, not of wall
/// time. The latency threshold is calibrated from a sequential pass: far
/// above any lone request's latency (32x the sequential mean, floored at
/// 10ms so scheduler hiccups on a loaded 1-CPU runner cannot breach it),
/// yet far below the queue-wait tail of the burst, which carries 40
/// threshold-multiples of work so the flip survives multi-x machine-speed
/// variation in either direction. A drop-ratio SLO rides along and must
/// stay `ok` throughout (the Block policy never drops). The drained flight
/// recorder must carry the critical and recovery transitions in order, and
/// the Chrome-trace export of the slow-query spans plus those events must
/// parse back as JSON.
pub fn slo(scale: Scale) -> Report {
    use rnn_obs::{chrome_trace, JsonValue, LatencyHistogram};
    use rnn_server::{
        EventKind, MetricsRegistry, Priority, Request, Server, ServerConfig, SloSpec, SloState,
        TelemetryConfig, World,
    };
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let nodes = scale.pick(4_000, 16_000);
    let graph = Arc::new(grid_map(&GridConfig::with_nodes(nodes, 4.0, SEED)));
    let points = Arc::new(place_points_on_nodes(&graph, 0.02, SEED + 1));
    let query_nodes = sample_node_queries(&points, scale.pick(24, 48), SEED + 2);
    let workers = 2;
    let warmup_n = scale.pick(32, 48);
    let recovery_n = 16;

    // Sequential oracle + mean-service calibration (one thread, one scratch).
    let mut scratch = Scratch::new();
    let started = Instant::now();
    let oracle: Vec<_> = query_nodes
        .iter()
        .map(|&q| {
            run_rknn_with(
                Algorithm::Eager,
                &*graph,
                &*points,
                Precomputed::none(),
                q,
                1,
                &mut scratch,
            )
        })
        .collect();
    let mean_nanos = (started.elapsed().as_nanos() as f64 / oracle.len() as f64).max(1.0);
    let threshold_nanos = (32.0 * mean_nanos).max(10_000_000.0);
    let threshold = Duration::from_nanos(threshold_nanos as u64);
    let burst_len = ((40.0 * threshold_nanos / mean_nanos).ceil() as usize).clamp(256, 20_000);

    let registry = MetricsRegistry::new();
    let server = Server::start_with_telemetry(
        World::new(graph.clone(), points.clone()),
        ServerConfig::default()
            .with_workers(workers)
            .with_queue_capacity(burst_len)
            .with_tracing(true)
            .with_slow_query_log(8, 16, 32, SEED),
        TelemetryConfig::new()
            .with_window_epochs(4)
            .with_recorder_capacity(4096)
            .with_latency_slo(
                Priority::Interactive,
                // Burns (5, 10) instead of the default (2, 10): a single
                // scheduler hiccup in a small healthy epoch must not read
                // as a warning on a noisy CI runner.
                SloSpec::latency("interactive_p99", 0.99, threshold)
                    .with_windows(1, 4)
                    .with_burns(5.0, 10.0),
            )
            .with_dropped_slo(
                Priority::Interactive,
                SloSpec::error_ratio("interactive_drops", 0.05),
            ),
        None,
        &registry,
    );
    let engine = server.slo().expect("telemetry server carries an SLO engine");

    let mut report = Report::new(
        "SLO",
        format!(
            "burn-rate detection latency (grid map, |V|={nodes}, D=0.02, k=1, {workers} \
             workers; p99 objective {:.1}ms = 32x the {:.0}us sequential mean, short/long \
             windows 1/4 epochs, burns 5/10; overload burst of {burst_len} requests in one \
             submit_all; critical within one epoch of the burst, ok again after — asserted)",
            threshold_nanos / 1e6,
            mean_nanos / 1e3,
        ),
        "phase",
        vec![
            "completed".into(),
            "phase p99(ms)".into(),
            "win4 p99(ms)".into(),
            "cum p99(ms)".into(),
            "state".into(),
            "short burn".into(),
            "long burn".into(),
        ],
    );

    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    // One closed-loop request at a time: latency ~= service time, far under
    // the calibrated threshold. Returns the phase's own latency histogram
    // (built from the server's per-request measurements).
    let run_closed = |n: usize| -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for i in 0..n {
            let q = query_nodes[i % query_nodes.len()];
            let served = server
                .submit(Request::new(Algorithm::Eager, q, 1))
                .expect("admitted under Block")
                .wait()
                .expect("served");
            assert_eq!(
                served.outcome,
                oracle[i % oracle.len()],
                "closed-loop request {i} must equal the sequential oracle"
            );
            h.record(served.queue_wait + served.service_time);
        }
        h
    };
    // Snapshot-derived row values; taken right after the phase's
    // evaluate-then-advance so the burn/state gauges reflect the epoch that
    // just ended while the 4-epoch window view still contains it.
    let phase_row = |phase: &LatencyHistogram| -> Vec<f64> {
        let snap = registry.snapshot();
        let win = snap
            .histogram("rnn_server_latency_nanos_window{class=\"interactive\"}")
            .expect("windowed latency view");
        let cum = snap
            .histogram("rnn_server_latency_nanos{class=\"interactive\"}")
            .expect("cumulative latency view");
        let gauge = |name: &str| snap.gauge(name).unwrap_or(0) as f64;
        vec![
            phase.count() as f64,
            ms(phase.p99()),
            ms(win.p99()),
            ms(cum.p99()),
            gauge("rnn_slo_state{slo=\"interactive_p99\"}"),
            gauge("rnn_slo_burn_short_permille{slo=\"interactive_p99\"}") / 1000.0,
            gauge("rnn_slo_burn_long_permille{slo=\"interactive_p99\"}") / 1000.0,
        ]
    };

    // Two healthy warmup epochs: the latency SLO must not read critical.
    for label in ["warmup-1", "warmup-2"] {
        let h = run_closed(warmup_n);
        let transitions = server.advance_epoch();
        assert!(
            transitions.iter().all(|t| t.to != SloState::Critical),
            "{label}: healthy closed-loop traffic must not read critical"
        );
        assert_ne!(engine.state(0), Some(SloState::Critical), "{label}: latency SLO");
        report.push_row(label, phase_row(&h));
    }

    // The overload burst: one submit_all, queue wait grows linearly through
    // the burst, so the total-latency tail dwarfs the threshold.
    let requests: Vec<Request> = (0..burst_len)
        .map(|i| Request::new(Algorithm::Eager, query_nodes[i % query_nodes.len()], 1))
        .collect();
    let tickets: Vec<_> = server
        .submit_all(&requests)
        .into_iter()
        .map(|r| r.expect("admitted under Block"))
        .collect();
    let mut burst = LatencyHistogram::new();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let served = ticket.wait().expect("served");
        assert_eq!(
            served.outcome,
            oracle[i % oracle.len()],
            "burst request {i} must equal the sequential oracle"
        );
        burst.record(served.queue_wait + served.service_time);
    }
    let transitions = server.advance_epoch();
    let detected = transitions
        .iter()
        .find(|t| t.name == "interactive_p99" && t.to == SloState::Critical)
        .expect("the overload burst must flip the latency SLO to critical within one window");
    assert!(
        detected.short_burn >= 10.0 && detected.long_burn >= 10.0,
        "critical means both windows burn at or above the critical rate \
         (short {:.1}, long {:.1})",
        detected.short_burn,
        detected.long_burn
    );
    assert_eq!(engine.state(0), Some(SloState::Critical), "detection latency: one epoch");
    report.push_row("overload", phase_row(&burst));

    // Recovery: four healthy epochs (one long window). The short window
    // clears immediately, so the state must leave critical at the first
    // evaluation and be ok by the end; by the last rows the burst epoch has
    // left the 4-epoch window view while the cumulative p99 stays
    // burst-dominated — the contrast windowed telemetry exists for.
    for (i, label) in ["recovery-1", "recovery-2", "recovery-3", "recovery-4"].iter().enumerate() {
        let h = run_closed(recovery_n);
        server.advance_epoch();
        if i == 0 {
            assert_ne!(
                engine.state(0),
                Some(SloState::Critical),
                "one healthy epoch must clear the short window and leave critical"
            );
        }
        report.push_row(*label, phase_row(&h));
    }
    assert_eq!(engine.state(0), Some(SloState::Ok), "recovered to ok after the burst");
    assert_eq!(engine.state(1), Some(SloState::Ok), "Block never drops: ratio SLO stays ok");

    // Quiesce, then pull the evidence from the joined (not yet dropped)
    // server: deterministic window contents, ordered transition events, and
    // a Chrome trace that parses back.
    let total = (2 * warmup_n + burst_len + 4 * recovery_n) as u64;
    let mut server = server;
    server.join();
    assert_eq!(server.stats().completed, total, "everything served");
    let snap = registry.snapshot();
    let win = snap
        .histogram("rnn_server_latency_nanos_window{class=\"interactive\"}")
        .expect("windowed latency view");
    assert_eq!(
        win.count(),
        3 * recovery_n as u64,
        "the 4-epoch window holds exactly the last three recovery epochs (plus the empty \
         current epoch); the burst expired"
    );
    let cum = snap.histogram("rnn_server_latency_nanos{class=\"interactive\"}").unwrap();
    assert_eq!(cum.count(), total);
    assert!(cum.p99() >= threshold, "the cumulative p99 never forgets the burst");

    let slow = server.drain_slow_queries();
    assert!(!slow.worst.is_empty(), "the slow-query log must capture the burst");
    let drained = server.drain_events();
    assert_eq!(drained.dropped, 0, "the 4096-event ring must hold the whole run");
    assert!(drained.events.windows(2).all(|w| w[0].seq < w[1].seq), "drain order is by seq");
    let slo_events: Vec<(u64, u64)> = drained
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::SloTransition { slo: 0, from, to } => Some((from, to)),
            _ => None,
        })
        .collect();
    let crit = SloState::Critical.code();
    let ok = SloState::Ok.code();
    let flip = slo_events.iter().position(|&(_, to)| to == crit);
    assert!(flip.is_some(), "the critical transition must reach the flight recorder");
    assert!(
        slo_events[flip.unwrap() + 1..].iter().any(|&(from, to)| from != ok && to == ok),
        "the recovery transition must follow it"
    );
    assert!(
        drained.events.iter().any(|e| matches!(e.kind, EventKind::SlowQuery { .. })),
        "slow-query captures must reach the flight recorder"
    );

    let trace = chrome_trace(&slow.worst, &drained.events);
    let parsed = JsonValue::parse(&trace).expect("the Chrome trace must parse back as JSON");
    let spans =
        parsed.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array present");
    let instants = |name: &str| {
        spans.iter().filter(|e| e.get("name").and_then(|n| n.as_str()) == Some(name)).count()
    };
    assert_eq!(instants("slo_transition"), slo_events.len(), "transitions render as instants");
    assert!(instants("slow_query") > 0 && spans.len() > slow.worst.len());

    report
}

/// All experiment ids: the paper's tables and figures, then the serving
/// experiments added on top.
pub const ALL_EXPERIMENTS: [&str; 20] = [
    "table1",
    "table2",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20a",
    "fig20b",
    "fig21",
    "fig22a",
    "fig22b",
    "throughput",
    "paged-scaling",
    "paging",
    "index",
    "label-build",
    "serving",
    "obs-overhead",
    "slo",
];

/// Runs one experiment by id. Returns `None` for an unknown id.
pub fn run_by_name(name: &str, scale: Scale) -> Option<Report> {
    let report = match name {
        "table1" => table1_adhoc(scale),
        "table2" => table2_density(scale),
        "fig15" => fig15_brite_size(scale),
        "fig16" => fig16_brite_density(scale),
        "fig17" => fig17_sf_density(scale),
        "fig18" => fig18_sf_k(scale),
        "fig19" => fig19_continuous(scale),
        "fig20a" => fig20a_grid_size(scale),
        "fig20b" => fig20b_grid_degree(scale),
        "fig21" => fig21_buffer(scale),
        "fig22a" => fig22a_update_density(scale),
        "fig22b" => fig22b_update_k(scale),
        "throughput" => throughput(scale),
        "paged-scaling" => paged_scaling(scale),
        "paging" => paging(scale),
        "index" => index(scale),
        "label-build" => label_build(scale),
        "serving" => serving(scale),
        "obs-overhead" => obs_overhead(scale),
        "slo" => slo(scale),
        _ => return None,
    };
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_registry_is_complete() {
        for name in ALL_EXPERIMENTS {
            // only check registration here; the cheap ones are exercised in
            // the integration tests and the full set by the repro binary.
            assert!([
                "table1",
                "table2",
                "fig15",
                "fig16",
                "fig17",
                "fig18",
                "fig19",
                "fig20a",
                "fig20b",
                "fig21",
                "fig22a",
                "fig22b",
                "throughput",
                "paged-scaling",
                "paging",
                "index",
                "label-build",
                "serving",
                "obs-overhead",
                "slo"
            ]
            .contains(&name));
        }
        assert!(run_by_name("nonsense", Scale::Quick).is_none());
    }

    #[test]
    fn table2_produces_one_row_per_density_with_sane_values() {
        let report = table2_density(Scale::Quick);
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.columns.len(), 6);
        for (label, values) in &report.rows {
            assert!(!label.is_empty());
            for v in values {
                assert!(v.is_finite() && *v >= 0.0);
            }
        }
        // higher density means cheaper queries: the eager cost column must not
        // increase from the lowest to the highest density
        let cost_col = report.column_index("E cost(s)").unwrap();
        let first = report.value(0, cost_col).unwrap();
        let last = report.value(3, cost_col).unwrap();
        assert!(last <= first * 1.5, "density 0.1 should not be much costlier than 0.0125");
    }
}

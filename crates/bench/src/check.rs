//! Perf-regression gate: compare a fresh run's `BENCH_*.json` against the
//! committed baselines with per-metric tolerance bands.
//!
//! Every `repro --json` artifact is an `rnn-bench-report/v1` document (see
//! [`crate::report::Report::to_json`]). The gate walks the baseline's rows
//! and columns, classifies each column by name into a tolerance [`Band`],
//! and reports a violation per cell outside its band — structural drift
//! (missing files, renamed columns, added/removed rows) is always a
//! violation, because the artifacts are committed and their shape is part
//! of the perf-trajectory contract.
//!
//! The bands encode how the metrics behave across machines:
//!
//! * [`Band::Timing`] — throughput, latency and CPU-time columns. These
//!   swing with the hardware (a laptop vs the 1-CPU CI runner), so the band
//!   is wide: a ratio within 8x either way passes, as does any
//!   absolute drift below 1.0 unit (which keeps near-zero queue-wait
//!   percentiles from tripping on ratio noise). The gate is therefore
//!   *advisory* for speed and decisive for shape.
//! * [`Band::Count`] — determinism and size metrics: page faults, node
//!   expansions, label entries, MiB, percentages, SLO states. Same seed and
//!   scale must give (almost exactly) the same value anywhere, so the band
//!   is tight: 5% relative or an absolute slack of 0.5 for tiny counts.

use crate::report::Report;
use rnn_obs::JsonValue;

/// Tolerance class of one report column, decided by [`band_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Band {
    /// Machine-dependent timing/throughput: wide multiplicative band.
    Timing,
    /// Deterministic count/size metric: tight relative band.
    Count,
}

impl Band {
    /// Whether `fresh` is within this band of `baseline`.
    pub fn accepts(self, baseline: f64, fresh: f64) -> bool {
        let diff = (fresh - baseline).abs();
        match self {
            Band::Timing => {
                if diff <= 1.0 {
                    return true;
                }
                let (lo, hi) = (baseline.min(fresh), baseline.max(fresh));
                lo > 0.0 && hi <= 8.0 * lo
            }
            Band::Count => diff <= 0.5 || diff <= 0.05 * baseline.abs(),
        }
    }
}

/// Substrings that mark a column as a timing/throughput metric. Matched
/// case-insensitively against the column name.
const TIMING_MARKERS: [&str; 10] =
    ["q/s", "qps", "(s)", "(ms)", "(us)", "sec", "cpu", "wait", "speedup", "burn"];

/// Classifies a column name into its tolerance band.
pub fn band_for(column: &str) -> Band {
    let lower = column.to_ascii_lowercase();
    if TIMING_MARKERS.iter().any(|m| lower.contains(m)) {
        Band::Timing
    } else {
        Band::Count
    }
}

/// One report row parsed back from JSON: `(label, cell values)`.
type ParsedRow = (String, Vec<f64>);

/// Parses one `rnn-bench-report/v1` JSON document back into its parts:
/// `(id, columns, rows)`. `Err` carries a one-line description of what made
/// the document unreadable.
fn parse_report(text: &str) -> Result<(String, Vec<String>, Vec<ParsedRow>), String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let schema = doc.get("schema").and_then(|s| s.as_str());
    if schema != Some("rnn-bench-report/v1") {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let id = doc.get("id").and_then(|s| s.as_str()).ok_or("missing id")?.to_string();
    let columns: Vec<String> = doc
        .get("columns")
        .and_then(|c| c.as_array())
        .ok_or("missing columns")?
        .iter()
        .filter_map(|c| c.as_str().map(str::to_string))
        .collect();
    let mut rows = Vec::new();
    for row in doc.get("rows").and_then(|r| r.as_array()).ok_or("missing rows")? {
        let label = row.get("label").and_then(|l| l.as_str()).ok_or("row without label")?;
        let values: Vec<f64> = row
            .get("values")
            .and_then(|v| v.as_array())
            .ok_or("row without values")?
            .iter()
            // `null` marks a non-finite measurement; NAN re-enters the
            // same skip path in the comparison below.
            .map(|v| v.as_f64().unwrap_or(f64::NAN))
            .collect();
        rows.push((label.to_string(), values));
    }
    Ok((id, columns, rows))
}

/// Compares a fresh artifact against its committed baseline. Returns one
/// human-readable line per violation (empty = pass); `name` prefixes each
/// line so a directory sweep stays readable.
pub fn compare_artifact(name: &str, baseline: &str, fresh: &str) -> Vec<String> {
    let (base_id, base_cols, base_rows) = match parse_report(baseline) {
        Ok(parts) => parts,
        Err(e) => return vec![format!("{name}: unreadable baseline ({e})")],
    };
    let (fresh_id, fresh_cols, fresh_rows) = match parse_report(fresh) {
        Ok(parts) => parts,
        Err(e) => return vec![format!("{name}: unreadable fresh artifact ({e})")],
    };

    let mut violations = Vec::new();
    if base_id != fresh_id {
        violations.push(format!("{name}: id changed: {base_id:?} -> {fresh_id:?}"));
    }
    if base_cols != fresh_cols {
        violations.push(format!("{name}: columns changed: {base_cols:?} -> {fresh_cols:?}"));
        return violations; // cell comparison would misalign
    }
    let base_labels: Vec<&String> = base_rows.iter().map(|(l, _)| l).collect();
    let fresh_labels: Vec<&String> = fresh_rows.iter().map(|(l, _)| l).collect();
    if base_labels != fresh_labels {
        violations.push(format!("{name}: rows changed: {base_labels:?} -> {fresh_labels:?}"));
        return violations;
    }

    for ((label, base_values), (_, fresh_values)) in base_rows.iter().zip(&fresh_rows) {
        for (c, column) in base_cols.iter().enumerate() {
            let (b, f) = match (base_values.get(c), fresh_values.get(c)) {
                (Some(&b), Some(&f)) => (b, f),
                _ => {
                    violations.push(format!("{name}: row {label:?} lost column {column:?}"));
                    continue;
                }
            };
            if !b.is_finite() || !f.is_finite() {
                continue; // null cells carry no comparable measurement
            }
            let band = band_for(column);
            if !band.accepts(b, f) {
                violations.push(format!(
                    "{name}: {label:?} / {column:?} ({band:?}): baseline {b} vs fresh {f}"
                ));
            }
        }
    }
    violations
}

/// Compares a freshly produced [`Report`] against a committed baseline
/// document — the in-process form of the gate, used by `repro check` after
/// regenerating an experiment and by tests.
pub fn compare_fresh(name: &str, baseline: &str, fresh: &Report) -> Vec<String> {
    compare_artifact(name, baseline, &fresh.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: &str, columns: &[&str], rows: &[(&str, &[f64])]) -> String {
        let mut r = Report::new(id, "t", "x", columns.iter().map(|c| c.to_string()).collect());
        for (label, values) in rows {
            r.push_row(*label, values.to_vec());
        }
        r.to_json()
    }

    #[test]
    fn bands_are_classified_by_column_name() {
        for timing in ["best q/s", "E cpu(s)", "int qwait p99(ms)", "speedup", "short burn"] {
            assert_eq!(band_for(timing), Band::Timing, "{timing}");
        }
        for count in ["E faults", "full MiB", "cut %", "state", "completed", "avg |label|"] {
            assert_eq!(band_for(count), Band::Count, "{count}");
        }
    }

    #[test]
    fn timing_band_is_wide_and_count_band_is_tight() {
        assert!(Band::Timing.accepts(100.0, 799.0));
        assert!(Band::Timing.accepts(100.0, 12.6));
        assert!(!Band::Timing.accepts(100.0, 801.0));
        assert!(Band::Timing.accepts(0.0, 0.9), "near-zero latencies pass on absolute slack");
        assert!(!Band::Timing.accepts(0.0, 1.1));

        assert!(Band::Count.accepts(1000.0, 1049.0));
        assert!(!Band::Count.accepts(1000.0, 1051.0));
        assert!(Band::Count.accepts(2.0, 2.4), "tiny counts pass on absolute slack");
        assert!(!Band::Count.accepts(2.0, 2.6));
    }

    #[test]
    fn identical_artifacts_pass_and_regressions_are_itemized() {
        let base =
            doc("Serving", &["served q/s", "E faults"], &[("1x", &[500.0, 120.0] as &[f64])]);
        assert!(compare_artifact("serving", &base, &base).is_empty());

        // 10x slower passes nothing through the wide band; faults drifting
        // 10% breaks the tight band. Both cells are reported.
        let bad = doc("Serving", &["served q/s", "E faults"], &[("1x", &[50.0, 132.0] as &[f64])]);
        let violations = compare_artifact("serving", &base, &bad);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("served q/s") && violations[0].contains("Timing"));
        assert!(violations[1].contains("E faults") && violations[1].contains("Count"));
    }

    #[test]
    fn structural_drift_is_always_a_violation() {
        let base = doc("Fig", &["a", "b"], &[("r1", &[1.0, 2.0] as &[f64])]);
        let renamed = doc("Fig", &["a", "c"], &[("r1", &[1.0, 2.0] as &[f64])]);
        assert_eq!(compare_artifact("fig", &base, &renamed).len(), 1);
        let rerowed = doc("Fig", &["a", "b"], &[("r2", &[1.0, 2.0] as &[f64])]);
        assert!(compare_artifact("fig", &base, &rerowed)[0].contains("rows changed"));
        assert!(compare_artifact("fig", &base, "not json")[0].contains("unreadable"));
        assert!(compare_artifact("fig", "{}", &base)[0].contains("unexpected schema"));
    }

    #[test]
    fn null_cells_are_skipped_not_compared() {
        let mut with_nan = Report::new("X", "t", "x", vec!["a q/s".into()]);
        with_nan.push_row("r", vec![f64::NAN]);
        let base = with_nan.to_json();
        let fresh = doc("X", &["a q/s"], &[("r", &[1e9] as &[f64])]);
        assert!(compare_artifact("x", &base, &fresh).is_empty());
    }
}

//! The process-wide metrics registry.
//!
//! A [`MetricsRegistry`] hands out named [`Counter`]s, [`Gauge`]s and
//! [`Histogram`]s whose record paths are **wait-free** — a fixed number of
//! atomic operations, no locks, no allocation — and produces one
//! [`MetricsSnapshot`] covering everything, including the *sources*
//! (server stats, buffer-pool counters, result-cache stats, hub-label
//! telemetry) registered by the other crates.
//!
//! # Consistency discipline
//!
//! The registry reuses the two orderings the workspace's existing telemetry
//! already proved out:
//!
//! * **Within a source** (`register_source`): the closure polls one
//!   underlying API — the server's seqlock-published `ServerStats`, the
//!   storage layer's release/acquire `IoCounters` — whose snapshot is
//!   internally consistent by that API's own construction. The registry
//!   never mixes a source's values with a second read.
//! * **Across the registry's own counters**: [`Counter::add`] publishes with
//!   `Release` and the snapshot reads with `Acquire`, walking counters in
//!   **reverse registration order**. Register coarse counters first and bump
//!   them first (`accesses`, then `faults`, then `evictions`): the snapshot
//!   then reads the finest counter first, and by the release-sequence rule
//!   every observed fine increment implies its earlier coarse increment is
//!   visible — so invariants like `evictions <= faults <= accesses` hold in
//!   *every* snapshot, concurrent recorders notwithstanding (the
//!   `observability` integration suite hammers exactly this).
//!
//! Counters are striped over [`STRIPES`] cache-line-padded atomics with a
//! per-thread stripe assignment, so concurrent recorders do not contend on
//! one line; a counter's value is the stripe sum. Per-stripe values are
//! monotone and read coherently, so successive snapshots never go backwards.

use crate::histogram::{bucket_of, LatencyHistogram, BUCKETS};
use crate::trace::lock;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of counter stripes. Enough that a handful of worker threads land
/// on distinct cache lines with high probability; snapshot cost stays
/// trivial (a 16-element sum).
pub const STRIPES: usize = 16;

/// One cache line per stripe so concurrent recorders do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

thread_local! {
    /// This thread's stripe, assigned round-robin on first use.
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

fn my_stripe() -> usize {
    STRIPE.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
            s.set(v);
        }
        v
    })
}

#[derive(Default)]
struct CounterCell {
    stripes: [PaddedU64; STRIPES],
}

impl CounterCell {
    fn add(&self, n: u64) {
        // Release so that a snapshot observing this increment also observes
        // every earlier increment by the same thread (see module docs).
        self.stripes[my_stripe()].0.fetch_add(n, Ordering::Release);
    }

    fn value(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.load(Ordering::Acquire)).sum()
    }
}

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    /// A counter not attached to any registry (useful as an optional
    /// progress hook).
    pub fn detached() -> Self {
        Counter(Arc::new(CounterCell::default()))
    }

    /// Adds `n`. Wait-free: one striped `fetch_add`.
    pub fn add(&self, n: u64) {
        self.0.add(n);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value (sum over stripes, `Acquire` per stripe).
    pub fn value(&self) -> u64 {
        self.0.value()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

/// A last-write-wins instantaneous value (queue depth, resident pages).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge. Wait-free.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

/// The concurrent form of [`LatencyHistogram`]: the same log-scale buckets,
/// recorded with relaxed atomics from any thread. Crate-visible so the
/// windowed instruments ([`crate::window`]) can ring-buffer it per epoch.
pub(crate) struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_lo: AtomicU64,
    sum_hi: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_lo: AtomicU64::new(0),
            sum_hi: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }
}

impl HistogramCell {
    pub(crate) fn record(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        // 128-bit sum out of two 64-bit words: carry into `hi` when `lo`
        // wraps. A reader racing the carry sees the sum off by 2^64 for one
        // instant; the mean is advisory, the counts are what invariants use.
        let old = self.sum_lo.fetch_add(nanos, Ordering::Relaxed);
        if old.wrapping_add(nanos) < old {
            self.sum_hi.fetch_add(1, Ordering::Relaxed);
        }
        self.max.fetch_max(nanos, Ordering::Relaxed);
        self.min.fetch_min(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Clears every word back to the empty state. Only the windowed ring
    /// rotation uses this, and only on a slot whose epoch is about to be
    /// republished — concurrent recorders into a slot being reset are the
    /// documented ring-lap hazard of [`crate::window`], not a memory-safety
    /// concern (every word is an independent atomic).
    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_lo.store(0, Ordering::Relaxed);
        self.sum_hi.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Release);
    }

    /// A point-in-time read. `count` is loaded first (`Acquire`, matching
    /// the `Release` bump that ends every record) so a mid-record snapshot
    /// under-counts rather than showing buckets that sum below `count`.
    pub(crate) fn load(&self) -> LatencyHistogram {
        let count = self.count.load(Ordering::Acquire);
        let mut buckets = [0u64; BUCKETS];
        for (b, cell) in buckets.iter_mut().zip(&self.buckets) {
            *b = cell.load(Ordering::Relaxed);
        }
        let lo = self.sum_lo.load(Ordering::Relaxed);
        let hi = self.sum_hi.load(Ordering::Relaxed);
        let sum = (u128::from(hi) << 64) | u128::from(lo);
        let max = self.max.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        LatencyHistogram::from_raw(buckets, count, sum, max, min)
    }
}

/// A concurrent latency histogram handle. Cloning shares the cell.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// Records one sample. Wait-free: a handful of relaxed atomics.
    pub fn record(&self, sample: Duration) {
        let nanos = u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX);
        self.0.record(nanos);
    }

    /// Records a sample already expressed in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.0.record(nanos);
    }

    /// A point-in-time [`LatencyHistogram`] of everything recorded so far.
    pub fn load(&self) -> LatencyHistogram {
        self.0.load()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.load().fmt(f)
    }
}

enum Kind {
    Counter(Arc<CounterCell>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCell>),
}

impl Kind {
    fn type_name(&self) -> &'static str {
        match self {
            Kind::Counter(_) => "counter",
            Kind::Gauge(_) => "gauge",
            Kind::Histogram(_) => "histogram",
        }
    }
}

struct Metric {
    name: String,
    kind: Kind,
}

type SourceFn = Box<dyn Fn(&mut SampleSet) + Send + Sync>;

struct Inner {
    /// Registration order — the snapshot walks this **in reverse** (see the
    /// module docs for why that ordering carries cross-counter invariants).
    metrics: Mutex<Vec<Metric>>,
    sources: Mutex<Vec<(String, SourceFn)>>,
}

/// The process-wide registry. Cloning shares the same metric set; hand a
/// clone to every layer that records or registers a source.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Arc::new(Inner {
                metrics: Mutex::new(Vec::new()),
                sources: Mutex::new(Vec::new()),
            }),
        }
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        make: impl FnOnce() -> (Kind, T),
        reuse: impl FnOnce(&Kind) -> Option<T>,
    ) -> T {
        let mut metrics = lock(&self.inner.metrics);
        if let Some(m) = metrics.iter().find(|m| m.name == name) {
            return reuse(&m.kind).unwrap_or_else(|| {
                panic!("metric '{name}' already registered as a {}", m.kind.type_name())
            });
        }
        let (kind, handle) = make();
        metrics.push(Metric { name: name.to_string(), kind });
        handle
    }

    /// The counter named `name`, created on first use. Registration order is
    /// meaningful: register (and bump) coarse counters before the finer ones
    /// they bound, and every snapshot preserves `fine <= coarse`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_insert(
            name,
            || {
                let cell = Arc::new(CounterCell::default());
                (Kind::Counter(Arc::clone(&cell)), Counter(cell))
            },
            |k| match k {
                Kind::Counter(c) => Some(Counter(Arc::clone(c))),
                _ => None,
            },
        )
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_insert(
            name,
            || {
                let cell = Arc::new(AtomicU64::new(0));
                (Kind::Gauge(Arc::clone(&cell)), Gauge(cell))
            },
            |k| match k {
                Kind::Gauge(g) => Some(Gauge(Arc::clone(g))),
                _ => None,
            },
        )
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.get_or_insert(
            name,
            || {
                let cell = Arc::new(HistogramCell::default());
                (Kind::Histogram(Arc::clone(&cell)), Histogram(cell))
            },
            |k| match k {
                Kind::Histogram(h) => Some(Histogram(Arc::clone(h))),
                _ => None,
            },
        )
    }

    /// Registers a pollable source: at snapshot time `collect` is called
    /// with a [`SampleSet`] to fill. Use this to bridge an existing
    /// consistent-snapshot API (server stats, I/O counters, cache stats)
    /// into the registry without double-maintaining counters on the hot
    /// path.
    pub fn register_source(
        &self,
        name: &str,
        collect: impl Fn(&mut SampleSet) + Send + Sync + 'static,
    ) {
        lock(&self.inner.sources).push((name.to_string(), Box::new(collect)));
    }

    /// One consistent, point-in-time view of every registered metric and
    /// source, with all names sorted — the exporters render it
    /// byte-deterministically.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = SampleSet::default();
        {
            // Reverse registration order: the invariant-carrying read (see
            // module docs).
            let metrics = lock(&self.inner.metrics);
            for m in metrics.iter().rev() {
                match &m.kind {
                    Kind::Counter(c) => out.counter(&m.name, c.value()),
                    Kind::Gauge(g) => out.gauge(&m.name, g.load(Ordering::Relaxed)),
                    Kind::Histogram(h) => out.histogram(&m.name, h.load()),
                }
            }
        }
        {
            let sources = lock(&self.inner.sources);
            for (_, collect) in sources.iter() {
                collect(&mut out);
            }
        }
        out.counters.sort_by(|a, b| a.0.cmp(&b.0));
        out.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        out.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { counters: out.counters, gauges: out.gauges, histograms: out.histograms }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &lock(&self.inner.metrics).len())
            .field("sources", &lock(&self.inner.sources).len())
            .finish()
    }
}

/// The buffer a source fills at snapshot time.
#[derive(Default)]
pub struct SampleSet {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64)>,
    histograms: Vec<(String, LatencyHistogram)>,
}

impl SampleSet {
    /// Contributes one counter sample.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.counters.push((name.to_string(), value));
    }

    /// Contributes one gauge sample.
    pub fn gauge(&mut self, name: &str, value: u64) {
        self.gauges.push((name.to_string(), value));
    }

    /// Contributes one histogram sample.
    pub fn histogram(&mut self, name: &str, h: LatencyHistogram) {
        self.histograms.push((name.to_string(), h));
    }
}

/// A point-in-time view of the whole registry. Every `Vec` is sorted by
/// name; values of counters are monotone across successive snapshots.
#[derive(Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, distribution)` for every histogram, sorted by name.
    pub histograms: Vec<(String, LatencyHistogram)>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)).ok().map(|i| self.gauges[i].1)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.add(3);
        b.inc();
        assert_eq!(a.value(), 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x_total"), Some(4));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(7);
        g.set(5);
        assert_eq!(reg.snapshot().gauge("depth"), Some(5));
    }

    #[test]
    fn histograms_record_concurrently_and_load_consistently() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(Duration::from_nanos(i * 17 + 1));
                    }
                });
            }
        });
        let loaded = reg.snapshot().histogram("lat").unwrap().clone();
        assert_eq!(loaded.count(), 4000);
        assert_eq!(loaded.max(), Duration::from_nanos(999 * 17 + 1));
        assert_eq!(loaded.min(), Duration::from_nanos(1));
        let bucket_sum: u64 = loaded.buckets().map(|(_, n)| n).sum();
        assert_eq!(bucket_sum, 4000);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics() {
        let reg = MetricsRegistry::new();
        let _c = reg.counter("same");
        let _g = reg.gauge("same");
    }

    #[test]
    fn sources_contribute_and_names_sort() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total").add(1);
        reg.register_source("extra", |out| {
            out.counter("a_total", 10);
            out.gauge("a_gauge", 2);
        });
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a_total", "z_total"]);
        assert_eq!(snap.gauge("a_gauge"), Some(2));
    }

    #[test]
    fn detached_counter_counts() {
        let c = Counter::detached();
        c.add(2);
        c.inc();
        assert_eq!(c.value(), 3);
    }
}

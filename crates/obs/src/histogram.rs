//! Fixed-bucket log-scale latency accounting.
//!
//! A serving system is judged by its tail: averages hide the p99, and storing
//! every sample to sort later is unbounded memory on an open-ended stream.
//! [`LatencyHistogram`] is the standard compromise — a fixed array of
//! power-of-two nanosecond buckets, so `record` is O(1) with no allocation,
//! `merge` (folding per-worker histograms into one snapshot) is element-wise
//! addition, and any quantile is one cumulative walk.
//!
//! The price is resolution: a sample lands in the bucket
//! `[2^(i-1), 2^i)` ns and a quantile reports that bucket's inclusive upper
//! bound, so a reported percentile is at most 2x the true sample value (and
//! never *below* it — the histogram errs pessimistic, the safe direction for
//! latency targets). The maximum and minimum are tracked exactly.
//!
//! The server keeps **two** histograms per worker — queue wait (submit to
//! dequeue) and service time (dequeue to completion) — because the split is
//! the first diagnostic of an overloaded server: rising queue wait with flat
//! service time means admission control, not the algorithms, is the
//! bottleneck. The metrics registry ([`crate::registry`]) reuses the same
//! bucket layout for its concurrent histograms, and the exporters walk the
//! buckets in place via [`LatencyHistogram::buckets`] — no copying.

use std::time::Duration;

/// One bucket per power of two of nanoseconds. Bucket 0 holds zero-duration
/// samples; bucket `i >= 1` holds `[2^(i-1), 2^i - 1]` ns, with the last
/// bucket absorbing everything from `2^62` ns (~146 years) up.
pub const BUCKETS: usize = 64;

/// A bounded-memory latency distribution: counts in log-scale buckets plus
/// an exact count, sum, minimum and maximum.
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_nanos: u128,
    max_nanos: u64,
    /// `u64::MAX` until the first sample — the identity of `min`, so
    /// `record` and `merge` need no empty-check.
    min_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_nanos: 0,
            max_nanos: 0,
            min_nanos: u64::MAX,
        }
    }
}

/// The bucket a duration of `nanos` lands in.
pub(crate) fn bucket_of(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        ((u64::BITS - nanos.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The inclusive upper bound of bucket `i`, in nanoseconds.
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. O(1), never allocates.
    pub fn record(&mut self, sample: Duration) {
        let nanos = u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_of(nanos)] += 1;
        self.count += 1;
        self.sum_nanos += u128::from(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
        self.min_nanos = self.min_nanos.min(nanos);
    }

    /// Folds `other` into `self`: afterwards `self` reports exactly what a
    /// histogram fed both sample streams would. This is how per-worker
    /// histograms roll up into one server-wide snapshot.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
        self.min_nanos = self.min_nanos.min(other.min_nanos);
    }

    /// The raw state `(buckets, count, sum_nanos, max_nanos, min_nanos)` —
    /// what seqlock snapshot cells (the server's `stats` module, the
    /// registry's concurrent histograms) publish word by word. `min_nanos`
    /// is `u64::MAX` while the histogram is empty.
    pub fn raw(&self) -> (&[u64; BUCKETS], u64, u128, u64, u64) {
        (&self.buckets, self.count, self.sum_nanos, self.max_nanos, self.min_nanos)
    }

    /// Rebuilds a histogram from raw state read back out of a snapshot cell
    /// (inverse of [`LatencyHistogram::raw`]).
    pub fn from_raw(
        buckets: [u64; BUCKETS],
        count: u64,
        sum_nanos: u128,
        max_nanos: u64,
        min_nanos: u64,
    ) -> Self {
        LatencyHistogram { buckets, count, sum_nanos, max_nanos, min_nanos }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact mean of all samples ([`Duration::ZERO`] when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(
            u64::try_from(self.sum_nanos / u128::from(self.count)).unwrap_or(u64::MAX),
        )
    }

    /// The exact maximum sample ([`Duration::ZERO`] when empty).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// The exact minimum sample ([`Duration::ZERO`] when empty).
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.min_nanos)
    }

    /// Iterates `(inclusive_upper_bound_nanos, count)` over the buckets, in
    /// ascending bound order, without copying the bucket array — exporters
    /// walk this to emit cumulative-bucket lines in place.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().map(|(i, &n)| (bucket_upper(i), n))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), as the upper bound of the bucket the
    /// rank-`ceil(q * count)` sample landed in, capped by the exact maximum:
    /// never below the true sample, at most 2x above it.
    /// [`Duration::ZERO`] when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Duration::from_nanos(bucket_upper(i).min(self.max_nanos));
            }
        }
        self.max()
    }

    /// Number of samples strictly above `threshold`, at bucket resolution:
    /// the threshold rounds **up** to the inclusive upper bound of its own
    /// bucket, so a sample only counts as over when it landed in a strictly
    /// higher bucket. Deterministic for a given bucket layout — the SLO
    /// engine ([`crate::slo`]) builds burn rates from this, and calibrating
    /// a threshold from a reported quantile (itself a bucket upper bound)
    /// composes exactly.
    pub fn count_over(&self, threshold: Duration) -> u64 {
        let nanos = u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX);
        self.buckets.iter().skip(bucket_of(nanos) + 1).sum()
    }

    /// Median (see [`LatencyHistogram::quantile`] for the error bound).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Duration {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// 99.9th percentile — the tail the serving roadmap's SLO work budgets
    /// for.
    pub fn p999(&self) -> Duration {
        self.quantile(0.999)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("p50", &self.p50())
            .field("p90", &self.p90())
            .field("p99", &self.p99())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.p99(), Duration::ZERO);
        assert_eq!(h.p999(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn bucket_iteration_matches_boundaries_and_counts() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(700)); // bucket 10: [512, 1023]
        h.record(Duration::from_nanos(800));
        h.record(Duration::ZERO); // bucket 0
        let walked: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(walked.len(), BUCKETS);
        assert_eq!(walked[0], (0, 1));
        assert_eq!(walked[10], (1023, 2));
        let total: u64 = walked.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, h.count());
        // Bounds ascend strictly.
        for w in walked.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn quantiles_never_undershoot_and_stay_within_2x() {
        let mut h = LatencyHistogram::new();
        // 100 samples: 1us, 2us, ..., 100us.
        for i in 1..=100u64 {
            h.record(us(i));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), us(100));
        assert_eq!(h.min(), us(1));
        assert_eq!(h.mean(), Duration::from_nanos(50_500));
        for (q, true_value) in [(0.50, us(50)), (0.90, us(90)), (0.99, us(99)), (1.0, us(100))] {
            let reported = h.quantile(q);
            assert!(reported >= true_value, "q={q}: {reported:?} < {true_value:?}");
            assert!(reported <= 2 * true_value, "q={q}: {reported:?} > 2x {true_value:?}");
        }
        // Monotone in q.
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max());
    }

    #[test]
    fn p999_reaches_a_tail_p99_misses() {
        // 99 body samples + 1 outlier: rank ceil(0.99*100) = 99 stays in
        // the body, rank ceil(0.999*100) = 100 is the outlier.
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(us(10));
        }
        h.record(us(5_000));
        assert!(h.p99() < us(100));
        assert_eq!(h.p999(), us(5_000), "capped by the exact max");
    }

    #[test]
    fn exact_values_for_single_bucket_distributions() {
        // All samples in one bucket: every quantile is that bucket's upper
        // bound capped by the exact max.
        let mut h = LatencyHistogram::new();
        for _ in 0..10 {
            h.record(Duration::from_nanos(700)); // bucket [512, 1023]
        }
        assert_eq!(h.p50(), Duration::from_nanos(700), "capped by the exact max");
        assert_eq!(h.p99(), Duration::from_nanos(700));
        assert_eq!(h.min(), Duration::from_nanos(700));
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.p99(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..200u64 {
            let d = Duration::from_nanos(i * i * 37 + i);
            if i % 3 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            all.record(d);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), all.count());
        assert_eq!(merged.max(), all.max());
        assert_eq!(merged.min(), all.min());
        assert_eq!(merged.mean(), all.mean());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), all.quantile(q), "q={q}");
        }
        // Merging an empty histogram changes nothing.
        let before = format!("{merged:?}");
        merged.merge(&LatencyHistogram::new());
        assert_eq!(format!("{merged:?}"), before);
        assert!(before.contains("p99"));
    }

    #[test]
    fn min_survives_raw_round_trip_and_empty_merges() {
        let mut h = LatencyHistogram::new();
        h.record(us(3));
        h.record(us(9));
        let (buckets, count, sum, max, min) = h.raw();
        let back = LatencyHistogram::from_raw(*buckets, count, sum, max, min);
        assert_eq!(back.min(), us(3));
        assert_eq!(back.max(), us(9));
        // An empty histogram merged into an empty one still reports min 0.
        let mut e = LatencyHistogram::new();
        e.merge(&LatencyHistogram::new());
        assert_eq!(e.min(), Duration::ZERO);
        // Merging samples into an empty histogram adopts their min.
        e.merge(&h);
        assert_eq!(e.min(), us(3));
    }

    #[test]
    fn huge_samples_saturate_instead_of_wrapping() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::MAX);
        h.record(Duration::from_nanos(1));
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Duration::from_nanos(u64::MAX));
        assert_eq!(h.min(), Duration::from_nanos(1));
        assert!(h.quantile(1.0) >= Duration::from_nanos(u64::MAX - 1));
    }
}

//! Snapshot exporters: Prometheus-style text and `rnn-bench-report/v1`
//! JSON, rendered from the same [`MetricsSnapshot`].
//!
//! Both renderings are **byte-deterministic** for a given snapshot: the
//! snapshot's names are sorted, the formats contain no timestamps, and
//! floating-point values are formatted with Rust's shortest-round-trip
//! formatter. Rendering the same snapshot twice yields identical bytes —
//! the `observability` example asserts exactly that.
//!
//! Metric names may carry Prometheus-style labels inline
//! (`name{key="value"}`); the text exporter splits them so histogram
//! suffixes (`_bucket`, `_sum`, ...) land on the base name and the `le`
//! label composes with the existing ones.

use crate::histogram::LatencyHistogram;
use crate::registry::MetricsSnapshot;

/// Splits `name{labels}` into `(name, Some("labels"))`, or `(name, None)`
/// when the name carries no label set.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match (name.find('{'), name.ends_with('}')) {
        (Some(i), true) => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// `base<suffix>{labels + extra}` — the Prometheus sample-line name.
fn sample_name(base: &str, suffix: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    let mut out = String::with_capacity(base.len() + suffix.len() + 16);
    out.push_str(base);
    out.push_str(suffix);
    match (labels, extra) {
        (None, None) => {}
        (Some(l), None) => {
            out.push('{');
            out.push_str(l);
            out.push('}');
        }
        (None, Some(e)) => {
            out.push('{');
            out.push_str(e);
            out.push('}');
        }
        (Some(l), Some(e)) => {
            out.push('{');
            out.push_str(l);
            out.push(',');
            out.push_str(e);
            out.push('}');
        }
    }
    out
}

fn push_type_line(out: &mut String, seen: &mut Vec<String>, base: &str, kind: &str) {
    if seen.last().map(String::as_str) != Some(base) {
        out.push_str("# TYPE ");
        out.push_str(base);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
        seen.push(base.to_string());
    }
}

fn push_histogram(out: &mut String, name: &str, h: &LatencyHistogram) {
    let (base, labels) = split_labels(name);
    // Cumulative buckets, truncated after the last occupied one (the +Inf
    // line carries the total either way) to keep 64-bucket histograms from
    // dominating the exposition.
    let last_occupied =
        h.buckets().enumerate().filter(|&(_, (_, n))| n > 0).map(|(i, _)| i).last().unwrap_or(0);
    let mut cumulative = 0u64;
    for (i, (upper, count)) in h.buckets().enumerate() {
        if i > last_occupied {
            break;
        }
        cumulative += count;
        let le = format!("le=\"{upper}\"");
        out.push_str(&sample_name(base, "_bucket", labels, Some(&le)));
        out.push_str(&format!(" {cumulative}\n"));
    }
    out.push_str(&sample_name(base, "_bucket", labels, Some("le=\"+Inf\"")));
    out.push_str(&format!(" {}\n", h.count()));
    let (_, _, sum, _, _) = h.raw();
    out.push_str(&sample_name(base, "_sum", labels, None));
    out.push_str(&format!(" {sum}\n"));
    out.push_str(&sample_name(base, "_count", labels, None));
    out.push_str(&format!(" {}\n", h.count()));
    // Exact extremes — an extension over stock Prometheus histograms, which
    // lose both to bucket resolution.
    out.push_str(&sample_name(base, "_min", labels, None));
    out.push_str(&format!(" {}\n", h.min().as_nanos()));
    out.push_str(&sample_name(base, "_max", labels, None));
    out.push_str(&format!(" {}\n", h.max().as_nanos()));
}

/// Renders the snapshot in the Prometheus text exposition style: a `# TYPE`
/// line per metric family, one sample line per value, histograms as
/// cumulative `_bucket{le=...}` series (walked in place — no bucket copies)
/// plus `_sum`/`_count`/`_min`/`_max`.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut seen: Vec<String> = Vec::new();
    for (name, value) in &snapshot.counters {
        let (base, labels) = split_labels(name);
        push_type_line(&mut out, &mut seen, base, "counter");
        out.push_str(&sample_name(base, "", labels, None));
        out.push_str(&format!(" {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let (base, labels) = split_labels(name);
        push_type_line(&mut out, &mut seen, base, "gauge");
        out.push_str(&sample_name(base, "", labels, None));
        out.push_str(&format!(" {value}\n"));
    }
    for (name, h) in &snapshot.histograms {
        let (base, _) = split_labels(name);
        push_type_line(&mut out, &mut seen, base, "histogram");
        push_histogram(&mut out, name, h);
    }
    out
}

/// Escapes a string into a JSON string literal (same grammar as the bench
/// crate's report writer).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite f64 as a JSON number; NaN and infinities become `null`.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders the snapshot as `rnn-bench-report/v1` JSON — the exact grammar
/// `repro --json` emits for experiments, so one toolchain consumes both the
/// perf-trajectory files and scraped metrics. Counters and gauges become
/// one row each; a histogram becomes one row with the summary columns
/// filled (count, sum, mean, p50, p90, p99, p99.9, min, max — all in
/// nanoseconds) and plain values leave them `null`.
pub fn report_json(snapshot: &MetricsSnapshot) -> String {
    let columns = ["value", "count", "sum", "mean", "p50", "p90", "p99", "p999", "min", "max"];
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let pad = |v: f64| {
        let mut row = vec![f64::NAN; columns.len()];
        row[0] = v;
        row
    };
    for (name, value) in &snapshot.counters {
        rows.push((name.clone(), pad(*value as f64)));
    }
    for (name, value) in &snapshot.gauges {
        rows.push((name.clone(), pad(*value as f64)));
    }
    for (name, h) in &snapshot.histograms {
        let (_, _, sum, _, _) = h.raw();
        rows.push((
            name.clone(),
            vec![
                f64::NAN,
                h.count() as f64,
                sum as f64,
                h.mean().as_nanos() as f64,
                h.p50().as_nanos() as f64,
                h.p90().as_nanos() as f64,
                h.p99().as_nanos() as f64,
                h.p999().as_nanos() as f64,
                h.min().as_nanos() as f64,
                h.max().as_nanos() as f64,
            ],
        ));
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rnn-bench-report/v1\",\n");
    out.push_str("  \"id\": \"metrics-snapshot\",\n");
    out.push_str("  \"title\": \"unified metrics registry snapshot\",\n");
    out.push_str("  \"x_label\": \"metric\",\n");
    out.push_str("  \"columns\": [");
    for (i, c) in columns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(c));
    }
    out.push_str("],\n");
    out.push_str("  \"rows\": [\n");
    for (r, (label, values)) in rows.iter().enumerate() {
        out.push_str(&format!("    {{\"label\": {}, \"values\": [", json_string(label)));
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_number(*v));
        }
        out.push_str(if r + 1 < rows.len() { "]},\n" } else { "]}\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use std::time::Duration;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("rnn_server_submitted_total").add(12);
        reg.counter("rnn_server_completed_total{class=\"interactive\"}").add(9);
        reg.gauge("rnn_server_queue_depth").set(3);
        let h = reg.histogram("rnn_service_nanos");
        h.record(Duration::from_nanos(700));
        h.record(Duration::from_nanos(900));
        h.record(Duration::from_micros(3));
        reg
    }

    #[test]
    fn label_splitting() {
        assert_eq!(split_labels("plain"), ("plain", None));
        assert_eq!(split_labels("a{b=\"c\"}"), ("a", Some("b=\"c\"")));
        assert_eq!(
            sample_name("n", "_bucket", Some("a=\"b\""), Some("le=\"7\"")),
            "n_bucket{a=\"b\",le=\"7\"}"
        );
        assert_eq!(sample_name("n", "", None, None), "n");
    }

    #[test]
    fn prometheus_text_is_deterministic_and_complete() {
        let reg = sample_registry();
        let snap = reg.snapshot();
        let a = prometheus_text(&snap);
        let b = prometheus_text(&snap);
        assert_eq!(a, b, "same snapshot, same bytes");
        assert!(a.contains("# TYPE rnn_server_submitted_total counter"));
        assert!(a.contains("rnn_server_submitted_total 12"));
        assert!(a.contains("rnn_server_completed_total{class=\"interactive\"} 9"));
        assert!(a.contains("# TYPE rnn_server_queue_depth gauge"));
        assert!(a.contains("rnn_server_queue_depth 3"));
        assert!(a.contains("# TYPE rnn_service_nanos histogram"));
        // Cumulative buckets: two samples land in [512,1023], one in
        // [2048,4095]; the le lines are cumulative.
        assert!(a.contains("rnn_service_nanos_bucket{le=\"1023\"} 2"));
        assert!(a.contains("rnn_service_nanos_bucket{le=\"4095\"} 3"));
        assert!(a.contains("rnn_service_nanos_bucket{le=\"+Inf\"} 3"));
        assert!(a.contains("rnn_service_nanos_count 3"));
        assert!(a.contains("rnn_service_nanos_min 700"));
        assert!(a.contains("rnn_service_nanos_max 3000"));
        // Empty buckets past the last occupied one are not emitted.
        assert!(!a.contains("le=\"8191\""));
    }

    #[test]
    fn sorted_names_means_sorted_lines() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total").add(1);
        reg.counter("a_total").add(2);
        let text = prometheus_text(&reg.snapshot());
        let za = text.find("z_total").unwrap();
        let aa = text.find("a_total").unwrap();
        assert!(aa < za);
    }

    #[test]
    fn report_json_matches_the_bench_schema() {
        let reg = sample_registry();
        let snap = reg.snapshot();
        let a = report_json(&snap);
        assert_eq!(a, report_json(&snap), "same snapshot, same bytes");
        assert!(a.contains("\"schema\": \"rnn-bench-report/v1\""));
        assert!(a.contains("\"x_label\": \"metric\""));
        assert!(a.contains("{\"label\": \"rnn_server_submitted_total\", \"values\": [12, null"));
        // Histogram rows fill the summary columns, value stays null.
        assert!(a.contains("{\"label\": \"rnn_service_nanos\", \"values\": [null, 3,"));
        // Balanced structure (cheap well-formedness check).
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn empty_snapshot_renders_empty_but_valid() {
        let snap = MetricsRegistry::new().snapshot();
        assert_eq!(prometheus_text(&snap), "");
        let json = report_json(&snap);
        assert!(json.contains("\"rows\": [\n  ]"));
    }
}

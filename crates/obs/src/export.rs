//! Snapshot exporters: Prometheus-style text and `rnn-bench-report/v1`
//! JSON, rendered from the same [`MetricsSnapshot`].
//!
//! Both renderings are **byte-deterministic** for a given snapshot: the
//! snapshot's names are sorted, the formats contain no timestamps, and
//! floating-point values are formatted with Rust's shortest-round-trip
//! formatter. Rendering the same snapshot twice yields identical bytes —
//! the `observability` example asserts exactly that.
//!
//! Metric names may carry Prometheus-style labels inline
//! (`name{key="value"}`); the text exporter splits them so histogram
//! suffixes (`_bucket`, `_sum`, ...) land on the base name and the `le`
//! label composes with the existing ones.

use crate::histogram::LatencyHistogram;
use crate::recorder::{Event, EventKind};
use crate::registry::MetricsSnapshot;
use crate::trace::{Phase, QueryTrace};

/// Splits `name{labels}` into `(name, Some("labels"))`, or `(name, None)`
/// when the name carries no label set.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match (name.find('{'), name.ends_with('}')) {
        (Some(i), true) => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// `base<suffix>{labels + extra}` — the Prometheus sample-line name.
fn sample_name(base: &str, suffix: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    let mut out = String::with_capacity(base.len() + suffix.len() + 16);
    out.push_str(base);
    out.push_str(suffix);
    match (labels, extra) {
        (None, None) => {}
        (Some(l), None) => {
            out.push('{');
            out.push_str(l);
            out.push('}');
        }
        (None, Some(e)) => {
            out.push('{');
            out.push_str(e);
            out.push('}');
        }
        (Some(l), Some(e)) => {
            out.push('{');
            out.push_str(l);
            out.push(',');
            out.push_str(e);
            out.push('}');
        }
    }
    out
}

fn push_type_line(out: &mut String, seen: &mut Vec<String>, base: &str, kind: &str) {
    if seen.last().map(String::as_str) != Some(base) {
        out.push_str("# TYPE ");
        out.push_str(base);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
        seen.push(base.to_string());
    }
}

fn push_histogram(out: &mut String, name: &str, h: &LatencyHistogram) {
    let (base, labels) = split_labels(name);
    // Cumulative buckets, truncated after the last occupied one (the +Inf
    // line carries the total either way) to keep 64-bucket histograms from
    // dominating the exposition.
    let last_occupied =
        h.buckets().enumerate().filter(|&(_, (_, n))| n > 0).map(|(i, _)| i).last().unwrap_or(0);
    let mut cumulative = 0u64;
    for (i, (upper, count)) in h.buckets().enumerate() {
        if i > last_occupied {
            break;
        }
        cumulative += count;
        let le = format!("le=\"{upper}\"");
        out.push_str(&sample_name(base, "_bucket", labels, Some(&le)));
        out.push_str(&format!(" {cumulative}\n"));
    }
    out.push_str(&sample_name(base, "_bucket", labels, Some("le=\"+Inf\"")));
    out.push_str(&format!(" {}\n", h.count()));
    let (_, _, sum, _, _) = h.raw();
    out.push_str(&sample_name(base, "_sum", labels, None));
    out.push_str(&format!(" {sum}\n"));
    out.push_str(&sample_name(base, "_count", labels, None));
    out.push_str(&format!(" {}\n", h.count()));
    // Exact extremes — an extension over stock Prometheus histograms, which
    // lose both to bucket resolution.
    out.push_str(&sample_name(base, "_min", labels, None));
    out.push_str(&format!(" {}\n", h.min().as_nanos()));
    out.push_str(&sample_name(base, "_max", labels, None));
    out.push_str(&format!(" {}\n", h.max().as_nanos()));
}

/// Renders the snapshot in the Prometheus text exposition style: a `# TYPE`
/// line per metric family, one sample line per value, histograms as
/// cumulative `_bucket{le=...}` series (walked in place — no bucket copies)
/// plus `_sum`/`_count`/`_min`/`_max`.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut seen: Vec<String> = Vec::new();
    for (name, value) in &snapshot.counters {
        let (base, labels) = split_labels(name);
        push_type_line(&mut out, &mut seen, base, "counter");
        out.push_str(&sample_name(base, "", labels, None));
        out.push_str(&format!(" {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let (base, labels) = split_labels(name);
        push_type_line(&mut out, &mut seen, base, "gauge");
        out.push_str(&sample_name(base, "", labels, None));
        out.push_str(&format!(" {value}\n"));
    }
    for (name, h) in &snapshot.histograms {
        let (base, _) = split_labels(name);
        push_type_line(&mut out, &mut seen, base, "histogram");
        push_histogram(&mut out, name, h);
    }
    out
}

/// Escapes a string into a JSON string literal (same grammar as the bench
/// crate's report writer).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite f64 as a JSON number; NaN and infinities become `null`.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders the snapshot as `rnn-bench-report/v1` JSON — the exact grammar
/// `repro --json` emits for experiments, so one toolchain consumes both the
/// perf-trajectory files and scraped metrics. Counters and gauges become
/// one row each; a histogram becomes one row with the summary columns
/// filled (count, sum, mean, p50, p90, p99, p99.9, min, max — all in
/// nanoseconds) and plain values leave them `null`.
pub fn report_json(snapshot: &MetricsSnapshot) -> String {
    let columns = ["value", "count", "sum", "mean", "p50", "p90", "p99", "p999", "min", "max"];
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let pad = |v: f64| {
        let mut row = vec![f64::NAN; columns.len()];
        row[0] = v;
        row
    };
    for (name, value) in &snapshot.counters {
        rows.push((name.clone(), pad(*value as f64)));
    }
    for (name, value) in &snapshot.gauges {
        rows.push((name.clone(), pad(*value as f64)));
    }
    for (name, h) in &snapshot.histograms {
        let (_, _, sum, _, _) = h.raw();
        rows.push((
            name.clone(),
            vec![
                f64::NAN,
                h.count() as f64,
                sum as f64,
                h.mean().as_nanos() as f64,
                h.p50().as_nanos() as f64,
                h.p90().as_nanos() as f64,
                h.p99().as_nanos() as f64,
                h.p999().as_nanos() as f64,
                h.min().as_nanos() as f64,
                h.max().as_nanos() as f64,
            ],
        ));
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rnn-bench-report/v1\",\n");
    out.push_str("  \"id\": \"metrics-snapshot\",\n");
    out.push_str("  \"title\": \"unified metrics registry snapshot\",\n");
    out.push_str("  \"x_label\": \"metric\",\n");
    out.push_str("  \"columns\": [");
    for (i, c) in columns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(c));
    }
    out.push_str("],\n");
    out.push_str("  \"rows\": [\n");
    for (r, (label, values)) in rows.iter().enumerate() {
        out.push_str(&format!("    {{\"label\": {}, \"values\": [", json_string(label)));
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_number(*v));
        }
        out.push_str(if r + 1 < rows.len() { "]},\n" } else { "]}\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Microseconds with millisecond-of-a-microsecond precision: the Chrome
/// trace format's `ts`/`dur` unit, rendered deterministically from integer
/// nanoseconds (no float formatting).
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

fn push_span(
    out: &mut String,
    name: &str,
    cat: &str,
    ts_nanos: u64,
    dur_nanos: u64,
    tid: u32,
    args: &[(&str, u64)],
) {
    out.push_str(&format!(
        "    {{\"name\": {}, \"cat\": {}, \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
         \"pid\": 1, \"tid\": {}",
        json_string(name),
        json_string(cat),
        micros(ts_nanos),
        micros(dur_nanos),
        tid
    ));
    push_args(out, args);
}

fn push_args(out: &mut String, args: &[(&str, u64)]) {
    if !args.is_empty() {
        out.push_str(", \"args\": {");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {v}", json_string(k)));
        }
        out.push('}');
    }
    out.push_str("},\n");
}

/// Renders per-query traces and drained flight-recorder events as a Chrome
/// trace (the `{"traceEvents": [...]}` JSON form), loadable in
/// `chrome://tracing` and Perfetto.
///
/// Layout: `pid` 1 is the server; each worker is one `tid` track carrying,
/// per query, a queue-wait span (submit → dequeue), a service span
/// (dequeue → completion) and the per-phase spans laid back to back inside
/// it (phases are accumulated, not timestamped — the trace stores only
/// per-phase totals, so spans show proportion, in recorded phase order).
/// Flight-recorder events render as instant events on `tid` 0, named by
/// [`EventKind::name`](crate::recorder::EventKind::name) with their payload,
/// `seq` and `epoch` in `args`. Traces without a stamped
/// [`start_nanos`](crate::QueryTrace::start_nanos) are placed at their queue
/// wait's length, so standalone traces still render.
///
/// Byte-deterministic for given inputs: timestamps come from the inputs, in
/// input order, and numbers are formatted from integers.
pub fn chrome_trace(traces: &[QueryTrace], events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    for trace in traces {
        let tid = trace.worker + 1; // tid 0 is the event track
        let start = if trace.start_nanos > 0 { trace.start_nanos } else { trace.queue_wait_nanos };
        let ids: &[(&str, u64)] = &[("query", trace.query), ("k", u64::from(trace.k))];
        if trace.queue_wait_nanos > 0 {
            push_span(
                &mut out,
                &format!("queue:{}", trace.algorithm),
                "queue",
                start.saturating_sub(trace.queue_wait_nanos),
                trace.queue_wait_nanos,
                tid,
                ids,
            );
        }
        push_span(
            &mut out,
            &format!("serve:{}", trace.algorithm),
            "service",
            start,
            trace.service_nanos,
            tid,
            ids,
        );
        let mut cursor = start;
        for (phase, rec) in Phase::ALL.iter().zip(&trace.phases) {
            if rec.calls == 0 && rec.work == 0 {
                continue;
            }
            push_span(
                &mut out,
                phase.name(),
                "phase",
                cursor,
                rec.nanos,
                tid,
                &[("calls", rec.calls), ("work", rec.work)],
            );
            cursor += rec.nanos;
        }
    }
    for event in events {
        out.push_str(&format!(
            "    {{\"name\": {}, \"cat\": \"event\", \"ph\": \"i\", \"ts\": {}, \
             \"pid\": 1, \"tid\": 0, \"s\": \"g\"",
            json_string(event.kind.name()),
            micros(event.nanos),
        ));
        let mut args: Vec<(&str, u64)> = vec![("seq", event.seq), ("epoch", event.epoch)];
        match event.kind {
            EventKind::AdmissionShed { class, count } => {
                args.push(("class", class));
                args.push(("count", count));
            }
            EventKind::PointsSwap { points, delta } => {
                args.push(("points", points));
                args.push(("delta", u64::from(delta)));
            }
            EventKind::PoolResize { pages } => args.push(("pages", pages)),
            EventKind::PoolPolicy { policy } => args.push(("policy", policy)),
            EventKind::PoolClear { reset_stats } => {
                args.push(("reset_stats", u64::from(reset_stats)));
            }
            EventKind::WorkerStart { worker } => args.push(("worker", worker)),
            EventKind::WorkerStop { worker, served } => {
                args.push(("worker", worker));
                args.push(("served", served));
            }
            EventKind::SloTransition { slo, from, to } => {
                args.push(("slo", slo));
                args.push(("from", from));
                args.push(("to", to));
            }
            EventKind::SlowQuery { query, service_nanos, algorithm } => {
                args.push(("query", query));
                args.push(("service_nanos", service_nanos));
                args.push(("algorithm", algorithm));
            }
        }
        push_args(&mut out, &args);
    }
    // Strip the trailing comma of the last record (the writer emits one per
    // line); an empty trace stays a bare array.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use std::time::Duration;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("rnn_server_submitted_total").add(12);
        reg.counter("rnn_server_completed_total{class=\"interactive\"}").add(9);
        reg.gauge("rnn_server_queue_depth").set(3);
        let h = reg.histogram("rnn_service_nanos");
        h.record(Duration::from_nanos(700));
        h.record(Duration::from_nanos(900));
        h.record(Duration::from_micros(3));
        reg
    }

    #[test]
    fn label_splitting() {
        assert_eq!(split_labels("plain"), ("plain", None));
        assert_eq!(split_labels("a{b=\"c\"}"), ("a", Some("b=\"c\"")));
        assert_eq!(
            sample_name("n", "_bucket", Some("a=\"b\""), Some("le=\"7\"")),
            "n_bucket{a=\"b\",le=\"7\"}"
        );
        assert_eq!(sample_name("n", "", None, None), "n");
    }

    #[test]
    fn prometheus_text_is_deterministic_and_complete() {
        let reg = sample_registry();
        let snap = reg.snapshot();
        let a = prometheus_text(&snap);
        let b = prometheus_text(&snap);
        assert_eq!(a, b, "same snapshot, same bytes");
        assert!(a.contains("# TYPE rnn_server_submitted_total counter"));
        assert!(a.contains("rnn_server_submitted_total 12"));
        assert!(a.contains("rnn_server_completed_total{class=\"interactive\"} 9"));
        assert!(a.contains("# TYPE rnn_server_queue_depth gauge"));
        assert!(a.contains("rnn_server_queue_depth 3"));
        assert!(a.contains("# TYPE rnn_service_nanos histogram"));
        // Cumulative buckets: two samples land in [512,1023], one in
        // [2048,4095]; the le lines are cumulative.
        assert!(a.contains("rnn_service_nanos_bucket{le=\"1023\"} 2"));
        assert!(a.contains("rnn_service_nanos_bucket{le=\"4095\"} 3"));
        assert!(a.contains("rnn_service_nanos_bucket{le=\"+Inf\"} 3"));
        assert!(a.contains("rnn_service_nanos_count 3"));
        assert!(a.contains("rnn_service_nanos_min 700"));
        assert!(a.contains("rnn_service_nanos_max 3000"));
        // Empty buckets past the last occupied one are not emitted.
        assert!(!a.contains("le=\"8191\""));
    }

    #[test]
    fn sorted_names_means_sorted_lines() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total").add(1);
        reg.counter("a_total").add(2);
        let text = prometheus_text(&reg.snapshot());
        let za = text.find("z_total").unwrap();
        let aa = text.find("a_total").unwrap();
        assert!(aa < za);
    }

    #[test]
    fn report_json_matches_the_bench_schema() {
        let reg = sample_registry();
        let snap = reg.snapshot();
        let a = report_json(&snap);
        assert_eq!(a, report_json(&snap), "same snapshot, same bytes");
        assert!(a.contains("\"schema\": \"rnn-bench-report/v1\""));
        assert!(a.contains("\"x_label\": \"metric\""));
        assert!(a.contains("{\"label\": \"rnn_server_submitted_total\", \"values\": [12, null"));
        // Histogram rows fill the summary columns, value stays null.
        assert!(a.contains("{\"label\": \"rnn_service_nanos\", \"values\": [null, 3,"));
        // Balanced structure (cheap well-formedness check).
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn empty_snapshot_renders_empty_but_valid() {
        let snap = MetricsRegistry::new().snapshot();
        assert_eq!(prometheus_text(&snap), "");
        let json = report_json(&snap);
        assert!(json.contains("\"rows\": [\n  ]"));
    }

    #[test]
    fn chrome_trace_renders_spans_and_instants_that_parse_back() {
        use crate::json::JsonValue;
        use crate::trace::PhaseRecord;

        let mut trace = QueryTrace {
            algorithm: "eager",
            query: 42,
            k: 2,
            queue_wait_nanos: 1_500,
            service_nanos: 10_000,
            start_nanos: 50_000,
            worker: 3,
            ..Default::default()
        };
        trace.phases[Phase::Expansion.index()] = PhaseRecord { nanos: 6_000, calls: 1, work: 30 };
        trace.phases[Phase::RangeNn.index()] = PhaseRecord { nanos: 4_000, calls: 5, work: 12 };
        let events = vec![
            Event {
                seq: 0,
                epoch: 2,
                nanos: 55_000,
                kind: EventKind::AdmissionShed { class: 0, count: 7 },
            },
            Event {
                seq: 1,
                epoch: 3,
                nanos: 60_000,
                kind: EventKind::SloTransition { slo: 0, from: 0, to: 2 },
            },
        ];

        let text = chrome_trace(&[trace], &events);
        assert_eq!(text, chrome_trace(&[trace], &events), "byte-deterministic");
        let doc = JsonValue::parse(&text).expect("valid JSON");
        let records = doc.get("traceEvents").unwrap().as_array().unwrap();
        // queue span + service span + 2 phase spans + 2 instants.
        assert_eq!(records.len(), 6);
        let queue = &records[0];
        assert_eq!(queue.get("name").unwrap().as_str(), Some("queue:eager"));
        assert_eq!(queue.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(queue.get("ts").unwrap().as_f64(), Some(48.5), "50µs start - 1.5µs wait");
        assert_eq!(queue.get("dur").unwrap().as_f64(), Some(1.5));
        let serve = &records[1];
        assert_eq!(serve.get("name").unwrap().as_str(), Some("serve:eager"));
        assert_eq!(serve.get("ts").unwrap().as_f64(), Some(50.0));
        assert_eq!(serve.get("dur").unwrap().as_f64(), Some(10.0));
        assert_eq!(serve.get("tid").unwrap().as_f64(), Some(4.0), "worker 3 on tid 4");
        assert_eq!(serve.get("args").unwrap().get("query").unwrap().as_f64(), Some(42.0));
        // Phase spans lie back to back inside the service span.
        let (p0, p1) = (&records[2], &records[3]);
        assert_eq!(p0.get("name").unwrap().as_str(), Some("expansion"));
        assert_eq!(p0.get("ts").unwrap().as_f64(), Some(50.0));
        assert_eq!(p1.get("name").unwrap().as_str(), Some("range_nn"));
        assert_eq!(p1.get("ts").unwrap().as_f64(), Some(56.0));
        assert_eq!(p1.get("args").unwrap().get("calls").unwrap().as_f64(), Some(5.0));
        // Instants carry seq/epoch plus the payload on the event track.
        let shed = &records[4];
        assert_eq!(shed.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(shed.get("tid").unwrap().as_f64(), Some(0.0));
        assert_eq!(shed.get("args").unwrap().get("count").unwrap().as_f64(), Some(7.0));
        let slo = &records[5];
        assert_eq!(slo.get("name").unwrap().as_str(), Some("slo_transition"));
        assert_eq!(slo.get("args").unwrap().get("to").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn empty_chrome_trace_is_still_valid_json() {
        let text = chrome_trace(&[], &[]);
        let doc = crate::json::JsonValue::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }
}

//! Sampled slow-query capture.
//!
//! Aggregates answer "how slow is the service"; a [`SlowQueryLog`] answers
//! "show me the queries that were slow" — it keeps the N **worst** traces by
//! service time seen since the last drain, plus an unbiased 1-in-M uniform
//! sample of all traffic (so the log also shows what *normal* looks like,
//! not just the tail).
//!
//! The record path is wait-free in the common case: one atomic sequence
//! bump, one deterministic hash to decide sampling, one atomic threshold
//! load to decide "is this among the worst so far". Only queries that pass
//! either gate take the internal lock. The sampler is a seeded SplitMix64
//! over the arrival sequence number, so a replayed workload samples the
//! same arrivals — reproducibility over randomness, as everywhere in this
//! workspace.

use crate::trace::{lock, QueryTrace};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// SplitMix64: a tiny, well-mixed 64-bit permutation — the standard choice
/// for turning a counter into uniform bits without carrying RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct State {
    /// The worst traces so far, unordered; bounded by `worst_capacity`.
    worst: Vec<QueryTrace>,
    /// Uniform samples in arrival order; bounded by `sample_capacity`.
    samples: VecDeque<QueryTrace>,
}

/// What a drain returns: the tail and the baseline, separated.
#[derive(Debug, Default)]
pub struct SlowQueryReport {
    /// The worst traces by service time, **slowest first**.
    pub worst: Vec<QueryTrace>,
    /// The 1-in-M uniform samples, in arrival order (newest kept when the
    /// ring overflows).
    pub samples: Vec<QueryTrace>,
}

/// A fixed-capacity log of the worst-N traces plus deterministic uniform
/// samples. Shareable across workers (`&self` record path).
pub struct SlowQueryLog {
    worst_capacity: usize,
    sample_capacity: usize,
    /// Sample every M-th arrival on average; 0 disables uniform sampling.
    sample_every: u64,
    seed: u64,
    /// Arrival sequence number, also the sampler's input.
    seq: AtomicU64,
    /// Service-time admission threshold for the worst set: 0 until the set
    /// is full, then the smallest service time in it. A stale read only
    /// causes a harmless extra lock acquisition.
    threshold: AtomicU64,
    state: Mutex<State>,
}

impl SlowQueryLog {
    /// A log keeping the `worst_capacity` worst traces and up to
    /// `sample_capacity` uniform samples drawn one per `sample_every`
    /// arrivals (0 disables sampling), deterministically from `seed`.
    pub fn new(
        worst_capacity: usize,
        sample_every: u64,
        sample_capacity: usize,
        seed: u64,
    ) -> Self {
        SlowQueryLog {
            worst_capacity,
            sample_capacity,
            sample_every,
            seed,
            seq: AtomicU64::new(0),
            threshold: AtomicU64::new(0),
            state: Mutex::new(State {
                worst: Vec::with_capacity(worst_capacity),
                samples: VecDeque::with_capacity(sample_capacity),
            }),
        }
    }

    /// Number of arrivals observed since construction (drains do not reset
    /// it — the sampler sequence keeps advancing deterministically).
    pub fn observed(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Offers one finished trace. Wait-free unless the trace is sampled or
    /// beats the current worst-N threshold. Returns `true` when the trace
    /// was admitted into the worst-N set (a *capture* — the server turns
    /// these into flight-recorder events), `false` for fast-path exits and
    /// uniform samples.
    pub fn observe(&self, trace: &QueryTrace) -> bool {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let sampled =
            self.sample_every > 0 && splitmix64(self.seed ^ n).is_multiple_of(self.sample_every);
        let slow = self.worst_capacity > 0
            && trace.service_nanos >= self.threshold.load(Ordering::Relaxed);
        if !sampled && !slow {
            return false;
        }
        let mut state = lock(&self.state);
        if sampled && self.sample_capacity > 0 {
            if state.samples.len() == self.sample_capacity {
                state.samples.pop_front();
            }
            state.samples.push_back(*trace);
        }
        let mut captured = false;
        if slow {
            if state.worst.len() < self.worst_capacity {
                state.worst.push(*trace);
                captured = true;
            } else if let Some((i, min)) = state
                .worst
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.service_nanos)
                .map(|(i, t)| (i, t.service_nanos))
            {
                if trace.service_nanos > min {
                    state.worst[i] = *trace;
                    captured = true;
                }
            }
            if state.worst.len() == self.worst_capacity {
                let min = state.worst.iter().map(|t| t.service_nanos).min().unwrap_or(0);
                self.threshold.store(min, Ordering::Relaxed);
            }
        }
        captured
    }

    /// Takes everything captured so far (worst traces slowest-first, samples
    /// in arrival order) and resets the capture — the next window starts
    /// empty.
    pub fn drain(&self) -> SlowQueryReport {
        let mut state = lock(&self.state);
        let mut worst: Vec<QueryTrace> = state.worst.drain(..).collect();
        worst.sort_by_key(|t| std::cmp::Reverse(t.service_nanos));
        let samples: Vec<QueryTrace> = state.samples.drain(..).collect();
        self.threshold.store(0, Ordering::Relaxed);
        SlowQueryReport { worst, samples }
    }
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = lock(&self.state);
        f.debug_struct("SlowQueryLog")
            .field("observed", &self.observed())
            .field("worst", &state.worst.len())
            .field("samples", &state.samples.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(service_nanos: u64) -> QueryTrace {
        QueryTrace { algorithm: "eager", query: service_nanos, service_nanos, ..Default::default() }
    }

    #[test]
    fn keeps_the_true_worst_n() {
        let log = SlowQueryLog::new(3, 0, 0, 1);
        // A shuffled stream with known extremes.
        for s in [50u64, 900, 10, 700, 30, 800, 20, 60, 40] {
            log.observe(&trace(s));
        }
        let report = log.drain();
        let services: Vec<u64> = report.worst.iter().map(|t| t.service_nanos).collect();
        assert_eq!(services, vec![900, 800, 700], "worst three, slowest first");
        assert!(report.samples.is_empty());
        // Drained: the next window starts from scratch.
        log.observe(&trace(5));
        assert_eq!(log.drain().worst.len(), 1);
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let a = SlowQueryLog::new(0, 4, 100, 42);
        let b = SlowQueryLog::new(0, 4, 100, 42);
        let c = SlowQueryLog::new(0, 4, 100, 7);
        for s in 0..200u64 {
            a.observe(&trace(s));
            b.observe(&trace(s));
            c.observe(&trace(s));
        }
        let (ra, rb, rc) = (a.drain(), b.drain(), c.drain());
        let ids = |r: &SlowQueryReport| r.samples.iter().map(|t| t.query).collect::<Vec<_>>();
        assert_eq!(ids(&ra), ids(&rb), "same seed, same sample set");
        assert!(!ra.samples.is_empty(), "1-in-4 over 200 arrivals samples something");
        assert_ne!(ids(&ra), ids(&rc), "different seed, different sample set");
        // Roughly 1-in-4: within a loose band, deterministic so no flake.
        let n = ra.samples.len();
        assert!((20..=90).contains(&n), "sampled {n} of 200 at 1-in-4");
    }

    #[test]
    fn sample_ring_keeps_the_newest() {
        let log = SlowQueryLog::new(0, 1, 5, 0); // sample everything, cap 5
        for s in 0..20u64 {
            log.observe(&trace(s));
        }
        let report = log.drain();
        let ids: Vec<u64> = report.samples.iter().map(|t| t.query).collect();
        assert_eq!(ids, vec![15, 16, 17, 18, 19]);
    }

    #[test]
    fn concurrent_observers_never_lose_the_maximum() {
        let log = SlowQueryLog::new(4, 0, 0, 9);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let log = &log;
                s.spawn(move || {
                    for i in 0..500u64 {
                        log.observe(&trace(t * 1000 + i));
                    }
                });
            }
        });
        let report = log.drain();
        assert_eq!(report.worst.len(), 4);
        assert_eq!(report.worst[0].service_nanos, 3499, "global maximum survives");
    }
}

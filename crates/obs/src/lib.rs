//! Observability for the RkNN workspace: one place to record, aggregate and
//! export what every other layer measures.
//!
//! Before this crate the system had four disconnected telemetry islands —
//! the server's `ServerStats`, the storage layer's I/O counters, the
//! engine's cache statistics and the per-query `QueryStats` — none of which
//! could answer "why was *this* query slow?" or be scraped as one snapshot.
//! This crate unifies them:
//!
//! * [`MetricsRegistry`](registry::MetricsRegistry) — named counters, gauges
//!   and histograms with wait-free record paths (striped relaxed atomics),
//!   plus pollable *sources* through which the server, buffer pool, result
//!   cache and hub-label index contribute their own internally consistent
//!   counter groups. One [`snapshot`](registry::MetricsRegistry::snapshot)
//!   replaces ad-hoc polling of four APIs.
//! * [`LatencyHistogram`](histogram::LatencyHistogram) — the fixed-bucket
//!   log-scale latency distribution (moved here from `rnn-server` so every
//!   layer can use it), now with an exact minimum, p99.9 and zero-copy
//!   bucket iteration for exporters.
//! * [`QueryTrace`](trace::QueryTrace) / [`Tracer`](trace::Tracer) — a
//!   lightweight per-query span record capturing queue wait, service time
//!   and per-phase timings + work counters (expansion vs. range-NN vs.
//!   verification for the traversal algorithms, candidate generation vs.
//!   counting for hub-label). The tracer lives in the engine's `Scratch`
//!   arena, so the steady state stays allocation-free and tracing off costs
//!   one branch per instrumentation point.
//! * [`SlowQueryLog`](slowlog::SlowQueryLog) — a fixed-capacity record of
//!   the N worst traces by service time plus 1-in-M uniform samples from a
//!   seeded deterministic sampler; the common case (fast, unsampled query)
//!   never takes its lock.
//! * [`export`] — a Prometheus-style text format and the workspace's
//!   `rnn-bench-report/v1` JSON, rendered from the same snapshot. Both are
//!   byte-deterministic for a given snapshot (names are sorted).
//!
//! The crate sits at the bottom of the workspace dependency graph (std
//! only), so `rnn-storage`, `rnn-core`, `rnn-index`, `rnn-server` and
//! `rnn-bench` can all record into the same registry without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod histogram;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod slo;
pub mod slowlog;
pub mod trace;
pub mod window;

pub use export::{chrome_trace, prometheus_text, report_json};
pub use histogram::LatencyHistogram;
pub use json::{JsonError, JsonValue};
pub use recorder::{Drained, Event, EventKind, FlightRecorder};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, SampleSet};
pub use slo::{SloEngine, SloEngineBuilder, SloObjective, SloSpec, SloState, SloTransition};
pub use slowlog::{SlowQueryLog, SlowQueryReport};
pub use trace::{Phase, PhaseRecord, PhaseTimer, QueryTrace, TraceRecorder, Tracer};
pub use window::{Clock, WindowedCounter, WindowedHistogram};

//! A minimal JSON reader for the workspace's own machine-readable outputs.
//!
//! The exporters in this crate and the bench crate's `BENCH_*.json` reports
//! are all *written* by hand-rolled, byte-deterministic writers; this module
//! is the matching *reader*, so the perf-regression gate (`repro check`) can
//! load committed baselines and the observability example can assert that a
//! dumped Chrome trace parses back — all without a serde dependency (the
//! workspace builds offline).
//!
//! Full JSON per RFC 8259 minus two deliberate simplifications: numbers are
//! parsed through `f64` (fine for metric values — the writers emit nothing
//! outside f64 range) and `\u` escapes outside the BMP must be valid
//! surrogate pairs. Errors carry the byte offset for diagnostics.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects preserve order-independent access through a
/// sorted map (the workspace's writers emit deterministic key orders, but
/// the reader does not depend on them).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses `text` as one JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut elements = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(elements));
        }
        loop {
            self.skip_ws();
            elements.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(elements));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("bad low surrogate"));
                                    }
                                    let c = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // encoding is already valid — just find its width).
                    let rest = &self.bytes[self.pos..];
                    let width = match rest[0] {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&rest[..width])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits and sign are ASCII");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError { offset: start, message: format!("bad number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting_round_trip() {
        let doc = r#"{"a": [1, -2.5, 1e3, true, false, null, "x\ny"], "b": {"c": "A😀"}}"#;
        let v = JsonValue::parse(doc).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(a[3], JsonValue::Bool(true));
        assert_eq!(a[5], JsonValue::Null);
        assert_eq!(a[6].as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("A😀"));
    }

    #[test]
    fn the_crate_s_own_writers_parse_back() {
        use crate::registry::MetricsRegistry;
        let reg = MetricsRegistry::new();
        reg.counter("rnn_x_total{k=\"v\"}").add(3);
        reg.histogram("rnn_y_nanos").record(std::time::Duration::from_micros(10));
        let json = crate::export::report_json(&reg.snapshot());
        let v = JsonValue::parse(&json).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("rnn-bench-report/v1"));
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("label").unwrap().as_str(), Some("rnn_x_total{k=\"v\"}"));
        assert_eq!(rows[0].get("values").unwrap().as_array().unwrap()[0].as_f64(), Some(3.0));
    }

    #[test]
    fn garbage_is_rejected_with_an_offset() {
        for (doc, offset_at_least) in
            [("", 0), ("{", 1), ("[1,]", 3), ("\"abc", 4), ("12x", 2), ("{\"a\" 1}", 5)]
        {
            let e = JsonValue::parse(doc).unwrap_err();
            assert!(e.offset >= offset_at_least, "{doc:?}: offset {} too early", e.offset);
        }
        assert!(JsonValue::parse("1 2").is_err(), "trailing garbage");
        assert!(JsonValue::parse(" {\"a\": 1} ").is_ok(), "surrounding whitespace is fine");
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = JsonValue::parse("[1]").unwrap();
        assert!(v.get("x").is_none());
        assert!(v.as_f64().is_none());
        assert!(v.as_str().is_none());
        assert!(v.as_object().is_none());
        assert_eq!(v.as_array().unwrap().len(), 1);
    }
}

//! Windowed telemetry: rate-over-window and quantile-over-window views.
//!
//! Everything else in this crate is cumulative-since-start — a p99 from
//! [`MetricsRegistry::snapshot`] averages over the whole process lifetime,
//! so an overload that started 30 seconds ago is invisible until it
//! dominates history. [`WindowedCounter`] and [`WindowedHistogram`] fix that
//! with a ring of `N` epoch buckets over the same striped counters and
//! log-scale histograms, advanced by an explicit logical [`Clock`].
//!
//! # Clock semantics
//!
//! The clock is **logical**: an epoch is whatever the caller makes it — the
//! server ticks once per drained micro-batch round, a benchmark ticks once
//! per run phase, a test calls [`Clock::advance`] by hand. The record path
//! never reads wall-clock time (it loads one atomic to learn the current
//! epoch), so every window test is deterministic: record, advance, and the
//! window views are exact functions of that interleaving.
//!
//! # Rotation protocol
//!
//! Rotation happens in [`Clock::advance`], not on the record path. `advance`
//! first resets the ring slot the *new* epoch will use in every registered
//! instrument, then publishes the new epoch (`Release`). A recorder that
//! loads the new epoch (`Acquire`) therefore always finds its slot already
//! reset; a recorder still holding the old epoch keeps adding to the old
//! slot, which stays valid for `windows - 1` more epochs. The only hazard is
//! a recorder stalled across a full ring lap (`windows` advances between
//! loading the epoch and recording) — its sample lands in the wrong window,
//! never corrupts totals (cumulative values are recorded separately), and
//! cannot happen in single-threaded use at all.
//!
//! # Picking the window width
//!
//! `windows` bounds the longest view any consumer can ask for, and the SLO
//! engine ([`crate::slo`]) wants its long window to fit inside it. Epochs
//! cost one slot of memory each (`8` words for a counter, a full bucket
//! array for a histogram), so tens of epochs are cheap; the server defaults
//! to ring widths that hold the SLO engine's longest window plus slack.

use crate::histogram::LatencyHistogram;
use crate::registry::{Counter, HistogramCell, MetricsRegistry};
use crate::trace::lock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A shared logical epoch counter driving windowed instruments.
///
/// Cloning shares the epoch and the instrument registrations. See the
/// module docs for the rotation protocol.
#[derive(Clone)]
pub struct Clock {
    inner: Arc<ClockInner>,
}

struct ClockInner {
    epoch: AtomicU64,
    rings: Mutex<Vec<Arc<dyn Rotate + Send + Sync>>>,
}

/// Ring rotation, called by [`Clock::advance`] before the new epoch is
/// published.
trait Rotate {
    fn rotate(&self, next_epoch: u64);
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock {
    /// A new clock at epoch 0 with no registered instruments.
    pub fn new() -> Self {
        Clock {
            inner: Arc::new(ClockInner { epoch: AtomicU64::new(0), rings: Mutex::new(Vec::new()) }),
        }
    }

    /// The current epoch.
    pub fn now(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Advances to the next epoch and returns it. Resets the slot the new
    /// epoch maps to in every registered instrument *before* publishing the
    /// epoch, so recorders never observe a fresh epoch with a stale slot.
    /// O(instruments); call it from one driver (the server's micro-batch
    /// tick, a test), not from record paths.
    pub fn advance(&self) -> u64 {
        let rings = lock(&self.inner.rings);
        let next = self.inner.epoch.load(Ordering::Relaxed) + 1;
        for ring in rings.iter() {
            ring.rotate(next);
        }
        self.inner.epoch.store(next, Ordering::Release);
        next
    }

    fn register(&self, ring: Arc<dyn Rotate + Send + Sync>) {
        lock(&self.inner.rings).push(ring);
    }
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Clock")
            .field("epoch", &self.now())
            .field("instruments", &lock(&self.inner.rings).len())
            .finish()
    }
}

/// Inserts `suffix` before the label set of `name` (or appends it when the
/// name carries no labels): `a{b="c"}` + `_window` → `a_window{b="c"}`.
fn suffixed(name: &str, suffix: &str) -> String {
    match name.find('{') {
        Some(i) => format!("{}{}{}", &name[..i], suffix, &name[i..]),
        None => format!("{name}{suffix}"),
    }
}

struct CounterSlot {
    epoch: AtomicU64,
    value: AtomicU64,
}

struct WindowedCounterInner {
    clock: Clock,
    cumulative: Counter,
    slots: Vec<CounterSlot>,
}

impl Rotate for WindowedCounterInner {
    fn rotate(&self, next_epoch: u64) {
        let slot = &self.slots[(next_epoch % self.slots.len() as u64) as usize];
        slot.value.store(0, Ordering::Relaxed);
        slot.epoch.store(next_epoch, Ordering::Release);
    }
}

impl WindowedCounterInner {
    /// Sum over the slots whose epoch lies in the last `window` epochs
    /// (current epoch included).
    fn window_sum(&self, window: u64) -> u64 {
        let now = self.clock.now();
        let oldest = now.saturating_sub(window.saturating_sub(1).min(self.slots.len() as u64 - 1));
        self.slots
            .iter()
            .filter(|s| {
                let e = s.epoch.load(Ordering::Acquire);
                e >= oldest && e <= now
            })
            .map(|s| s.value.load(Ordering::Relaxed))
            .sum()
    }
}

/// A counter with both a cumulative total and a ring of per-epoch buckets.
///
/// [`add`](WindowedCounter::add) bumps the cumulative [`Counter`] (striped,
/// wait-free) and the current epoch's ring slot (one `fetch_add`). Window
/// views sum the in-window slots. Cloning shares the ring.
#[derive(Clone)]
pub struct WindowedCounter {
    inner: Arc<WindowedCounterInner>,
}

impl WindowedCounter {
    /// A windowed counter over `windows` epoch buckets, rotated by `clock`,
    /// accumulating into `cumulative` (pass a registry counter to keep the
    /// cumulative value exported, or [`Counter::detached`]).
    ///
    /// # Panics
    /// Panics if `windows == 0`.
    pub fn new(clock: &Clock, windows: usize, cumulative: Counter) -> Self {
        assert!(windows > 0, "a windowed counter needs at least one epoch bucket");
        let inner = Arc::new(WindowedCounterInner {
            clock: clock.clone(),
            cumulative,
            slots: (0..windows)
                .map(|_| CounterSlot { epoch: AtomicU64::new(0), value: AtomicU64::new(0) })
                .collect(),
        });
        clock.register(Arc::clone(&inner) as Arc<dyn Rotate + Send + Sync>);
        WindowedCounter { inner }
    }

    /// Registers `name` as a cumulative counter in `registry` plus a source
    /// `{name}_window` (suffix inserted before any label set) exporting the
    /// full-window sum as a gauge, and returns the windowed handle.
    pub fn register(registry: &MetricsRegistry, name: &str, clock: &Clock, windows: usize) -> Self {
        let wc = WindowedCounter::new(clock, windows, registry.counter(name));
        let view = wc.clone();
        let view_name = suffixed(name, "_window");
        registry.register_source(&view_name.clone(), move |out| {
            out.gauge(&view_name, view.window_sum(windows as u64));
        });
        wc
    }

    /// Adds `n` to the cumulative counter and the current epoch's bucket.
    pub fn add(&self, n: u64) {
        self.inner.cumulative.add(n);
        let e = self.inner.clock.now();
        let slot = &self.inner.slots[(e % self.inner.slots.len() as u64) as usize];
        slot.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The cumulative-since-start value.
    pub fn cumulative(&self) -> u64 {
        self.inner.cumulative.value()
    }

    /// Sum over the last `window` epochs (current included); `window` is
    /// capped at the ring width.
    pub fn window_sum(&self, window: u64) -> u64 {
        self.inner.window_sum(window)
    }

    /// The ring width in epochs.
    pub fn windows(&self) -> usize {
        self.inner.slots.len()
    }
}

impl std::fmt::Debug for WindowedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedCounter")
            .field("cumulative", &self.cumulative())
            .field("window_sum", &self.window_sum(self.windows() as u64))
            .finish()
    }
}

struct HistogramSlot {
    epoch: AtomicU64,
    cell: HistogramCell,
}

struct WindowedHistogramInner {
    clock: Clock,
    cumulative: HistogramCell,
    slots: Vec<HistogramSlot>,
}

impl Rotate for WindowedHistogramInner {
    fn rotate(&self, next_epoch: u64) {
        let slot = &self.slots[(next_epoch % self.slots.len() as u64) as usize];
        slot.cell.reset();
        slot.epoch.store(next_epoch, Ordering::Release);
    }
}

impl WindowedHistogramInner {
    fn window_histogram(&self, window: u64) -> LatencyHistogram {
        let now = self.clock.now();
        let oldest = now.saturating_sub(window.saturating_sub(1).min(self.slots.len() as u64 - 1));
        let mut out = LatencyHistogram::new();
        for slot in &self.slots {
            let e = slot.epoch.load(Ordering::Acquire);
            if e >= oldest && e <= now {
                out.merge(&slot.cell.load());
            }
        }
        out
    }
}

/// A histogram with both a cumulative distribution and a ring of per-epoch
/// buckets, yielding quantile-over-window views.
///
/// [`record`](WindowedHistogram::record) feeds the cumulative cell and the
/// current epoch's slot; [`window_histogram`](Self::window_histogram) merges
/// the in-window slots into one [`LatencyHistogram`], so a windowed p99 is
/// `window_histogram(n).p99()`. Cloning shares the ring.
#[derive(Clone)]
pub struct WindowedHistogram {
    inner: Arc<WindowedHistogramInner>,
}

impl WindowedHistogram {
    /// A windowed histogram over `windows` epoch buckets rotated by `clock`.
    ///
    /// # Panics
    /// Panics if `windows == 0`.
    pub fn new(clock: &Clock, windows: usize) -> Self {
        assert!(windows > 0, "a windowed histogram needs at least one epoch bucket");
        let inner = Arc::new(WindowedHistogramInner {
            clock: clock.clone(),
            cumulative: HistogramCell::default(),
            slots: (0..windows)
                .map(|_| HistogramSlot { epoch: AtomicU64::new(0), cell: HistogramCell::default() })
                .collect(),
        });
        clock.register(Arc::clone(&inner) as Arc<dyn Rotate + Send + Sync>);
        WindowedHistogram { inner }
    }

    /// Registers the cumulative distribution under `name` in `registry` plus
    /// a `{name}_window` histogram source carrying the full-window merge,
    /// and returns the windowed handle.
    pub fn register(registry: &MetricsRegistry, name: &str, clock: &Clock, windows: usize) -> Self {
        let wh = WindowedHistogram::new(clock, windows);
        let cumulative = wh.clone();
        let cumulative_name = name.to_string();
        registry.register_source(name, move |out| {
            out.histogram(&cumulative_name, cumulative.cumulative());
        });
        let view = wh.clone();
        let view_name = suffixed(name, "_window");
        registry.register_source(&view_name.clone(), move |out| {
            out.histogram(&view_name, view.window_histogram(windows as u64));
        });
        wh
    }

    /// Records one sample into the cumulative cell and the current epoch's
    /// slot. Wait-free: two concurrent-histogram records plus one epoch
    /// load.
    pub fn record(&self, sample: Duration) {
        self.record_nanos(u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records a sample already expressed in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.inner.cumulative.record(nanos);
        let e = self.inner.clock.now();
        let slot = &self.inner.slots[(e % self.inner.slots.len() as u64) as usize];
        slot.cell.record(nanos);
    }

    /// The cumulative-since-start distribution.
    pub fn cumulative(&self) -> LatencyHistogram {
        self.inner.cumulative.load()
    }

    /// The merged distribution over the last `window` epochs (current
    /// included); `window` is capped at the ring width.
    pub fn window_histogram(&self, window: u64) -> LatencyHistogram {
        self.inner.window_histogram(window)
    }

    /// The ring width in epochs.
    pub fn windows(&self) -> usize {
        self.inner.slots.len()
    }
}

impl std::fmt::Debug for WindowedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedHistogram")
            .field("cumulative", &self.cumulative())
            .field("window", &self.window_histogram(self.windows() as u64))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_counter_expires_old_epochs() {
        let clock = Clock::new();
        let wc = WindowedCounter::new(&clock, 3, Counter::detached());
        wc.add(5);
        assert_eq!(wc.window_sum(3), 5);
        clock.advance(); // epoch 1
        wc.add(7);
        clock.advance(); // epoch 2
        wc.add(11);
        assert_eq!(wc.window_sum(1), 11);
        assert_eq!(wc.window_sum(2), 18);
        assert_eq!(wc.window_sum(3), 23);
        clock.advance(); // epoch 3: the ring reuses epoch 0's slot
        assert_eq!(wc.window_sum(3), 18, "epoch 0 expired");
        clock.advance();
        clock.advance(); // epoch 5: everything expired
        assert_eq!(wc.window_sum(3), 0);
        assert_eq!(wc.cumulative(), 23, "cumulative survives expiry");
    }

    #[test]
    fn windowed_histogram_views_are_per_window_merges() {
        let clock = Clock::new();
        let wh = WindowedHistogram::new(&clock, 4);
        wh.record(Duration::from_micros(10));
        clock.advance();
        wh.record(Duration::from_micros(1000));
        assert_eq!(wh.window_histogram(1).count(), 1);
        assert_eq!(wh.window_histogram(1).max(), Duration::from_micros(1000));
        assert_eq!(wh.window_histogram(2).count(), 2);
        assert_eq!(wh.window_histogram(2).min(), Duration::from_micros(10));
        // Advance until the slow epoch falls out of a 2-epoch window.
        clock.advance();
        assert_eq!(wh.window_histogram(2).count(), 1);
        clock.advance();
        assert_eq!(wh.window_histogram(2).count(), 0);
        assert_eq!(wh.cumulative().count(), 2);
    }

    #[test]
    fn window_wider_than_ring_is_capped() {
        let clock = Clock::new();
        let wc = WindowedCounter::new(&clock, 2, Counter::detached());
        wc.add(1);
        clock.advance();
        wc.add(2);
        assert_eq!(wc.window_sum(100), 3, "capped at the 2-slot ring");
        clock.advance();
        assert_eq!(wc.window_sum(100), 2);
    }

    #[test]
    fn registered_instruments_export_cumulative_and_window_views() {
        let registry = MetricsRegistry::new();
        let clock = Clock::new();
        let wc = WindowedCounter::register(&registry, "rnn_x_total{k=\"v\"}", &clock, 4);
        let wh = WindowedHistogram::register(&registry, "rnn_y_nanos", &clock, 4);
        wc.add(3);
        wh.record(Duration::from_micros(5));
        clock.advance();
        wc.add(4);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rnn_x_total{k=\"v\"}"), Some(7));
        assert_eq!(snap.gauge("rnn_x_total_window{k=\"v\"}"), Some(7));
        assert_eq!(snap.histogram("rnn_y_nanos").unwrap().count(), 1);
        assert_eq!(snap.histogram("rnn_y_nanos_window").unwrap().count(), 1);
        // Expire everything out of the ring: window views drop, cumulative
        // stays.
        for _ in 0..4 {
            clock.advance();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rnn_x_total{k=\"v\"}"), Some(7));
        assert_eq!(snap.gauge("rnn_x_total_window{k=\"v\"}"), Some(0));
        assert_eq!(snap.histogram("rnn_y_nanos_window").unwrap().count(), 0);
    }

    #[test]
    fn concurrent_recorders_never_lose_cumulative_counts() {
        let clock = Clock::new();
        let wh = WindowedHistogram::new(&clock, 4);
        let wc = WindowedCounter::new(&clock, 4, Counter::detached());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (wh, wc) = (wh.clone(), wc.clone());
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        wh.record_nanos(i + 1);
                        wc.inc();
                    }
                });
            }
            for _ in 0..50 {
                clock.advance();
                std::thread::yield_now();
            }
        });
        assert_eq!(wh.cumulative().count(), 8_000);
        assert_eq!(wc.cumulative(), 8_000);
        // Ring slots only ever hold a subset of the cumulative stream.
        assert!(wh.window_histogram(4).count() <= 8_000);
        assert!(wc.window_sum(4) <= 8_000);
    }
}

//! The flight recorder: a fixed-capacity lock-free ring of structured
//! events.
//!
//! Metrics answer "how much"; the flight recorder answers "what happened,
//! in what order". Layers append compact [`EventKind`]s — admission sheds,
//! point-set swaps, buffer-pool resize/policy changes, worker lifecycle,
//! SLO transitions, slow-query captures — and a later
//! [`drain`](FlightRecorder::drain) recovers them in deterministic sequence
//! order for inspection, structured logging, or the Chrome-trace exporter
//! ([`crate::export::chrome_trace`]).
//!
//! # Design
//!
//! The ring is `capacity` slots of plain `AtomicU64` words (no `unsafe`,
//! matching the crate's `forbid(unsafe_code)`). A writer claims a global
//! sequence number with one `fetch_add`, then publishes into slot
//! `seq % capacity` under a per-slot version protocol:
//!
//! * store `2*seq + 1` (odd: write in progress), `Release`-ordered after
//!   nothing — claims the slot;
//! * write the payload words (relaxed);
//! * store `2*seq + 2` (even: published), `Release`.
//!
//! A drain reads the version (`Acquire`), the payload, then the version
//! again: any torn or overwritten slot fails the `2*seq + 2` check and is
//! counted in [`Drained::dropped`] instead of being misreported. When the
//! ring laps (more than `capacity` events between drains), the oldest
//! events are overwritten and counted as dropped — the recorder is a bounded
//! black box, honest about what it lost, never a backpressure source.
//!
//! Record cost: one `fetch_add` + six stores, no locks, no allocation.
//! Draining takes a mutex (it tracks a cursor so each event is returned
//! once), which only drains contend on.

use crate::trace::lock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Words per ring slot: `[version, epoch, nanos, tag, w0, w1, w2]`.
const SLOT_WORDS: usize = 7;

/// One structured event, as drained: the claim sequence number (global,
/// gap-free per recorder), the logical epoch it was stamped with, a
/// caller-supplied nanosecond timestamp (0 when the emitting layer keeps no
/// clock), and the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number; drains return ascending `seq`.
    pub seq: u64,
    /// The [`crate::window::Clock`] epoch at record time (0 without a clock).
    pub epoch: u64,
    /// Caller-supplied monotonic nanoseconds (0 when not stamped).
    pub nanos: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The event vocabulary. Payloads are compact codes, not strings — the
/// recorder stores three `u64` words per event. Opaque codes (`class`,
/// `policy`, `algorithm`) are defined by the emitting layer; the server
/// uses its priority/algorithm indices and the storage layer its
/// `EvictionPolicy` discriminant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Admission control shed or rejected work: `class` is the priority
    /// class code, `count` how many requests this event covers.
    AdmissionShed {
        /// Priority-class code (server-defined).
        class: u64,
        /// Requests shed in this event.
        count: u64,
    },
    /// A point-set swap served through the server (`delta = true` for
    /// `swap_points_delta`).
    PointsSwap {
        /// Points in the new live set.
        points: u64,
        /// Whether this was an incremental delta swap.
        delta: bool,
    },
    /// The buffer pool was resized to `pages` frames.
    PoolResize {
        /// New capacity in pages.
        pages: u64,
    },
    /// The buffer pool switched eviction policy.
    PoolPolicy {
        /// Policy code (storage-defined discriminant).
        policy: u64,
    },
    /// The buffer pool was cleared (`reset_stats = true` when counters were
    /// also zeroed).
    PoolClear {
        /// Whether statistics were reset along with the frames.
        reset_stats: bool,
    },
    /// A server worker thread started.
    WorkerStart {
        /// Worker index.
        worker: u64,
    },
    /// A server worker thread exited after serving `served` requests.
    WorkerStop {
        /// Worker index.
        worker: u64,
        /// Requests served over the worker's lifetime.
        served: u64,
    },
    /// An SLO changed alert state (codes are [`crate::slo::SloState`] as
    /// `u64`).
    SloTransition {
        /// Index of the spec in its [`crate::slo::SloEngine`].
        slo: u64,
        /// Previous state code.
        from: u64,
        /// New state code.
        to: u64,
    },
    /// The slow-query log captured a query into its worst-N set.
    SlowQuery {
        /// Query identifier (node id).
        query: u64,
        /// Service time in nanoseconds.
        service_nanos: u64,
        /// Algorithm code (server-defined).
        algorithm: u64,
    },
}

impl EventKind {
    /// A short stable name for exporters and logs.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::AdmissionShed { .. } => "admission_shed",
            EventKind::PointsSwap { .. } => "points_swap",
            EventKind::PoolResize { .. } => "pool_resize",
            EventKind::PoolPolicy { .. } => "pool_policy",
            EventKind::PoolClear { .. } => "pool_clear",
            EventKind::WorkerStart { .. } => "worker_start",
            EventKind::WorkerStop { .. } => "worker_stop",
            EventKind::SloTransition { .. } => "slo_transition",
            EventKind::SlowQuery { .. } => "slow_query",
        }
    }

    /// `(tag, w0, w1, w2)` wire form.
    fn encode(&self) -> (u64, u64, u64, u64) {
        match *self {
            EventKind::AdmissionShed { class, count } => (0, class, count, 0),
            EventKind::PointsSwap { points, delta } => (1, points, u64::from(delta), 0),
            EventKind::PoolResize { pages } => (2, pages, 0, 0),
            EventKind::PoolPolicy { policy } => (3, policy, 0, 0),
            EventKind::PoolClear { reset_stats } => (4, u64::from(reset_stats), 0, 0),
            EventKind::WorkerStart { worker } => (5, worker, 0, 0),
            EventKind::WorkerStop { worker, served } => (6, worker, served, 0),
            EventKind::SloTransition { slo, from, to } => (7, slo, from, to),
            EventKind::SlowQuery { query, service_nanos, algorithm } => {
                (8, query, service_nanos, algorithm)
            }
        }
    }

    fn decode(tag: u64, w0: u64, w1: u64, w2: u64) -> Option<EventKind> {
        Some(match tag {
            0 => EventKind::AdmissionShed { class: w0, count: w1 },
            1 => EventKind::PointsSwap { points: w0, delta: w1 != 0 },
            2 => EventKind::PoolResize { pages: w0 },
            3 => EventKind::PoolPolicy { policy: w0 },
            4 => EventKind::PoolClear { reset_stats: w0 != 0 },
            5 => EventKind::WorkerStart { worker: w0 },
            6 => EventKind::WorkerStop { worker: w0, served: w1 },
            7 => EventKind::SloTransition { slo: w0, from: w1, to: w2 },
            8 => EventKind::SlowQuery { query: w0, service_nanos: w1, algorithm: w2 },
            _ => return None,
        })
    }
}

/// The result of one [`FlightRecorder::drain`].
#[derive(Clone, Debug, Default)]
pub struct Drained {
    /// Events in ascending `seq` order, each returned by exactly one drain.
    pub events: Vec<Event>,
    /// Events lost to ring lapping (or torn by a racing writer) since the
    /// previous drain.
    pub dropped: u64,
}

/// The fixed-capacity lock-free event ring. Cloning the `Arc` it usually
/// lives in shares the ring; see the module docs for the slot protocol.
pub struct FlightRecorder {
    head: AtomicU64,
    epoch: Option<crate::window::Clock>,
    /// `capacity * SLOT_WORDS` atomics; slot `i` owns words
    /// `[i*SLOT_WORDS, (i+1)*SLOT_WORDS)` as `[version, epoch, nanos, tag, w0, w1, w2]`.
    words: Vec<AtomicU64>,
    /// Next sequence number a drain should return; also serializes drains.
    cursor: Mutex<u64>,
    capacity: u64,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` events (rounded up to
    /// at least 1). Without a clock every event carries epoch 0; see
    /// [`with_clock`](Self::with_clock).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1) as u64;
        FlightRecorder {
            head: AtomicU64::new(0),
            epoch: None,
            words: (0..capacity as usize * SLOT_WORDS).map(|_| AtomicU64::new(0)).collect(),
            cursor: Mutex::new(0),
            capacity,
        }
    }

    /// Stamps every event with the clock's current epoch at record time.
    pub fn with_clock(mut self, clock: crate::window::Clock) -> Self {
        self.epoch = Some(clock);
        self
    }

    /// Records one event with no timestamp. Lock-free.
    pub fn record(&self, kind: EventKind) {
        self.record_at(0, kind);
    }

    /// Records one event stamped with caller-supplied monotonic
    /// nanoseconds. Lock-free: one `fetch_add` plus seven stores.
    pub fn record_at(&self, nanos: u64, kind: EventKind) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let epoch = self.epoch.as_ref().map_or(0, |c| c.now());
        let base = ((seq % self.capacity) as usize) * SLOT_WORDS;
        let (tag, w0, w1, w2) = kind.encode();
        let version = &self.words[base];
        version.store(2 * seq + 1, Ordering::Release);
        self.words[base + 1].store(epoch, Ordering::Relaxed);
        self.words[base + 2].store(nanos, Ordering::Relaxed);
        self.words[base + 3].store(tag, Ordering::Relaxed);
        self.words[base + 4].store(w0, Ordering::Relaxed);
        self.words[base + 5].store(w1, Ordering::Relaxed);
        self.words[base + 6].store(w2, Ordering::Relaxed);
        version.store(2 * seq + 2, Ordering::Release);
    }

    /// Number of events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// The ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Returns every event published since the previous drain, in ascending
    /// sequence order, plus the count lost to lapping. Events still being
    /// written (odd version) or already overwritten are counted dropped.
    pub fn drain(&self) -> Drained {
        let mut cursor = lock(&self.cursor);
        let head = self.head.load(Ordering::Acquire);
        let start = if head - *cursor > self.capacity { head - self.capacity } else { *cursor };
        let mut out = Drained { events: Vec::new(), dropped: start - *cursor };
        for seq in start..head {
            let base = ((seq % self.capacity) as usize) * SLOT_WORDS;
            let version = &self.words[base];
            if version.load(Ordering::Acquire) != 2 * seq + 2 {
                out.dropped += 1;
                continue;
            }
            let epoch = self.words[base + 1].load(Ordering::Relaxed);
            let nanos = self.words[base + 2].load(Ordering::Relaxed);
            let tag = self.words[base + 3].load(Ordering::Relaxed);
            let w0 = self.words[base + 4].load(Ordering::Relaxed);
            let w1 = self.words[base + 5].load(Ordering::Relaxed);
            let w2 = self.words[base + 6].load(Ordering::Relaxed);
            if version.load(Ordering::Acquire) != 2 * seq + 2 {
                out.dropped += 1;
                continue;
            }
            match EventKind::decode(tag, w0, w1, w2) {
                Some(kind) => out.events.push(Event { seq, epoch, nanos, kind }),
                None => out.dropped += 1,
            }
        }
        *cursor = head;
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::Clock;

    #[test]
    fn events_round_trip_in_sequence_order() {
        let rec = FlightRecorder::new(16);
        rec.record(EventKind::WorkerStart { worker: 0 });
        rec.record_at(500, EventKind::AdmissionShed { class: 1, count: 3 });
        rec.record(EventKind::SloTransition { slo: 2, from: 0, to: 2 });
        let d = rec.drain();
        assert_eq!(d.dropped, 0);
        assert_eq!(d.events.len(), 3);
        assert_eq!(d.events[0].seq, 0);
        assert_eq!(d.events[0].kind, EventKind::WorkerStart { worker: 0 });
        assert_eq!(d.events[1].nanos, 500);
        assert_eq!(d.events[1].kind, EventKind::AdmissionShed { class: 1, count: 3 });
        assert_eq!(d.events[2].kind, EventKind::SloTransition { slo: 2, from: 0, to: 2 });
        // A second drain returns nothing new.
        assert!(rec.drain().events.is_empty());
        rec.record(EventKind::PoolResize { pages: 64 });
        let d = rec.drain();
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.events[0].seq, 3);
    }

    #[test]
    fn lapping_drops_the_oldest_and_is_counted() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(EventKind::WorkerStart { worker: i });
        }
        let d = rec.drain();
        assert_eq!(d.dropped, 6, "ring of 4 kept the newest 4 of 10");
        let workers: Vec<u64> = d
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::WorkerStart { worker } => worker,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(workers, vec![6, 7, 8, 9]);
    }

    #[test]
    fn clock_epochs_stamp_events() {
        let clock = Clock::new();
        let rec = FlightRecorder::new(8).with_clock(clock.clone());
        rec.record(EventKind::PoolPolicy { policy: 1 });
        clock.advance();
        clock.advance();
        rec.record(EventKind::PoolClear { reset_stats: true });
        let d = rec.drain();
        assert_eq!(d.events[0].epoch, 0);
        assert_eq!(d.events[1].epoch, 2);
    }

    #[test]
    fn concurrent_writers_never_produce_garbage() {
        let rec = std::sync::Arc::new(FlightRecorder::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rec = std::sync::Arc::clone(&rec);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        rec.record(EventKind::SlowQuery {
                            query: t,
                            service_nanos: i,
                            algorithm: t,
                        });
                    }
                });
            }
        });
        assert_eq!(rec.recorded(), 4_000);
        let d = rec.drain();
        assert_eq!(d.events.len() as u64 + d.dropped, 4_000);
        // Whatever survived is well-formed and strictly ordered.
        for w in d.events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        for e in &d.events {
            match e.kind {
                EventKind::SlowQuery { query, algorithm, .. } => assert_eq!(query, algorithm),
                _ => panic!("decoded a kind nobody recorded"),
            }
        }
    }

    #[test]
    fn every_kind_name_is_stable() {
        let kinds = [
            EventKind::AdmissionShed { class: 0, count: 0 },
            EventKind::PointsSwap { points: 0, delta: false },
            EventKind::PoolResize { pages: 0 },
            EventKind::PoolPolicy { policy: 0 },
            EventKind::PoolClear { reset_stats: false },
            EventKind::WorkerStart { worker: 0 },
            EventKind::WorkerStop { worker: 0, served: 0 },
            EventKind::SloTransition { slo: 0, from: 0, to: 0 },
            EventKind::SlowQuery { query: 0, service_nanos: 0, algorithm: 0 },
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len(), "event names are unique");
        for (i, k) in kinds.iter().enumerate() {
            let (tag, w0, w1, w2) = k.encode();
            assert_eq!(tag, i as u64);
            assert_eq!(EventKind::decode(tag, w0, w1, w2), Some(*k), "encode/decode round trip");
        }
        assert_eq!(EventKind::decode(99, 0, 0, 0), None);
    }
}

//! Per-query phase tracing.
//!
//! A latency histogram says a query was slow; a [`QueryTrace`] says *where*
//! the time went. Each algorithm's work decomposes into a small fixed set of
//! [`Phase`]s — the traversal family (eager, eager-M, lazy, lazy-EP, naive)
//! splits into expansion / range-NN probes / verification, the hub-label
//! algorithm into candidate generation / counting — and the trace records
//! per phase the wall time, the number of spans and an algorithm-specific
//! work counter (nodes settled, bucket entries scanned, ...).
//!
//! The [`Tracer`] is embedded in the engine's `Scratch` arena: a fixed-size
//! value, no allocation, owned by exactly one worker. Instrumentation points
//! call [`Tracer::begin`] / [`Tracer::end`] around a phase; when no trace is
//! active both are a branch on a `None` — the steady-state cost of compiled-
//! in tracing is one predictable branch per span, which is what keeps the
//! traced serving path within the <5% overhead budget the `obs-overhead`
//! experiment asserts.
//!
//! Aggregation: a [`TraceRecorder`] folds finished traces into
//! algorithm×phase counters of a [`MetricsRegistry`](crate::MetricsRegistry)
//! through wait-free pre-resolved handles (no name lookup per query).

use crate::registry::{Counter, Histogram, MetricsRegistry};
use std::sync::Mutex;
use std::time::Instant;

/// Locks ignoring poison: telemetry must not cascade a panicking recorder
/// into every thread that shares the structure.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// A phase of query execution. The first three belong to the traversal
/// algorithms, the last two to the hub-label algorithm; every phase of every
/// algorithm maps to exactly one variant so registry aggregation is a dense
/// `algorithm x phase` table.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Main network expansion: de-heaping and expanding nodes around the
    /// query (for the traversal family this is the residual service time
    /// not attributed to the probe phases below).
    Expansion,
    /// Range-NN probes: the Lemma-1 check around a settled node.
    RangeNn,
    /// Verification queries: the per-candidate k-NN check.
    Verification,
    /// Hub-label candidate generation: folding the query label's hub buckets
    /// into per-node distance minima.
    CandidateGen,
    /// Hub-label counting: scanning candidate labels' bucket prefixes for
    /// strictly closer points.
    Counting,
}

impl Phase {
    /// Every phase, in [`Phase::index`] order.
    pub const ALL: [Phase; 5] = [
        Phase::Expansion,
        Phase::RangeNn,
        Phase::Verification,
        Phase::CandidateGen,
        Phase::Counting,
    ];

    /// Number of phases (the length of the per-trace phase array).
    pub const COUNT: usize = Self::ALL.len();

    /// Position of this phase in [`Phase::ALL`] and in
    /// [`QueryTrace::phases`].
    pub fn index(self) -> usize {
        match self {
            Phase::Expansion => 0,
            Phase::RangeNn => 1,
            Phase::Verification => 2,
            Phase::CandidateGen => 3,
            Phase::Counting => 4,
        }
    }

    /// Lower-snake-case name, as used in metric names.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Expansion => "expansion",
            Phase::RangeNn => "range_nn",
            Phase::Verification => "verification",
            Phase::CandidateGen => "candidate_gen",
            Phase::Counting => "counting",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Accumulated cost of one phase within one query.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Wall time spent in the phase, nanoseconds.
    pub nanos: u64,
    /// Number of spans (e.g. individual range-NN probes) folded in.
    pub calls: u64,
    /// Algorithm-specific work units (nodes settled, label entries or
    /// bucket entries scanned, ...).
    pub work: u64,
}

/// One query's complete trace: identity, end-to-end latency split, and the
/// per-phase breakdown. `Copy` and fixed-size so traces move through the
/// serving path without allocation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct QueryTrace {
    /// The algorithm's display name (`"eager"`, `"hub-label"`, ...).
    pub algorithm: &'static str,
    /// The query node's index.
    pub query: u64,
    /// The `k` of the RkNN query.
    pub k: u32,
    /// Submit-to-dequeue wait, nanoseconds (0 outside a server).
    pub queue_wait_nanos: u64,
    /// Dequeue-to-completion service time, nanoseconds.
    pub service_nanos: u64,
    /// Service start on the owning process's monotonic timeline, nanoseconds
    /// (0 when unstamped). The server stamps this so the Chrome-trace
    /// exporter ([`crate::export::chrome_trace`]) can place the queue-wait
    /// and phase spans on a shared timeline.
    pub start_nanos: u64,
    /// Index of the worker that served the query (one exporter track per
    /// worker; 0 when unstamped).
    pub worker: u32,
    /// Per-phase breakdown, indexed by [`Phase::index`].
    pub phases: [PhaseRecord; Phase::COUNT],
}

impl Default for QueryTrace {
    fn default() -> Self {
        QueryTrace {
            algorithm: "",
            query: 0,
            k: 0,
            queue_wait_nanos: 0,
            service_nanos: 0,
            start_nanos: 0,
            worker: 0,
            phases: [PhaseRecord::default(); Phase::COUNT],
        }
    }
}

impl QueryTrace {
    /// The record of `phase`.
    pub fn phase(&self, phase: Phase) -> &PhaseRecord {
        &self.phases[phase.index()]
    }

    /// Nanoseconds attributed to phases (at most `service_nanos` once the
    /// trace is finished).
    pub fn phase_nanos(&self) -> u64 {
        self.phases.iter().map(|p| p.nanos).sum()
    }
}

/// A running phase span, returned by [`Tracer::begin`]. `None` inside when
/// no trace is active — ending such a timer is a no-op, so instrumentation
/// points need no enabled-checks of their own.
#[derive(Copy, Clone, Debug)]
pub struct PhaseTimer(Option<Instant>);

/// The per-worker trace collector, embedded in the engine's `Scratch`.
///
/// Inactive (the default) it records nothing and costs one branch per
/// instrumentation point. The engine activates it per query with
/// [`Tracer::start`]; the algorithms mark phases with [`Tracer::begin`] /
/// [`Tracer::end`]; [`Tracer::finish`] closes the query, attributing
/// untimed residual service time to the query's designated remainder phase,
/// and parks the trace for [`Tracer::take_completed`].
#[derive(Debug, Default)]
pub struct Tracer {
    started: Option<Instant>,
    remainder: Option<Phase>,
    trace: QueryTrace,
    completed: Option<QueryTrace>,
}

impl Tracer {
    /// An inactive tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Returns `true` while a query trace is being collected.
    pub fn is_active(&self) -> bool {
        self.started.is_some()
    }

    /// Opens a trace for one query. `remainder` names the phase that
    /// absorbs service time not covered by explicit spans (the expansion
    /// phase for traversal algorithms; `None` drops the residual).
    pub fn start(&mut self, algorithm: &'static str, query: u64, k: u32, remainder: Option<Phase>) {
        self.trace = QueryTrace { algorithm, query, k, ..QueryTrace::default() };
        self.remainder = remainder;
        self.completed = None;
        self.started = Some(Instant::now());
    }

    /// Starts timing a phase span. Reads the clock only while a trace is
    /// active.
    #[inline]
    pub fn begin(&self) -> PhaseTimer {
        PhaseTimer(if self.started.is_some() { Some(Instant::now()) } else { None })
    }

    /// Ends a phase span, folding its wall time plus `work` units into the
    /// phase. No-op for a timer begun outside an active trace.
    #[inline]
    pub fn end(&mut self, phase: Phase, timer: PhaseTimer, work: u64) {
        if let Some(t0) = timer.0 {
            let rec = &mut self.trace.phases[phase.index()];
            rec.nanos += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            rec.calls += 1;
            rec.work += work;
        }
    }

    /// Adds work units to a phase without timing (e.g. nodes settled by the
    /// main expansion, which is timed as the remainder).
    #[inline]
    pub fn add_work(&mut self, phase: Phase, work: u64) {
        if self.started.is_some() {
            self.trace.phases[phase.index()].work += work;
        }
    }

    /// Closes the active trace: stamps `service_nanos` with the total time
    /// since [`Tracer::start`], attributes the untimed residual to the
    /// remainder phase, and parks the trace for
    /// [`Tracer::take_completed`]. No-op when inactive.
    pub fn finish(&mut self) {
        if let Some(t0) = self.started.take() {
            let total = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.trace.service_nanos = total;
            if let Some(phase) = self.remainder {
                let timed = self.trace.phase_nanos();
                let rec = &mut self.trace.phases[phase.index()];
                rec.nanos += total.saturating_sub(timed);
                rec.calls += 1;
            }
            self.completed = Some(self.trace);
        }
    }

    /// Takes the last finished trace, leaving `None`.
    pub fn take_completed(&mut self) -> Option<QueryTrace> {
        self.completed.take()
    }
}

struct PhaseCells {
    nanos: Counter,
    calls: Counter,
    work: Counter,
}

struct AlgoCells {
    queries: Counter,
    service: Histogram,
    phases: Vec<PhaseCells>,
}

/// Pre-resolved registry handles for folding finished traces into
/// `algorithm x phase` aggregates without any per-query name lookup.
///
/// Registers, per algorithm `A` and phase `P`:
/// `rnn_trace_queries_total{algorithm="A"}`,
/// `rnn_trace_service_nanos{algorithm="A"}` (a histogram), and
/// `rnn_trace_phase_{nanos,calls,work}_total{algorithm="A",phase="P"}`.
pub struct TraceRecorder {
    algos: Vec<AlgoCells>,
}

impl TraceRecorder {
    /// Creates the dense counter table for `algorithms` (display names, in
    /// the caller's canonical index order) in `registry`.
    pub fn new(registry: &MetricsRegistry, algorithms: &[&str]) -> Self {
        let algos = algorithms
            .iter()
            .map(|a| AlgoCells {
                queries: registry.counter(&format!("rnn_trace_queries_total{{algorithm=\"{a}\"}}")),
                service: registry
                    .histogram(&format!("rnn_trace_service_nanos{{algorithm=\"{a}\"}}")),
                phases: Phase::ALL
                    .iter()
                    .map(|p| PhaseCells {
                        nanos: registry.counter(&format!(
                            "rnn_trace_phase_nanos_total{{algorithm=\"{a}\",phase=\"{p}\"}}"
                        )),
                        calls: registry.counter(&format!(
                            "rnn_trace_phase_calls_total{{algorithm=\"{a}\",phase=\"{p}\"}}"
                        )),
                        work: registry.counter(&format!(
                            "rnn_trace_phase_work_total{{algorithm=\"{a}\",phase=\"{p}\"}}"
                        )),
                    })
                    .collect(),
            })
            .collect();
        TraceRecorder { algos }
    }

    /// Number of algorithm slots.
    pub fn algorithms(&self) -> usize {
        self.algos.len()
    }

    /// Folds one finished trace into the aggregates. `algo_index` must be
    /// the index `algorithms` was passed in with. Wait-free.
    pub fn record(&self, algo_index: usize, trace: &QueryTrace) {
        let cells = &self.algos[algo_index];
        cells.queries.inc();
        cells.service.record_nanos(trace.service_nanos);
        for (phase, rec) in Phase::ALL.iter().zip(&trace.phases) {
            if rec.calls == 0 && rec.work == 0 {
                continue;
            }
            let c = &cells.phases[phase.index()];
            c.nanos.add(rec.nanos);
            c.calls.add(rec.calls);
            c.work.add(rec.work);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn phase_indices_match_all_order() {
        for (i, p) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::COUNT, 5);
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::COUNT, "phase names are unique");
    }

    #[test]
    fn inactive_tracer_is_a_no_op() {
        let mut t = Tracer::new();
        assert!(!t.is_active());
        let timer = t.begin();
        t.end(Phase::RangeNn, timer, 10);
        t.add_work(Phase::Expansion, 5);
        t.finish();
        assert!(t.take_completed().is_none());
    }

    #[test]
    fn trace_collects_phases_and_remainder() {
        let mut t = Tracer::new();
        t.start("eager", 42, 2, Some(Phase::Expansion));
        assert!(t.is_active());
        let timer = t.begin();
        std::thread::sleep(Duration::from_millis(2));
        t.end(Phase::RangeNn, timer, 7);
        t.add_work(Phase::Expansion, 3);
        std::thread::sleep(Duration::from_millis(1));
        t.finish();
        assert!(!t.is_active());
        let trace = t.take_completed().expect("finished trace");
        assert!(t.take_completed().is_none(), "taken once");
        assert_eq!(trace.algorithm, "eager");
        assert_eq!(trace.query, 42);
        assert_eq!(trace.k, 2);
        let probe = trace.phase(Phase::RangeNn);
        assert_eq!((probe.calls, probe.work), (1, 7));
        assert!(probe.nanos >= 1_000_000, "slept 2ms inside the span");
        let exp = trace.phase(Phase::Expansion);
        assert_eq!(exp.work, 3);
        assert!(exp.nanos > 0, "remainder time lands on expansion");
        assert!(trace.service_nanos >= trace.phase_nanos());
    }

    #[test]
    fn starting_anew_discards_the_previous_query() {
        let mut t = Tracer::new();
        t.start("lazy", 1, 1, None);
        t.add_work(Phase::Verification, 9);
        // Never finished — e.g. the algorithm panicked and the worker reused
        // the scratch. The next query must not inherit its phases.
        t.start("naive", 2, 1, None);
        t.finish();
        let trace = t.take_completed().unwrap();
        assert_eq!(trace.algorithm, "naive");
        assert_eq!(trace.phase(Phase::Verification).work, 0);
    }

    #[test]
    fn recorder_aggregates_per_algorithm_and_phase() {
        let reg = MetricsRegistry::new();
        let rec = TraceRecorder::new(&reg, &["eager", "hub-label"]);
        assert_eq!(rec.algorithms(), 2);
        let mut trace = QueryTrace { algorithm: "eager", service_nanos: 500, ..Default::default() };
        trace.phases[Phase::RangeNn.index()] = PhaseRecord { nanos: 300, calls: 4, work: 11 };
        rec.record(0, &trace);
        rec.record(0, &trace);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("rnn_trace_phase_work_total{algorithm=\"eager\",phase=\"range_nn\"}"),
            Some(22)
        );
        assert_eq!(
            snap.counter("rnn_trace_phase_calls_total{algorithm=\"eager\",phase=\"range_nn\"}"),
            Some(8)
        );
        assert_eq!(snap.counter("rnn_trace_queries_total{algorithm=\"eager\"}"), Some(2));
        assert_eq!(snap.counter("rnn_trace_queries_total{algorithm=\"hub-label\"}"), Some(0));
        let service = snap.histogram("rnn_trace_service_nanos{algorithm=\"eager\"}").unwrap();
        assert_eq!(service.count(), 2);
    }
}

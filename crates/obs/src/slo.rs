//! The SLO engine: declarative objectives, multi-window burn rates, and an
//! `ok / warning / critical` alert state machine.
//!
//! An SLO ("99% of interactive requests under 10ms") defines an **error
//! budget** — the fraction of events allowed to violate the objective
//! (1% here). The **burn rate** over a window is the observed bad fraction
//! divided by that budget: burn 1.0 spends the budget exactly as fast as
//! allowed, burn 10 spends it ten times too fast. Following the multi-window
//! discipline from the SRE literature, an alert fires only when **both** a
//! short and a long window burn too fast: the short window gives detection
//! latency (one epoch after a calibrated overload, see the `slo` repro
//! experiment), the long window suppresses one-epoch blips, and recovery is
//! symmetric — when the burst ends, the short window clears first and the
//! state drops as soon as either window stops burning.
//!
//! Everything is evaluated against [`WindowedHistogram`] /
//! [`WindowedCounter`] views on the same logical [`Clock`](crate::window::Clock)
//! the instruments record under, so SLO evaluation is as deterministic as
//! the window tests: no wall-clock anywhere.
//!
//! This PR is observe-only: the engine exports state and burn gauges,
//! appends [`EventKind::SloTransition`] events to a flight recorder, and
//! returns transitions from [`SloEngine::evaluate`] — nothing feeds
//! admission control yet, but the state codes are shaped so a later PR can.

use crate::recorder::{EventKind, FlightRecorder};
use crate::registry::{Gauge, MetricsRegistry};
use crate::window::{WindowedCounter, WindowedHistogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What an [`SloSpec`] promises.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SloObjective {
    /// `quantile` of latencies stays at or under `threshold`: the error
    /// budget is `1 - quantile`, and a sample is bad when it lands in a
    /// bucket strictly above the threshold's
    /// (see [`LatencyHistogram::count_over`](crate::LatencyHistogram::count_over)).
    LatencyQuantile {
        /// The promised quantile (e.g. `0.99`), in `(0, 1)`.
        quantile: f64,
        /// The latency objective.
        threshold: Duration,
    },
    /// At most `max_ratio` of events are bad (e.g. shed / submitted): the
    /// error budget *is* `max_ratio`.
    ErrorRatio {
        /// The tolerated bad fraction, in `(0, 1]`.
        max_ratio: f64,
    },
}

/// One declarative objective plus its alerting windows.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Stable name, used as the `slo` label on exported gauges.
    pub name: String,
    /// The promise.
    pub objective: SloObjective,
    /// Epochs in the fast-detection window (≥ 1).
    pub short_window: u64,
    /// Epochs in the blip-suppression window (≥ `short_window`).
    pub long_window: u64,
    /// Burn rate at or above which both windows must agree for `warning`.
    pub warning_burn: f64,
    /// Burn rate at or above which both windows must agree for `critical`.
    pub critical_burn: f64,
}

impl SloSpec {
    /// A latency-quantile SLO with conventional burn thresholds
    /// (warning 2, critical 10) over a 1-epoch short and 4-epoch long
    /// window.
    pub fn latency(name: impl Into<String>, quantile: f64, threshold: Duration) -> Self {
        SloSpec {
            name: name.into(),
            objective: SloObjective::LatencyQuantile { quantile, threshold },
            short_window: 1,
            long_window: 4,
            warning_burn: 2.0,
            critical_burn: 10.0,
        }
    }

    /// An error-ratio SLO with the same conventional windows and burns.
    pub fn error_ratio(name: impl Into<String>, max_ratio: f64) -> Self {
        SloSpec {
            name: name.into(),
            objective: SloObjective::ErrorRatio { max_ratio },
            short_window: 1,
            long_window: 4,
            warning_burn: 2.0,
            critical_burn: 10.0,
        }
    }

    /// Overrides the windows.
    pub fn with_windows(mut self, short: u64, long: u64) -> Self {
        self.short_window = short.max(1);
        self.long_window = long.max(self.short_window);
        self
    }

    /// Overrides the burn thresholds.
    pub fn with_burns(mut self, warning: f64, critical: f64) -> Self {
        self.warning_burn = warning;
        self.critical_burn = critical.max(warning);
        self
    }
}

/// The alert state machine's states, ordered by severity. The `u64` codes
/// (`Ok = 0`, `Warning = 1`, `Critical = 2`) are what the state gauge and
/// [`EventKind::SloTransition`] carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloState {
    /// Burning within budget on at least one window.
    Ok,
    /// Both windows burning at `warning_burn` or faster.
    Warning,
    /// Both windows burning at `critical_burn` or faster.
    Critical,
}

impl SloState {
    /// The exported code.
    pub fn code(self) -> u64 {
        match self {
            SloState::Ok => 0,
            SloState::Warning => 1,
            SloState::Critical => 2,
        }
    }

    /// Decodes an exported code (saturating at `Critical`).
    pub fn from_code(code: u64) -> SloState {
        match code {
            0 => SloState::Ok,
            1 => SloState::Warning,
            _ => SloState::Critical,
        }
    }

    /// A stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warning => "warning",
            SloState::Critical => "critical",
        }
    }
}

/// One state change, as returned by [`SloEngine::evaluate`].
#[derive(Clone, Debug, PartialEq)]
pub struct SloTransition {
    /// Index of the spec in the engine (also the `slo` word of the recorded
    /// event).
    pub slo: usize,
    /// The spec's name.
    pub name: String,
    /// The epoch the evaluation ran at.
    pub epoch: u64,
    /// Previous state.
    pub from: SloState,
    /// New state.
    pub to: SloState,
    /// Burn rate over the short window at evaluation time.
    pub short_burn: f64,
    /// Burn rate over the long window at evaluation time.
    pub long_burn: f64,
}

/// What a spec is evaluated against.
enum Binding {
    /// Latency objective over a windowed histogram.
    Latency(WindowedHistogram),
    /// Ratio objective over `(bad, total)` windowed counters.
    Ratio(WindowedCounter, WindowedCounter),
}

struct BoundSlo {
    spec: SloSpec,
    binding: Binding,
    state: AtomicU64,
    state_gauge: Option<Gauge>,
    short_gauge: Option<Gauge>,
    long_gauge: Option<Gauge>,
}

impl BoundSlo {
    /// Burn rate over `window` epochs: observed bad fraction / error budget.
    /// An empty window burns at 0 (nothing happened, nothing burned).
    fn burn(&self, window: u64) -> f64 {
        let (bad, total, budget) = match (&self.binding, self.spec.objective) {
            (Binding::Latency(wh), SloObjective::LatencyQuantile { quantile, threshold }) => {
                let h = wh.window_histogram(window);
                (h.count_over(threshold), h.count(), 1.0 - quantile)
            }
            (Binding::Ratio(bad, total), SloObjective::ErrorRatio { max_ratio }) => {
                (bad.window_sum(window), total.window_sum(window), max_ratio)
            }
            // `add_latency` / `add_ratio` pair bindings with matching
            // objectives; the arms below are unreachable by construction.
            (Binding::Latency(_), SloObjective::ErrorRatio { .. })
            | (Binding::Ratio(..), SloObjective::LatencyQuantile { .. }) => unreachable!(),
        };
        if total == 0 || budget <= 0.0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / budget
    }
}

/// Evaluates a set of bound [`SloSpec`]s at each clock tick. Shareable
/// (`Arc` inside); the server ticks it from the same place it advances the
/// clock.
#[derive(Clone)]
pub struct SloEngine {
    slos: Arc<Vec<BoundSlo>>,
}

/// Builder for [`SloEngine`]: bind each spec to the windowed instrument it
/// judges, then [`build`](SloEngineBuilder::build).
#[derive(Default)]
pub struct SloEngineBuilder {
    slos: Vec<BoundSlo>,
}

impl SloEngineBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a latency-quantile spec to the windowed histogram carrying the
    /// latencies it judges.
    ///
    /// # Panics
    /// Panics if the spec's objective is not [`SloObjective::LatencyQuantile`].
    pub fn latency(mut self, spec: SloSpec, histogram: WindowedHistogram) -> Self {
        assert!(
            matches!(spec.objective, SloObjective::LatencyQuantile { .. }),
            "'{}' is not a latency objective",
            spec.name
        );
        self.slos.push(BoundSlo {
            spec,
            binding: Binding::Latency(histogram),
            state: AtomicU64::new(SloState::Ok.code()),
            state_gauge: None,
            short_gauge: None,
            long_gauge: None,
        });
        self
    }

    /// Binds an error-ratio spec to `(bad, total)` windowed counters.
    ///
    /// # Panics
    /// Panics if the spec's objective is not [`SloObjective::ErrorRatio`].
    pub fn ratio(mut self, spec: SloSpec, bad: WindowedCounter, total: WindowedCounter) -> Self {
        assert!(
            matches!(spec.objective, SloObjective::ErrorRatio { .. }),
            "'{}' is not a ratio objective",
            spec.name
        );
        self.slos.push(BoundSlo {
            spec,
            binding: Binding::Ratio(bad, total),
            state: AtomicU64::new(SloState::Ok.code()),
            state_gauge: None,
            short_gauge: None,
            long_gauge: None,
        });
        self
    }

    /// Registers per-spec gauges in `registry` — `rnn_slo_state{slo="..."}`
    /// (the state code) and `rnn_slo_burn_{short,long}_permille{slo="..."}`
    /// (burn rates scaled by 1000, saturating) — updated on every
    /// [`SloEngine::evaluate`].
    pub fn register(mut self, registry: &MetricsRegistry) -> Self {
        for slo in &mut self.slos {
            let label = format!("{{slo=\"{}\"}}", slo.spec.name);
            slo.state_gauge = Some(registry.gauge(&format!("rnn_slo_state{label}")));
            slo.short_gauge = Some(registry.gauge(&format!("rnn_slo_burn_short_permille{label}")));
            slo.long_gauge = Some(registry.gauge(&format!("rnn_slo_burn_long_permille{label}")));
        }
        self
    }

    /// Finishes the engine.
    pub fn build(self) -> SloEngine {
        SloEngine { slos: Arc::new(self.slos) }
    }
}

impl SloEngine {
    /// Number of bound specs.
    pub fn len(&self) -> usize {
        self.slos.len()
    }

    /// `true` when no specs are bound.
    pub fn is_empty(&self) -> bool {
        self.slos.is_empty()
    }

    /// The spec at `index`.
    pub fn spec(&self, index: usize) -> Option<&SloSpec> {
        self.slos.get(index).map(|s| &s.spec)
    }

    /// The current state of the spec at `index`.
    pub fn state(&self, index: usize) -> Option<SloState> {
        self.slos.get(index).map(|s| SloState::from_code(s.state.load(Ordering::Relaxed)))
    }

    /// Evaluates every spec at `epoch`, updates gauges, appends an
    /// [`EventKind::SloTransition`] per state change to `recorder` (when
    /// given), and returns the transitions. Call once per clock tick from
    /// one driver; evaluation is not a hot path (it merges window slots).
    pub fn evaluate(&self, epoch: u64, recorder: Option<&FlightRecorder>) -> Vec<SloTransition> {
        let mut transitions = Vec::new();
        for (index, slo) in self.slos.iter().enumerate() {
            let short_burn = slo.burn(slo.spec.short_window);
            let long_burn = slo.burn(slo.spec.long_window);
            let both_at_least = |t: f64| short_burn >= t && long_burn >= t;
            let next = if both_at_least(slo.spec.critical_burn) {
                SloState::Critical
            } else if both_at_least(slo.spec.warning_burn) {
                SloState::Warning
            } else {
                SloState::Ok
            };
            let prev = SloState::from_code(slo.state.swap(next.code(), Ordering::Relaxed));
            let permille = |burn: f64| (burn * 1000.0).min(u64::MAX as f64) as u64;
            if let Some(g) = &slo.state_gauge {
                g.set(next.code());
            }
            if let Some(g) = &slo.short_gauge {
                g.set(permille(short_burn));
            }
            if let Some(g) = &slo.long_gauge {
                g.set(permille(long_burn));
            }
            if prev != next {
                if let Some(rec) = recorder {
                    rec.record(EventKind::SloTransition {
                        slo: index as u64,
                        from: prev.code(),
                        to: next.code(),
                    });
                }
                transitions.push(SloTransition {
                    slo: index,
                    name: slo.spec.name.clone(),
                    epoch,
                    from: prev,
                    to: next,
                    short_burn,
                    long_burn,
                });
            }
        }
        transitions
    }
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_map();
        for (i, slo) in self.slos.iter().enumerate() {
            d.entry(&slo.spec.name, &self.state(i).unwrap_or(SloState::Ok).name());
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::Clock;
    use crate::Counter;

    /// 1ms objective at p99: the error budget is 1%.
    fn latency_engine(clock: &Clock) -> (SloEngine, WindowedHistogram) {
        let wh = WindowedHistogram::new(clock, 8);
        let spec = SloSpec::latency("interactive-p99", 0.99, Duration::from_millis(1))
            .with_windows(1, 4)
            .with_burns(2.0, 10.0);
        (SloEngineBuilder::new().latency(spec, wh.clone()).build(), wh)
    }

    #[test]
    fn calibrated_burst_flips_to_critical_within_one_window_and_recovers() {
        let clock = Clock::new();
        let (engine, wh) = latency_engine(&clock);

        // The driver pattern: record the epoch's traffic, evaluate (the
        // current epoch is the newest window slot), then advance.
        // Healthy epochs: 100 fast samples each, nothing over 1ms.
        for _ in 0..4 {
            for _ in 0..100 {
                wh.record(Duration::from_micros(100));
            }
            let t = engine.evaluate(clock.now(), None);
            assert!(t.is_empty(), "healthy traffic never transitions");
            assert_eq!(engine.state(0), Some(SloState::Ok));
            clock.advance();
        }

        // The burst: half the epoch's samples blow the objective. Bad
        // fraction 0.5 / budget 0.01 = burn 50 on the short window; the
        // long window sees 50/400 bad = burn 12.5 — both over critical.
        for _ in 0..50 {
            wh.record(Duration::from_micros(100));
            wh.record(Duration::from_millis(20));
        }
        let t = engine.evaluate(clock.now(), None);
        assert_eq!(t.len(), 1, "detected within one window");
        assert_eq!(t[0].from, SloState::Ok);
        assert_eq!(t[0].to, SloState::Critical);
        assert!(t[0].short_burn >= 10.0 && t[0].long_burn >= 10.0);
        clock.advance();

        // Recovery: a healthy epoch again. The short window clears
        // immediately, dropping the state out of critical even while the
        // long window still remembers the burst.
        for _ in 0..100 {
            wh.record(Duration::from_micros(100));
        }
        let t = engine.evaluate(clock.now(), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, SloState::Ok, "short window cleared: {t:?}");
        assert_eq!(engine.state(0), Some(SloState::Ok));
    }

    #[test]
    fn one_epoch_blip_never_reaches_critical_without_the_long_window() {
        let clock = Clock::new();
        let (engine, wh) = latency_engine(&clock);
        // A long healthy history...
        for _ in 0..3 {
            for _ in 0..1_000 {
                wh.record(Duration::from_micros(50));
            }
            engine.evaluate(clock.now(), None);
            clock.advance();
        }
        // ...then one epoch with a couple of slow queries out of 1000:
        // short burn = (2/1000)/0.01 = 0.2 — under warning, no transition.
        for _ in 0..998 {
            wh.record(Duration::from_micros(50));
        }
        wh.record(Duration::from_millis(5));
        wh.record(Duration::from_millis(5));
        assert!(engine.evaluate(clock.now(), None).is_empty());
        assert_eq!(engine.state(0), Some(SloState::Ok));
    }

    #[test]
    fn ratio_slo_burns_on_shed_fraction_and_records_transitions() {
        let clock = Clock::new();
        let shed = WindowedCounter::new(&clock, 8, Counter::detached());
        let submitted = WindowedCounter::new(&clock, 8, Counter::detached());
        let spec = SloSpec::error_ratio("shed-ratio", 0.05).with_windows(1, 2).with_burns(2.0, 4.0);
        let engine = SloEngineBuilder::new().ratio(spec, shed.clone(), submitted.clone()).build();
        let recorder = FlightRecorder::new(8);

        submitted.add(100);
        assert!(engine.evaluate(clock.now(), Some(&recorder)).is_empty());
        clock.advance();
        // First bursty epoch: 30% shed against a 5% budget burns the short
        // window at 6, but the long window still spans the healthy epoch
        // (30/200 = 15% → burn 3) — warning, not critical.
        submitted.add(100);
        shed.add(30);
        let t = engine.evaluate(clock.now(), Some(&recorder));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, SloState::Warning);
        clock.advance();
        // Second bursty epoch pushes the long window over too: critical.
        submitted.add(100);
        shed.add(30);
        let t = engine.evaluate(clock.now(), Some(&recorder));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].from, SloState::Warning);
        assert_eq!(t[0].to, SloState::Critical);
        let kinds: Vec<EventKind> = recorder.drain().events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::SloTransition { slo: 0, from: 0, to: 1 },
                EventKind::SloTransition { slo: 0, from: 1, to: 2 },
            ]
        );
    }

    #[test]
    fn empty_windows_burn_nothing() {
        let clock = Clock::new();
        let (engine, _wh) = latency_engine(&clock);
        for _ in 0..10 {
            assert!(engine.evaluate(clock.now(), None).is_empty());
            clock.advance();
        }
        assert_eq!(engine.state(0), Some(SloState::Ok));
    }

    #[test]
    fn gauges_export_state_and_burn() {
        let registry = MetricsRegistry::new();
        let clock = Clock::new();
        let wh = WindowedHistogram::new(&clock, 4);
        let spec = SloSpec::latency("api", 0.99, Duration::from_millis(1)).with_windows(1, 1);
        let engine = SloEngineBuilder::new().latency(spec, wh.clone()).register(&registry).build();
        for _ in 0..10 {
            wh.record(Duration::from_millis(20));
        }
        engine.evaluate(clock.now(), None);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("rnn_slo_state{slo=\"api\"}"), Some(2));
        // Bad fraction 1.0 / budget 0.01 = burn 100 → ~100_000 permille
        // (within one ulp of the f64 budget).
        let short = snap.gauge("rnn_slo_burn_short_permille{slo=\"api\"}").unwrap();
        let long = snap.gauge("rnn_slo_burn_long_permille{slo=\"api\"}").unwrap();
        assert!((99_990..=100_010).contains(&short), "short burn {short}");
        assert_eq!(short, long);
    }

    #[test]
    fn warning_sits_between_ok_and_critical() {
        let clock = Clock::new();
        let wh = WindowedHistogram::new(&clock, 4);
        let spec = SloSpec::latency("mid", 0.9, Duration::from_millis(1))
            .with_windows(1, 1)
            .with_burns(2.0, 5.0);
        let engine = SloEngineBuilder::new().latency(spec, wh.clone()).build();
        // Bad fraction 0.3 against a 10% budget: burn 3 — warning only.
        for _ in 0..7 {
            wh.record(Duration::from_micros(10));
        }
        for _ in 0..3 {
            wh.record(Duration::from_millis(10));
        }
        let t = engine.evaluate(clock.now(), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, SloState::Warning);
        assert!(SloState::Warning > SloState::Ok && SloState::Critical > SloState::Warning);
    }
}

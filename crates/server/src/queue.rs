//! The bounded MPMC request queue and its admission policies.
//!
//! This is the hand-rolled heart of the server: a fixed-capacity ring buffer
//! guarded by one mutex and two condvars (`not_empty` for consumers,
//! `not_full` for blocked producers). Many submitter threads push, many
//! worker threads pop — workers in *micro-batches* ([`RequestQueue::
//! pop_batch`] hands out up to B requests per wakeup, so a worker pays one
//! lock acquisition and one condvar wakeup for B requests when the queue
//! runs deep).
//!
//! Admission control happens at the full-queue edge and is the
//! [`BackpressurePolicy`]'s choice:
//!
//! * [`Block`](BackpressurePolicy::Block) — the submitter waits for space.
//!   Nothing is ever dropped; overload turns into submitter back-pressure
//!   (closed-loop clients slow down).
//! * [`Reject`](BackpressurePolicy::Reject) — the submitter gets
//!   `QueueFull` immediately. Overload turns into fast failures the client
//!   can retry elsewhere; queue wait stays bounded.
//! * [`Shed`](BackpressurePolicy::Shed) — the **oldest request already past
//!   its deadline** is dropped to make room (its ticket resolves to `Shed`);
//!   with nothing expired, the incoming request is rejected. Overload
//!   spends the queue's capacity on requests that can still make their
//!   deadlines, which maximizes useful goodput for deadline-bearing
//!   traffic.
//!
//! The queue never drops silently: every admission decision either hands the
//! request to a worker, hands it back to the caller, or names a victim whose
//! ticket the caller must resolve.

use crate::request::{lock, Queued};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// What to do with a new request when the queue is full.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the submitter until a worker frees space (the default; never
    /// drops work).
    #[default]
    Block,
    /// Turn the request away immediately with `QueueFull`.
    Reject,
    /// Drop the oldest already-expired request to make room; reject the
    /// newcomer if nothing in the queue is past its deadline. Workers also
    /// drop expired requests at dequeue under this policy.
    Shed,
}

/// The outcome of one admission decision.
pub(crate) enum Admission {
    /// The request is in the queue.
    Enqueued,
    /// The request is in the queue; the named victim was shed to make room
    /// and the caller must resolve its ticket.
    EnqueuedAfterShed(Queued),
    /// The queue is full and the policy chose not to admit.
    Rejected(Queued),
    /// The queue is closed (server shutting down).
    Closed(Queued),
}

/// The hand-rolled ring: a slot vector with a head index and length. FIFO
/// push/pop are O(1); the shed scan walks from the oldest entry and the
/// removal shift is O(len) — admissible because it only runs on the
/// full-queue edge of an already-overloaded server, on queues sized in the
/// hundreds.
struct Ring {
    slots: Vec<Option<Queued>>,
    head: usize,
    len: usize,
}

impl Ring {
    fn with_capacity(capacity: usize) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        Ring { slots, head: 0, len: 0 }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    fn push_back(&mut self, item: Queued) {
        debug_assert!(!self.is_full());
        let tail = (self.head + self.len) % self.capacity();
        debug_assert!(self.slots[tail].is_none());
        self.slots[tail] = Some(item);
        self.len += 1;
    }

    fn pop_front(&mut self) -> Option<Queued> {
        if self.len == 0 {
            return None;
        }
        let item = self.slots[self.head].take();
        debug_assert!(item.is_some());
        self.head = (self.head + 1) % self.capacity();
        self.len -= 1;
        item
    }

    /// Removes and returns the oldest entry whose deadline is at or before
    /// `now`, shifting the younger entries up to keep FIFO order intact.
    fn remove_oldest_expired(&mut self, now: Instant) -> Option<Queued> {
        let capacity = self.capacity();
        let offset = (0..self.len).find(|&o| {
            let slot = &self.slots[(self.head + o) % capacity];
            slot.as_ref()
                .expect("every slot within len is occupied")
                .request
                .deadline
                .is_some_and(|d| d <= now)
        })?;
        let victim = self.slots[(self.head + offset) % capacity].take();
        for o in offset..self.len - 1 {
            let from = (self.head + o + 1) % capacity;
            let to = (self.head + o) % capacity;
            self.slots[to] = self.slots[from].take();
        }
        self.len -= 1;
        victim
    }
}

struct QueueState {
    ring: Ring,
    closed: bool,
}

/// The bounded MPMC queue between submitters and workers.
pub(crate) struct RequestQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl RequestQueue {
    /// A queue holding at most `capacity` requests.
    ///
    /// # Panics
    /// Panics if `capacity == 0` — a server with nowhere to put a request
    /// is a configuration error, not a policy.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "the request queue needs capacity >= 1");
        RequestQueue {
            state: Mutex::new(QueueState { ring: Ring::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Admits `queued` under `policy` (see the module docs for the
    /// per-policy behavior at the full-queue edge).
    pub(crate) fn submit(&self, queued: Queued, policy: BackpressurePolicy) -> Admission {
        let mut state = lock(&self.state);
        loop {
            if state.closed {
                return Admission::Closed(queued);
            }
            if !state.ring.is_full() {
                state.ring.push_back(queued);
                self.not_empty.notify_one();
                return Admission::Enqueued;
            }
            match policy {
                BackpressurePolicy::Block => {
                    state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                BackpressurePolicy::Reject => return Admission::Rejected(queued),
                BackpressurePolicy::Shed => {
                    return match state.ring.remove_oldest_expired(Instant::now()) {
                        Some(victim) => {
                            state.ring.push_back(queued);
                            Admission::EnqueuedAfterShed(victim)
                        }
                        None => Admission::Rejected(queued),
                    };
                }
            }
        }
    }

    /// Pops up to `max` requests into `out`, blocking while the queue is
    /// empty and open. Returns with `out` untouched exactly when the queue
    /// is closed **and** drained — the worker's signal to exit. Never waits
    /// for a full batch: whatever is there at wakeup (up to `max`) is taken,
    /// so micro-batching amortizes wakeups without adding latency.
    pub(crate) fn pop_batch(&self, out: &mut Vec<Queued>, max: usize) {
        debug_assert!(max > 0);
        let mut state = lock(&self.state);
        while !state.closed && state.ring.len == 0 {
            state = self.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        let take = max.min(state.ring.len);
        for _ in 0..take {
            out.push(state.ring.pop_front().expect("len was checked"));
        }
        if take > 0 {
            // A batch frees several slots at once: wake every blocked
            // submitter (each rechecks fullness under the lock).
            self.not_full.notify_all();
        }
    }

    /// Closes the queue: subsequent submissions fail with `Closed`, blocked
    /// submitters wake and fail, and workers drain what remains before
    /// exiting. Idempotent.
    pub(crate) fn close(&self) {
        let mut state = lock(&self.state);
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of requests currently queued.
    pub(crate) fn len(&self) -> usize {
        lock(&self.state).ring.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Request, ServeError, Ticket};
    use rnn_core::Algorithm;
    use rnn_graph::NodeId;
    use std::time::Duration;

    fn queued(q: usize) -> (Queued, Ticket) {
        Queued::new(Request::new(Algorithm::Eager, NodeId::new(q), 1))
    }

    fn queued_expired(q: usize) -> (Queued, Ticket) {
        let request = Request::new(Algorithm::Eager, NodeId::new(q), 1)
            .with_deadline(Instant::now() - Duration::from_millis(1));
        Queued::new(request)
    }

    fn node_of(item: &Queued) -> usize {
        item.request.query.index()
    }

    #[test]
    fn fifo_order_through_wraparound() {
        let queue = RequestQueue::new(3);
        let mut out = Vec::new();
        let mut tickets = Vec::new();
        for round in 0..4 {
            for i in 0..3 {
                let (item, t) = queued(round * 3 + i);
                tickets.push(t);
                assert!(matches!(
                    queue.submit(item, BackpressurePolicy::Block),
                    Admission::Enqueued
                ));
            }
            assert_eq!(queue.len(), 3);
            queue.pop_batch(&mut out, 2);
            assert_eq!(out.len(), 2, "round {round}: batch takes at most max");
            queue.pop_batch(&mut out, 2);
            assert_eq!(out.len(), 3, "round {round}: second pop takes the remainder");
            let nodes: Vec<usize> = out.iter().map(node_of).collect();
            assert_eq!(nodes, vec![round * 3, round * 3 + 1, round * 3 + 2], "round {round}");
            out.clear();
        }
    }

    #[test]
    fn reject_policy_turns_away_at_the_full_edge() {
        let queue = RequestQueue::new(2);
        let (a, _ta) = queued(0);
        let (b, _tb) = queued(1);
        let (c, tc) = queued(2);
        assert!(matches!(queue.submit(a, BackpressurePolicy::Reject), Admission::Enqueued));
        assert!(matches!(queue.submit(b, BackpressurePolicy::Reject), Admission::Enqueued));
        match queue.submit(c, BackpressurePolicy::Reject) {
            Admission::Rejected(rejected) => assert_eq!(node_of(&rejected), 2),
            _ => panic!("a full queue must reject"),
        }
        // The rejected Queued was dropped by the match arm: its ticket
        // resolved (Lost) instead of hanging.
        assert_eq!(tc.wait(), Err(ServeError::Lost));
        assert_eq!(queue.len(), 2, "the resident requests were untouched");
    }

    #[test]
    fn shed_policy_drops_the_oldest_expired_and_keeps_fifo_for_the_rest() {
        let queue = RequestQueue::new(3);
        let (fresh, _t0) = queued(0);
        let (expired_old, t_old) = queued_expired(1);
        let (expired_young, t_young) = queued_expired(2);
        queue.submit(fresh, BackpressurePolicy::Shed);
        queue.submit(expired_old, BackpressurePolicy::Shed);
        queue.submit(expired_young, BackpressurePolicy::Shed);

        let (newcomer, _t3) = queued(3);
        match queue.submit(newcomer, BackpressurePolicy::Shed) {
            Admission::EnqueuedAfterShed(victim) => {
                assert_eq!(node_of(&victim), 1, "the *oldest* expired entry is the victim");
                victim.fail(ServeError::Shed);
            }
            _ => panic!("an expired entry was available to shed"),
        }
        assert_eq!(t_old.wait(), Err(ServeError::Shed));
        assert!(!t_young.is_done(), "the younger expired entry stays queued");

        // Queue: [0, 2, 3] — FIFO preserved around the removed slot.
        let mut out = Vec::new();
        queue.pop_batch(&mut out, 8);
        assert_eq!(out.iter().map(node_of).collect::<Vec<_>>(), vec![0, 2, 3]);

        // With nothing expired, shed degrades to reject.
        drop(out);
        let (a, _ta) = queued(10);
        let (b, _tb) = queued(11);
        let (c, _tc) = queued(12);
        let (d, _td) = queued(13);
        queue.submit(a, BackpressurePolicy::Shed);
        queue.submit(b, BackpressurePolicy::Shed);
        queue.submit(c, BackpressurePolicy::Shed);
        assert!(matches!(queue.submit(d, BackpressurePolicy::Shed), Admission::Rejected(_)));
    }

    #[test]
    fn block_policy_waits_for_space_and_wakes_on_pop() {
        let queue = std::sync::Arc::new(RequestQueue::new(1));
        let (first, _t1) = queued(0);
        queue.submit(first, BackpressurePolicy::Block);

        let q2 = std::sync::Arc::clone(&queue);
        let blocked = std::thread::spawn(move || {
            let (second, t2) = queued(1);
            let admission = q2.submit(second, BackpressurePolicy::Block);
            (matches!(admission, Admission::Enqueued), t2)
        });
        // Give the submitter time to block, then free a slot.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!blocked.is_finished(), "the submitter must be parked on not_full");
        let mut out = Vec::new();
        queue.pop_batch(&mut out, 1);
        assert_eq!(out.iter().map(node_of).collect::<Vec<_>>(), vec![0]);
        let (enqueued, _t2) = blocked.join().unwrap();
        assert!(enqueued, "the parked submitter was admitted after the pop");
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn close_wakes_blocked_submitters_and_lets_workers_drain() {
        let queue = std::sync::Arc::new(RequestQueue::new(1));
        let (resident, _tr) = queued(0);
        queue.submit(resident, BackpressurePolicy::Block);

        let q2 = std::sync::Arc::clone(&queue);
        let blocked = std::thread::spawn(move || {
            let (item, _t) = queued(1);
            matches!(q2.submit(item, BackpressurePolicy::Block), Admission::Closed(_))
        });
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert!(blocked.join().unwrap(), "close must fail the parked submitter");

        // The resident request is still drainable; afterwards pop returns
        // empty — the worker-exit signal.
        let mut out = Vec::new();
        queue.pop_batch(&mut out, 4);
        assert_eq!(out.len(), 1);
        out.clear();
        queue.pop_batch(&mut out, 4);
        assert!(out.is_empty(), "closed + drained returns an empty batch");

        // Submissions after close fail regardless of policy.
        let (late, _tl) = queued(2);
        assert!(matches!(queue.submit(late, BackpressurePolicy::Reject), Admission::Closed(_)));
        queue.close(); // idempotent
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let queue = std::sync::Arc::new(RequestQueue::new(8));
        let produced = 4 * 100;
        let consumed = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let queue = std::sync::Arc::clone(&queue);
                scope.spawn(move || {
                    for i in 0..100 {
                        let (item, _ticket) = queued(t * 100 + i);
                        assert!(matches!(
                            queue.submit(item, BackpressurePolicy::Block),
                            Admission::Enqueued
                        ));
                    }
                });
            }
            for _ in 0..3 {
                let queue = std::sync::Arc::clone(&queue);
                let consumed = std::sync::Arc::clone(&consumed);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        out.clear();
                        queue.pop_batch(&mut out, 5);
                        if out.is_empty() {
                            break;
                        }
                        consumed.fetch_add(out.len(), std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
            // Close once all producers are done; scope ordering: we can't
            // join selectively here, so spawn a closer that waits for the
            // produced count to drain through.
            let queue_for_close = std::sync::Arc::clone(&queue);
            let consumed_for_close = std::sync::Arc::clone(&consumed);
            scope.spawn(move || {
                while consumed_for_close.load(std::sync::atomic::Ordering::Relaxed) < produced {
                    std::thread::yield_now();
                }
                queue_for_close.close();
            });
        });
        assert_eq!(consumed.load(std::sync::atomic::Ordering::Relaxed), produced);
        assert_eq!(queue.len(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_queue_panics() {
        let _ = RequestQueue::new(0);
    }
}

//! The bounded MPMC request queue: admission policies, priority classes and
//! EDF shedding.
//!
//! This is the hand-rolled heart of the server: a fixed total capacity
//! guarded by one mutex and two condvars (`not_empty` for consumers,
//! `not_full` for blocked producers), holding **one sub-queue per
//! [`Priority`] class**. Many submitter threads push — singly or in batches
//! ([`RequestQueue::submit_batch`] pays one lock acquisition and one
//! `not_empty` notification for N requests) — and many worker threads pop in
//! *micro-batches* ([`RequestQueue::pop_batch`] hands out up to B requests
//! per wakeup).
//!
//! **Pop order.** Workers drain [`Priority::Interactive`] before
//! [`Priority::Batch`], except that after `starvation_ratio` consecutive
//! interactive pops while batch work waits, the next pop is forced from the
//! batch class — a saturating interactive stream delays batch work by a
//! bounded factor instead of forever. Within a class the order depends on
//! the policy: under [`Shed`](BackpressurePolicy::Shed), deadline-bearing
//! requests live in a binary heap and pop **earliest-deadline-first** (ties
//! broken by submission order, so equal deadlines stay FIFO and results stay
//! deterministic), ahead of the FIFO ring holding deadline-free requests;
//! under `Block` / `Reject` — which never act on deadlines — everything
//! rides the ring in pure FIFO order, exactly the pre-QoS behavior.
//!
//! Admission control happens at the full-queue edge and is the
//! [`BackpressurePolicy`]'s choice:
//!
//! * [`Block`](BackpressurePolicy::Block) — the submitter waits for space.
//!   Nothing is ever dropped; overload turns into submitter back-pressure
//!   (closed-loop clients slow down).
//! * [`Reject`](BackpressurePolicy::Reject) — the submitter gets
//!   `QueueFull` immediately. Overload turns into fast failures the client
//!   can retry elsewhere; queue wait stays bounded.
//! * [`Shed`](BackpressurePolicy::Shed) — an already-expired *newcomer* is
//!   resolved as shed on the spot (it could never be served in time;
//!   evicting a resident for it would spend a slot on dead work); otherwise
//!   the **earliest-deadline expired resident** is dropped to make room
//!   (batch class searched before interactive, heap peek + pop: O(log n)
//!   per shed), and with nothing expired the newcomer is rejected. Overload
//!   spends the queue's capacity on requests that can still make their
//!   deadlines, which maximizes useful goodput for deadline-bearing
//!   traffic.
//!
//! The queue never drops silently: every admission decision either hands the
//! request to a worker, hands it back to the caller, or names a victim whose
//! ticket the caller must resolve.
//!
//! [`Priority`]: crate::Priority

use crate::request::{lock, Priority, Queued};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// What to do with a new request when the queue is full.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the submitter until a worker frees space (the default; never
    /// drops work).
    #[default]
    Block,
    /// Turn the request away immediately with `QueueFull`.
    Reject,
    /// Shed an expired newcomer directly; otherwise drop the earliest-
    /// deadline already-expired resident to make room, and reject the
    /// newcomer if nothing queued is past its deadline. Workers also drop
    /// expired requests at dequeue under this policy, and deadline-bearing
    /// requests are served earliest-deadline-first.
    Shed,
}

/// The outcome of one admission decision.
pub(crate) enum Admission {
    /// The request is in the queue.
    Enqueued,
    /// The request is in the queue; the named victim was shed to make room
    /// and the caller must resolve its ticket.
    EnqueuedAfterShed(Queued),
    /// The request itself arrived already past its deadline at the
    /// full-queue edge: it was not admitted and the caller must resolve its
    /// ticket as shed. Residents are untouched.
    ShedNewcomer(Queued),
    /// The queue is full and the policy chose not to admit.
    Rejected(Queued),
    /// The queue is closed (server shutting down).
    Closed(Queued),
}

/// The hand-rolled FIFO ring: a slot vector with a head index and length.
/// Push/pop are O(1); nothing is ever removed from the middle (expired-
/// victim removal lives in the EDF heap, where it is O(log n) instead of
/// the O(len) shift a ring would need).
struct Ring {
    slots: Vec<Option<Queued>>,
    head: usize,
    len: usize,
}

impl Ring {
    fn with_capacity(capacity: usize) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        Ring { slots, head: 0, len: 0 }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn push_back(&mut self, item: Queued) {
        debug_assert!(self.len < self.capacity());
        let tail = (self.head + self.len) % self.capacity();
        debug_assert!(self.slots[tail].is_none());
        self.slots[tail] = Some(item);
        self.len += 1;
    }

    fn pop_front(&mut self) -> Option<Queued> {
        if self.len == 0 {
            return None;
        }
        let item = self.slots[self.head].take();
        debug_assert!(item.is_some());
        self.head = (self.head + 1) % self.capacity();
        self.len -= 1;
        item
    }
}

/// One deadline-bearing entry in a class's EDF heap, ordered by
/// `(deadline, seq)` — the `seq` tie-break makes equal deadlines pop in
/// submission order, so EDF stays deterministic.
struct EdfEntry {
    deadline: Instant,
    seq: u64,
    queued: Queued,
}

impl PartialEq for EdfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}

impl Eq for EdfEntry {}

impl PartialOrd for EdfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EdfEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

/// One priority class's storage: the EDF heap for deadline-bearing requests
/// (only populated under `Shed`) and the FIFO ring for the rest.
struct ClassQueue {
    edf: BinaryHeap<Reverse<EdfEntry>>,
    ring: Ring,
}

impl ClassQueue {
    fn with_capacity(capacity: usize) -> Self {
        ClassQueue { edf: BinaryHeap::new(), ring: Ring::with_capacity(capacity) }
    }

    fn len(&self) -> usize {
        self.edf.len() + self.ring.len
    }

    /// The next request of this class: earliest deadline first, then the
    /// deadline-free FIFO ring. (Under `Block`/`Reject` the heap is always
    /// empty, so this is plain FIFO.)
    fn pop_next(&mut self) -> Option<Queued> {
        if let Some(Reverse(entry)) = self.edf.pop() {
            return Some(entry.queued);
        }
        self.ring.pop_front()
    }

    /// Removes the earliest-deadline entry if it is expired. The heap
    /// minimum is the earliest deadline in the class, so a single peek
    /// decides whether *anything* here is expired — O(1) to check,
    /// O(log n) to remove.
    fn pop_expired(&mut self, now: Instant) -> Option<Queued> {
        if self.edf.peek().is_some_and(|Reverse(entry)| entry.deadline <= now) {
            return self.edf.pop().map(|Reverse(entry)| entry.queued);
        }
        None
    }
}

struct QueueState {
    classes: [ClassQueue; Priority::ALL.len()],
    /// Total queued across classes — bounded by the queue capacity.
    len: usize,
    /// Monotone enqueue counter, the EDF tie-break.
    next_seq: u64,
    /// Consecutive interactive pops while batch work waited.
    interactive_streak: u64,
    closed: bool,
}

/// The bounded MPMC queue between submitters and workers. Policy and
/// starvation ratio are fixed at construction — they shape the queue's
/// internal routing (which requests ride the EDF heap) and must not change
/// per submission.
pub(crate) struct RequestQueue {
    state: Mutex<QueueState>,
    capacity: usize,
    policy: BackpressurePolicy,
    starvation_ratio: u64,
    not_empty: Condvar,
    not_full: Condvar,
}

/// What one locked admission attempt decided; `Wait` is the `Block` policy
/// asking the caller to park on `not_full` and retry.
enum AdmitStep {
    Done(Admission),
    Wait(Queued),
}

impl RequestQueue {
    /// A queue holding at most `capacity` requests across both classes,
    /// applying `policy` at the full edge; after `starvation_ratio`
    /// consecutive interactive pops with batch work waiting, one batch pop
    /// is forced (`0` disables the bound: strict priority).
    ///
    /// # Panics
    /// Panics if `capacity == 0` — a server with nowhere to put a request
    /// is a configuration error, not a policy.
    pub(crate) fn new(capacity: usize, policy: BackpressurePolicy, starvation_ratio: u64) -> Self {
        assert!(capacity > 0, "the request queue needs capacity >= 1");
        RequestQueue {
            state: Mutex::new(QueueState {
                classes: std::array::from_fn(|_| ClassQueue::with_capacity(capacity)),
                len: 0,
                next_seq: 0,
                interactive_streak: 0,
                closed: false,
            }),
            capacity,
            policy,
            starvation_ratio,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The policy fixed at construction.
    pub(crate) fn policy(&self) -> BackpressurePolicy {
        self.policy
    }

    /// Routes an admitted request into its class's heap or ring.
    fn enqueue(&self, state: &mut QueueState, queued: Queued) {
        let class = queued.request.priority.index();
        match queued.request.deadline {
            // Only Shed acts on deadlines; under Block/Reject a deadline is
            // inert metadata and the request keeps pure FIFO order.
            Some(deadline) if self.policy == BackpressurePolicy::Shed => {
                let seq = state.next_seq;
                state.next_seq += 1;
                state.classes[class].edf.push(Reverse(EdfEntry { deadline, seq, queued }));
            }
            _ => state.classes[class].ring.push_back(queued),
        }
        state.len += 1;
    }

    /// One admission attempt under the lock. Never waits — `Block` at the
    /// full edge comes back as [`AdmitStep::Wait`] for the caller's loop.
    fn try_admit(&self, state: &mut QueueState, queued: Queued) -> AdmitStep {
        if state.closed {
            return AdmitStep::Done(Admission::Closed(queued));
        }
        if state.len < self.capacity {
            self.enqueue(state, queued);
            return AdmitStep::Done(Admission::Enqueued);
        }
        match self.policy {
            BackpressurePolicy::Block => AdmitStep::Wait(queued),
            BackpressurePolicy::Reject => AdmitStep::Done(Admission::Rejected(queued)),
            BackpressurePolicy::Shed => {
                let now = Instant::now();
                // An expired newcomer is dead on arrival: admitting it would
                // evict a resident only for the dequeue check to drop the
                // newcomer anyway — a wasted slot and a wasted shed.
                if queued.request.deadline.is_some_and(|d| d <= now) {
                    return AdmitStep::Done(Admission::ShedNewcomer(queued));
                }
                // Shed the lowest class first: an expired batch request dies
                // before an expired interactive one.
                for class in Priority::ALL.iter().rev() {
                    if let Some(victim) = state.classes[class.index()].pop_expired(now) {
                        state.len -= 1;
                        self.enqueue(state, queued);
                        return AdmitStep::Done(Admission::EnqueuedAfterShed(victim));
                    }
                }
                AdmitStep::Done(Admission::Rejected(queued))
            }
        }
    }

    /// Admits `queued` under the queue's policy (see the module docs for
    /// the per-policy behavior at the full-queue edge).
    pub(crate) fn submit(&self, mut queued: Queued) -> Admission {
        let mut state = lock(&self.state);
        loop {
            match self.try_admit(&mut state, queued) {
                AdmitStep::Done(admission) => {
                    if matches!(admission, Admission::Enqueued | Admission::EnqueuedAfterShed(_)) {
                        self.not_empty.notify_one();
                    }
                    return admission;
                }
                AdmitStep::Wait(q) => {
                    queued = q;
                    state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Admits a batch under one lock acquisition, with one `not_empty`
    /// notification for the whole batch. Each item gets exactly the
    /// admission decision N single [`RequestQueue::submit`] calls would
    /// have produced, in order; under `Block`, a full queue parks the
    /// submitter mid-batch (after waking workers for what is already in —
    /// otherwise a batch larger than the capacity would deadlock against
    /// sleeping workers).
    pub(crate) fn submit_batch(&self, items: Vec<Queued>) -> Vec<Admission> {
        let mut admissions = Vec::with_capacity(items.len());
        let mut pending_notify = false;
        let mut state = lock(&self.state);
        for mut queued in items {
            let admission = loop {
                match self.try_admit(&mut state, queued) {
                    AdmitStep::Done(admission) => break admission,
                    AdmitStep::Wait(q) => {
                        queued = q;
                        if pending_notify {
                            self.not_empty.notify_all();
                            pending_notify = false;
                        }
                        state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
                    }
                }
            };
            if matches!(admission, Admission::Enqueued | Admission::EnqueuedAfterShed(_)) {
                pending_notify = true;
            }
            admissions.push(admission);
        }
        if pending_notify {
            self.not_empty.notify_all();
        }
        admissions
    }

    /// The next request in service order: interactive before batch, bounded
    /// by the starvation ratio; EDF before FIFO within a class.
    fn pop_one(&self, state: &mut QueueState) -> Option<Queued> {
        let interactive = state.classes[Priority::Interactive.index()].len();
        let batch = state.classes[Priority::Batch.index()].len();
        let force_batch = batch > 0
            && (interactive == 0
                || (self.starvation_ratio > 0
                    && state.interactive_streak >= self.starvation_ratio));
        let item = if force_batch {
            state.interactive_streak = 0;
            state.classes[Priority::Batch.index()].pop_next()
        } else if interactive > 0 {
            // The streak only counts pops that made batch work wait; once
            // the batch class drains, interactive starves nobody.
            state.interactive_streak = if batch > 0 { state.interactive_streak + 1 } else { 0 };
            state.classes[Priority::Interactive.index()].pop_next()
        } else {
            None
        };
        if item.is_some() {
            state.len -= 1;
        }
        item
    }

    /// Pops up to `max` requests into `out`, blocking while the queue is
    /// empty and open. Returns with `out` untouched exactly when the queue
    /// is closed **and** drained — the worker's signal to exit. Never waits
    /// for a full batch: whatever is there at wakeup (up to `max`) is taken,
    /// so micro-batching amortizes wakeups without adding latency.
    pub(crate) fn pop_batch(&self, out: &mut Vec<Queued>, max: usize) {
        debug_assert!(max > 0);
        let mut state = lock(&self.state);
        while !state.closed && state.len == 0 {
            state = self.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        let take = max.min(state.len);
        for _ in 0..take {
            out.push(self.pop_one(&mut state).expect("len was checked"));
        }
        if take > 0 {
            // A batch frees several slots at once: wake every blocked
            // submitter (each rechecks fullness under the lock).
            self.not_full.notify_all();
        }
    }

    /// Closes the queue: subsequent submissions fail with `Closed`, blocked
    /// submitters wake and fail, and workers drain what remains before
    /// exiting. Idempotent.
    pub(crate) fn close(&self) {
        let mut state = lock(&self.state);
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of requests currently queued (all classes).
    pub(crate) fn len(&self) -> usize {
        lock(&self.state).len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Request, ServeError, Ticket};
    use rnn_core::Algorithm;
    use rnn_graph::NodeId;
    use std::time::Duration;

    fn queue(capacity: usize, policy: BackpressurePolicy) -> RequestQueue {
        RequestQueue::new(capacity, policy, 0)
    }

    fn queued(q: usize) -> (Queued, Ticket) {
        Queued::new(Request::new(Algorithm::Eager, NodeId::new(q), 1))
    }

    fn queued_batch(q: usize) -> (Queued, Ticket) {
        let request =
            Request::new(Algorithm::Eager, NodeId::new(q), 1).with_priority(Priority::Batch);
        Queued::new(request)
    }

    fn queued_deadline(q: usize, deadline: Instant) -> (Queued, Ticket) {
        let request = Request::new(Algorithm::Eager, NodeId::new(q), 1).with_deadline(deadline);
        Queued::new(request)
    }

    fn queued_expired(q: usize) -> (Queued, Ticket) {
        queued_deadline(q, Instant::now() - Duration::from_millis(1))
    }

    fn node_of(item: &Queued) -> usize {
        item.request.query.index()
    }

    fn pop_all(queue: &RequestQueue) -> Vec<usize> {
        let mut out = Vec::new();
        while queue.len() > 0 {
            queue.pop_batch(&mut out, 64);
        }
        out.iter().map(node_of).collect()
    }

    #[test]
    fn fifo_order_through_wraparound() {
        let queue = queue(3, BackpressurePolicy::Block);
        let mut out = Vec::new();
        let mut tickets = Vec::new();
        for round in 0..4 {
            for i in 0..3 {
                let (item, t) = queued(round * 3 + i);
                tickets.push(t);
                assert!(matches!(queue.submit(item), Admission::Enqueued));
            }
            assert_eq!(queue.len(), 3);
            queue.pop_batch(&mut out, 2);
            assert_eq!(out.len(), 2, "round {round}: batch takes at most max");
            queue.pop_batch(&mut out, 2);
            assert_eq!(out.len(), 3, "round {round}: second pop takes the remainder");
            let nodes: Vec<usize> = out.iter().map(node_of).collect();
            assert_eq!(nodes, vec![round * 3, round * 3 + 1, round * 3 + 2], "round {round}");
            out.clear();
        }
    }

    #[test]
    fn deadlines_are_inert_under_block_and_reject() {
        // Only Shed reorders by deadline: under Reject, deadline-bearing
        // requests keep FIFO order and are never dropped.
        let queue = queue(4, BackpressurePolicy::Reject);
        let now = Instant::now();
        let past = now.checked_sub(Duration::from_secs(40)).unwrap_or(now);
        for (i, deadline) in [now + Duration::from_secs(40), past].into_iter().enumerate() {
            let (item, _t) = queued_deadline(i, deadline);
            assert!(matches!(queue.submit(item), Admission::Enqueued));
        }
        let (plain, _t) = queued(2);
        queue.submit(plain);
        assert_eq!(pop_all(&queue), vec![0, 1, 2], "pure FIFO, expired entry included");
    }

    #[test]
    fn reject_policy_turns_away_at_the_full_edge() {
        let queue = queue(2, BackpressurePolicy::Reject);
        let (a, _ta) = queued(0);
        let (b, _tb) = queued(1);
        let (c, tc) = queued(2);
        assert!(matches!(queue.submit(a), Admission::Enqueued));
        assert!(matches!(queue.submit(b), Admission::Enqueued));
        match queue.submit(c) {
            Admission::Rejected(rejected) => assert_eq!(node_of(&rejected), 2),
            _ => panic!("a full queue must reject"),
        }
        // The rejected Queued was dropped by the match arm: its ticket
        // resolved (Lost) instead of hanging.
        assert_eq!(tc.wait(), Err(ServeError::Lost));
        assert_eq!(queue.len(), 2, "the resident requests were untouched");
    }

    #[test]
    fn shed_policy_evicts_the_earliest_deadline_expired_resident() {
        let queue = queue(3, BackpressurePolicy::Shed);
        let (fresh, _t0) = queued(0);
        let (expired_old, t_old) = queued_expired(1);
        let (expired_young, t_young) = queued_expired(2);
        queue.submit(fresh);
        queue.submit(expired_old);
        queue.submit(expired_young);

        let (newcomer, _t3) = queued(3);
        match queue.submit(newcomer) {
            Admission::EnqueuedAfterShed(victim) => {
                assert_eq!(node_of(&victim), 1, "the *earliest-deadline* expired entry dies");
                victim.fail(ServeError::Shed);
            }
            _ => panic!("an expired entry was available to shed"),
        }
        assert_eq!(t_old.wait(), Err(ServeError::Shed));
        assert!(!t_young.is_done(), "the younger expired entry stays queued");

        // EDF first (the surviving deadline-bearing entry), then the
        // deadline-free ring in FIFO order.
        assert_eq!(pop_all(&queue), vec![2, 0, 3]);

        // With nothing expired, shed degrades to reject for a fresh
        // newcomer.
        let (a, _ta) = queued(10);
        let (b, _tb) = queued(11);
        let (c, _tc) = queued(12);
        let (d, _td) = queued(13);
        queue.submit(a);
        queue.submit(b);
        queue.submit(c);
        assert!(matches!(queue.submit(d), Admission::Rejected(_)));
    }

    #[test]
    fn expired_newcomer_is_shed_directly_at_the_full_edge() {
        // Regression (pre-QoS bug): a full queue + an expired newcomer used
        // to evict an expired *resident* and admit the newcomer — which the
        // dequeue check would then drop anyway, wasting a slot and shedding
        // the wrong request. The newcomer must die; residents stay.
        let queue = queue(2, BackpressurePolicy::Shed);
        let fresh_deadline = Instant::now() + Duration::from_secs(60);
        let (a, ta) = queued_deadline(0, fresh_deadline);
        let (b, tb) = queued_deadline(1, fresh_deadline);
        queue.submit(a);
        queue.submit(b);

        let (dead, t_dead) = queued_expired(2);
        match queue.submit(dead) {
            Admission::ShedNewcomer(newcomer) => {
                assert_eq!(node_of(&newcomer), 2, "the newcomer itself is the shed request");
                newcomer.fail(ServeError::Shed);
            }
            Admission::EnqueuedAfterShed(_) => panic!("a resident was evicted for dead work"),
            _ => panic!("an expired newcomer at the full edge must resolve as shed"),
        }
        assert_eq!(t_dead.wait(), Err(ServeError::Shed));
        assert_eq!(queue.len(), 2, "residents untouched");
        assert!(!ta.is_done() && !tb.is_done(), "no resident ticket was resolved");
        assert_eq!(pop_all(&queue), vec![0, 1]);
    }

    #[test]
    fn edf_orders_pops_by_deadline_with_fifo_tie_break() {
        let queue = queue(8, BackpressurePolicy::Shed);
        let base = Instant::now() + Duration::from_secs(100);
        let step = Duration::from_secs(1);
        // Submission order 0..5; deadlines deliberately out of order, with
        // 3 and 4 sharing one deadline (the tie).
        let deadlines =
            [base + 3 * step, base + step, base + 4 * step, base, base, base + 2 * step];
        let mut tickets = Vec::new();
        for (i, &d) in deadlines.iter().enumerate() {
            let (item, t) = queued_deadline(i, d);
            tickets.push(t);
            assert!(matches!(queue.submit(item), Admission::Enqueued));
        }
        // EDF: ascending deadline; the tied pair (3, 4) pops in submission
        // order, so the full order is deterministic.
        assert_eq!(pop_all(&queue), vec![3, 4, 1, 5, 0, 2]);
    }

    #[test]
    fn deadline_exactly_now_and_zero_budget_count_as_expired() {
        let queue = queue(2, BackpressurePolicy::Shed);
        // `deadline <= now` is the expiry test, so a deadline stamped "now"
        // and a zero-duration budget are both already dead at the edge.
        let at_now =
            Request::new(Algorithm::Eager, NodeId::new(0), 1).with_deadline(Instant::now());
        let zero_budget =
            Request::new(Algorithm::Eager, NodeId::new(1), 1).with_deadline_in(Duration::ZERO);
        assert_eq!(zero_budget.deadline, Some(zero_budget.submit_instant));
        let (a, ta) = Queued::new(at_now);
        let (b, tb) = Queued::new(zero_budget);
        queue.submit(a);
        queue.submit(b);
        assert_eq!(queue.len(), 2, "below capacity, even expired requests are admitted");

        // At the full edge both residents are expired; the earlier deadline
        // (node 0) is the victim for a fresh newcomer.
        let (fresh, _tf) = queued_deadline(2, Instant::now() + Duration::from_secs(60));
        match queue.submit(fresh) {
            Admission::EnqueuedAfterShed(victim) => {
                assert_eq!(node_of(&victim), 0);
                victim.fail(ServeError::Shed);
            }
            _ => panic!("an expired resident was available"),
        }
        assert_eq!(ta.wait(), Err(ServeError::Shed));
        assert!(!tb.is_done());
    }

    #[test]
    fn interactive_pops_first_with_a_bounded_starvation_streak() {
        // Ratio 2: after two consecutive interactive pops with batch work
        // waiting, the third pop is forced from the batch class.
        let queue = RequestQueue::new(8, BackpressurePolicy::Block, 2);
        let mut tickets = Vec::new();
        for i in 0..5 {
            let (item, t) = queued(i);
            tickets.push(t);
            queue.submit(item);
        }
        for i in 0..3 {
            let (item, t) = queued_batch(100 + i);
            tickets.push(t);
            queue.submit(item);
        }
        let mut order = Vec::new();
        let mut out = Vec::new();
        while queue.len() > 0 {
            out.clear();
            queue.pop_batch(&mut out, 1);
            order.push(node_of(&out[0]));
        }
        assert_eq!(
            order,
            vec![0, 1, 100, 2, 3, 101, 4, 102],
            "two interactive, one forced batch, repeat; tail drains batch"
        );

        // Ratio 0 disables the bound: strict priority.
        let strict = RequestQueue::new(8, BackpressurePolicy::Block, 0);
        let mut tickets = Vec::new();
        for i in 0..3 {
            let (b, t) = queued_batch(200 + i);
            tickets.push(t);
            strict.submit(b);
            let (a, t) = queued(i);
            tickets.push(t);
            strict.submit(a);
        }
        assert_eq!(pop_all(&strict), vec![0, 1, 2, 200, 201, 202]);
    }

    #[test]
    fn submit_batch_matches_single_submits_and_wakes_consumers_once() {
        let queue = queue(4, BackpressurePolicy::Reject);
        let mut items = Vec::new();
        let mut tickets = Vec::new();
        for i in 0..6 {
            let (item, t) = queued(i);
            items.push(item);
            tickets.push(t);
        }
        let admissions = queue.submit_batch(items);
        assert_eq!(admissions.len(), 6);
        for (i, admission) in admissions.iter().enumerate() {
            if i < 4 {
                assert!(matches!(admission, Admission::Enqueued), "item {i} fits");
            } else {
                assert!(matches!(admission, Admission::Rejected(_)), "item {i} overflows");
            }
        }
        assert_eq!(queue.len(), 4);
        assert_eq!(pop_all(&queue), vec![0, 1, 2, 3], "batch order is submission order");

        // An empty batch is a no-op.
        assert!(queue.submit_batch(Vec::new()).is_empty());
    }

    #[test]
    fn submit_batch_larger_than_capacity_blocks_and_completes() {
        // Under Block, a batch bigger than the whole queue must wake the
        // consumer for its enqueued prefix before parking — otherwise both
        // sides sleep forever.
        let queue = std::sync::Arc::new(RequestQueue::new(2, BackpressurePolicy::Block, 0));
        let consumer = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                let mut out = Vec::new();
                while seen.len() < 7 {
                    out.clear();
                    queue.pop_batch(&mut out, 3);
                    seen.extend(out.iter().map(node_of));
                }
                seen
            })
        };
        let mut items = Vec::new();
        let mut tickets = Vec::new();
        for i in 0..7 {
            let (item, t) = queued(i);
            items.push(item);
            tickets.push(t);
        }
        let admissions = queue.submit_batch(items);
        assert!(admissions.iter().all(|a| matches!(a, Admission::Enqueued)));
        assert_eq!(consumer.join().unwrap(), vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn block_policy_waits_for_space_and_wakes_on_pop() {
        let queue = std::sync::Arc::new(queue(1, BackpressurePolicy::Block));
        let (first, _t1) = queued(0);
        queue.submit(first);

        let q2 = std::sync::Arc::clone(&queue);
        let blocked = std::thread::spawn(move || {
            let (second, t2) = queued(1);
            let admission = q2.submit(second);
            (matches!(admission, Admission::Enqueued), t2)
        });
        // Give the submitter time to block, then free a slot.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!blocked.is_finished(), "the submitter must be parked on not_full");
        let mut out = Vec::new();
        queue.pop_batch(&mut out, 1);
        assert_eq!(out.iter().map(node_of).collect::<Vec<_>>(), vec![0]);
        let (enqueued, _t2) = blocked.join().unwrap();
        assert!(enqueued, "the parked submitter was admitted after the pop");
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn close_wakes_blocked_submitters_and_lets_workers_drain() {
        let queue = std::sync::Arc::new(queue(1, BackpressurePolicy::Block));
        let (resident, _tr) = queued(0);
        queue.submit(resident);

        let q2 = std::sync::Arc::clone(&queue);
        let blocked = std::thread::spawn(move || {
            let (item, _t) = queued(1);
            matches!(q2.submit(item), Admission::Closed(_))
        });
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert!(blocked.join().unwrap(), "close must fail the parked submitter");

        // The resident request is still drainable; afterwards pop returns
        // empty — the worker-exit signal.
        let mut out = Vec::new();
        queue.pop_batch(&mut out, 4);
        assert_eq!(out.len(), 1);
        out.clear();
        queue.pop_batch(&mut out, 4);
        assert!(out.is_empty(), "closed + drained returns an empty batch");

        // Submissions after close fail regardless of policy, singly or in a
        // batch.
        let (late, _tl) = queued(2);
        assert!(matches!(queue.submit(late), Admission::Closed(_)));
        let (late2, _tl2) = queued(3);
        let batch_admissions = queue.submit_batch(vec![late2]);
        assert!(matches!(batch_admissions[0], Admission::Closed(_)));
        queue.close(); // idempotent
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let queue = std::sync::Arc::new(queue(8, BackpressurePolicy::Block));
        let produced = 4 * 100;
        let consumed = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let queue = std::sync::Arc::clone(&queue);
                scope.spawn(move || {
                    // Odd producers batch their submissions, even producers
                    // submit singly — the accounting must not care.
                    if t % 2 == 1 {
                        for chunk in 0..20 {
                            let items = (0..5)
                                .map(|i| queued(t * 100 + chunk * 5 + i).0)
                                .collect::<Vec<_>>();
                            let admissions = queue.submit_batch(items);
                            assert!(admissions.iter().all(|a| matches!(a, Admission::Enqueued)));
                        }
                    } else {
                        for i in 0..100 {
                            let (item, _ticket) = queued(t * 100 + i);
                            assert!(matches!(queue.submit(item), Admission::Enqueued));
                        }
                    }
                });
            }
            for _ in 0..3 {
                let queue = std::sync::Arc::clone(&queue);
                let consumed = std::sync::Arc::clone(&consumed);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        out.clear();
                        queue.pop_batch(&mut out, 5);
                        if out.is_empty() {
                            break;
                        }
                        consumed.fetch_add(out.len(), std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
            // Close once all producers are done; scope ordering: we can't
            // join selectively here, so spawn a closer that waits for the
            // produced count to drain through.
            let queue_for_close = std::sync::Arc::clone(&queue);
            let consumed_for_close = std::sync::Arc::clone(&consumed);
            scope.spawn(move || {
                while consumed_for_close.load(std::sync::atomic::Ordering::Relaxed) < produced {
                    std::thread::yield_now();
                }
                queue_for_close.close();
            });
        });
        assert_eq!(consumed.load(std::sync::atomic::Ordering::Relaxed), produced);
        assert_eq!(queue.len(), 0);
    }

    /// The seed's Shed semantics as an executable reference: a FIFO list
    /// scanned from the oldest entry, evicting the first expired one —
    /// plus the expired-newcomer fix. Deadlines in the trace are arranged
    /// so the seed's oldest-expired victim is always the EDF heap's
    /// earliest-deadline victim (at every full edge exactly one resident is
    /// expired) and fresh deadlines increase with submission order (so
    /// seed FIFO pop == EDF pop): any divergence is a queue bug, not a
    /// modelling artifact.
    struct SeedModel {
        fifo: std::collections::VecDeque<(usize, Option<u64>)>,
        capacity: usize,
    }

    enum ModelOutcome {
        Enqueued,
        EnqueuedAfterShed(usize),
        ShedNewcomer,
    }

    impl SeedModel {
        fn submit(&mut self, id: usize, deadline_key: Option<u64>, expired: bool) -> ModelOutcome {
            if self.fifo.len() < self.capacity {
                self.fifo.push_back((id, deadline_key));
                return ModelOutcome::Enqueued;
            }
            if expired {
                return ModelOutcome::ShedNewcomer;
            }
            let victim_pos = self
                .fifo
                .iter()
                .position(|&(_, key)| key.is_some_and(|k| k < FRESH_BASE))
                .expect("the trace keeps one expired resident at every full edge");
            let (victim, _) = self.fifo.remove(victim_pos).unwrap();
            self.fifo.push_back((id, deadline_key));
            ModelOutcome::EnqueuedAfterShed(victim)
        }

        fn pop(&mut self) -> Option<usize> {
            self.fifo.pop_front().map(|(id, _)| id)
        }
    }

    /// Deadline keys at or above this encode "fresh" (far future);
    /// below it, "expired" (already past).
    const FRESH_BASE: u64 = 1 << 32;

    #[test]
    fn overload_trace_with_10k_sheds_replays_identically_to_the_seed_model() {
        // 10 000 full-edge evictions: each round tops the queue up with one
        // expired resident, forces an eviction with a fresh newcomer, and
        // drains one slot. The real queue must name the same victim and pop
        // the same request as the seed reference model every single time —
        // and spend O(log n), not O(n), per eviction doing it.
        const CAPACITY: usize = 8;
        const ROUNDS: usize = 10_000;
        let queue = queue(CAPACITY, BackpressurePolicy::Shed);
        let mut model = SeedModel { fifo: std::collections::VecDeque::new(), capacity: CAPACITY };

        let now = Instant::now();
        let past = now.checked_sub(Duration::from_secs(3600)).unwrap_or(now);
        let future = now + Duration::from_secs(3600);
        // Key -> Instant: expired keys step by 10ns from one hour ago,
        // fresh keys step by 1us from one hour ahead — both monotone in
        // submission order, which is what aligns FIFO with EDF.
        let expired_at = |r: usize| past + Duration::from_nanos(10 * r as u64);
        let fresh_at = |r: usize| future + Duration::from_micros(r as u64);

        let mut tickets: Vec<Ticket> = Vec::new();

        // Prefill to capacity - 1 with fresh residents (ids disjoint from
        // the per-round ids 0..2*ROUNDS).
        for r in 0..CAPACITY - 1 {
            let id = 2 * ROUNDS + 1 + r;
            let (item, t) = queued_deadline(id, fresh_at(0));
            tickets.push(t);
            assert!(matches!(queue.submit(item), Admission::Enqueued));
            assert!(matches!(model.submit(id, Some(FRESH_BASE), false), ModelOutcome::Enqueued));
        }

        let mut sheds = 0usize;
        let mut out = Vec::new();
        for r in 0..ROUNDS {
            // One expired resident in (queue has a free slot).
            let expired_id = 2 * r;
            let (item, t) = queued_deadline(expired_id, expired_at(r));
            tickets.push(t);
            assert!(matches!(queue.submit(item), Admission::Enqueued));
            assert!(matches!(
                model.submit(expired_id, Some(r as u64), true),
                ModelOutcome::Enqueued
            ));

            // One fresh newcomer at the full edge: eviction.
            let fresh_id = 2 * r + 1;
            let (item, t) = queued_deadline(fresh_id, fresh_at(r + 1));
            tickets.push(t);
            let expected = match model.submit(fresh_id, Some(FRESH_BASE + r as u64), false) {
                ModelOutcome::EnqueuedAfterShed(victim) => victim,
                _ => panic!("round {r}: the model must evict"),
            };
            match queue.submit(item) {
                Admission::EnqueuedAfterShed(victim) => {
                    assert_eq!(node_of(&victim), expected, "round {r}: victim diverged");
                    sheds += 1;
                    victim.fail(ServeError::Shed);
                }
                _ => panic!("round {r}: the queue must evict"),
            }

            // Drain one slot; pop order must match the seed model too.
            out.clear();
            queue.pop_batch(&mut out, 1);
            assert_eq!(node_of(&out[0]), model.pop().unwrap(), "round {r}: pop diverged");
            out.clear();
        }
        assert_eq!(sheds, ROUNDS);

        // Drain the tail: still in lockstep.
        let mut real_tail = pop_all(&queue);
        let mut model_tail = Vec::new();
        while let Some(id) = model.pop() {
            model_tail.push(id);
        }
        real_tail.sort_unstable();
        model_tail.sort_unstable();
        assert_eq!(real_tail, model_tail);
        assert_eq!(queue.len(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_queue_panics() {
        let _ = queue(0, BackpressurePolicy::Block);
    }
}

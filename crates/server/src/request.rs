//! Requests, completion handles and serve errors.
//!
//! The batch engine's callers hand over a whole [`Workload`] and block until
//! every query finishes; an online server inverts that: each caller submits
//! **one** request and gets back a [`Ticket`] — a oneshot completion handle —
//! to await its own result while other callers' requests interleave freely.
//! The ticket is a `Mutex<Option<_>>` slot plus a `Condvar`: the worker that
//! serves the request fills the slot exactly once and wakes the waiter.
//!
//! Every accepted request resolves its ticket exactly once, no matter what:
//! served requests resolve to a [`ServedQuery`], load-shed requests to
//! [`ServeError::Shed`], and if a request is ever dropped unserved (only
//! possible if a worker thread dies mid-batch) the drop itself resolves the
//! ticket to [`ServeError::Lost`] — a waiter can never hang on a request the
//! server no longer knows about.
//!
//! [`Workload`]: rnn_core::engine::Workload

use rnn_core::engine::QuerySpec;
use rnn_core::{Algorithm, RknnOutcome};
use rnn_graph::NodeId;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The admission class of a request: which per-class queue it rides and how
/// workers order it against other traffic.
///
/// Workers drain [`Interactive`](Priority::Interactive) requests first;
/// [`Batch`](Priority::Batch) requests are served from a separate queue
/// whenever no interactive work waits, plus a guaranteed slot every
/// `starvation_ratio` interactive pops (see
/// [`crate::ServerConfig::with_starvation_ratio`]) so a saturating
/// interactive stream can never starve batch work forever. Priority affects
/// *ordering and admission accounting only* — never answers: a request
/// returns byte-identical results in either class.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic (the default): a user is waiting on the
    /// answer. Served first.
    #[default]
    Interactive,
    /// Best-effort background traffic (precomputation, analytics, warmup):
    /// served when no interactive work waits, plus the anti-starvation slot.
    Batch,
}

impl Priority {
    /// Both classes, from highest to lowest service priority. The order is
    /// load-bearing: [`Priority::index`] indexes per-class arrays with it.
    pub const ALL: [Priority; 2] = [Priority::Interactive, Priority::Batch];

    /// The position of this class in [`Priority::ALL`] (and in every
    /// per-class array of the crate).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
        }
    }

    /// Lower-case human-readable name (`"interactive"` / `"batch"`).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One RkNN query submitted to the server.
#[derive(Copy, Clone, Debug)]
pub struct Request {
    /// The algorithm to answer with.
    pub algorithm: Algorithm,
    /// The query node.
    pub query: NodeId,
    /// The `k` of the RkNN query (must be at least 1 to pass admission).
    pub k: usize,
    /// The admission class (default [`Priority::Interactive`]). Determines
    /// queue order and per-class accounting, never the answer.
    pub priority: Priority,
    /// The instant after which the request is no longer worth serving.
    /// Only the `Shed` backpressure policy acts on it (expired requests are
    /// dropped at admission or dequeue, and deadline-bearing requests are
    /// served earliest-deadline-first); `Block` and `Reject` never drop
    /// accepted work and keep pure FIFO order per class.
    pub deadline: Option<Instant>,
    /// When the request entered the system (stamped by [`Request::new`]).
    /// Queue wait is measured from here, so time spent blocked in a full
    /// `Block`-policy queue counts as waiting — which is what an end-to-end
    /// latency account must show.
    pub submit_instant: Instant,
}

impl Request {
    /// An interactive request with no deadline, stamped
    /// `submit_instant = now`.
    pub fn new(algorithm: Algorithm, query: NodeId, k: usize) -> Self {
        Request {
            algorithm,
            query,
            k,
            priority: Priority::Interactive,
            deadline: None,
            submit_instant: Instant::now(),
        }
    }

    /// A request for one engine-level [`QuerySpec`] (interactive, no
    /// deadline) — the bridge from a [`Workload`] to the server's
    /// [`crate::Server::submit_all`].
    pub fn from_spec(spec: QuerySpec) -> Self {
        Request::new(spec.algorithm, spec.query, spec.k)
    }

    /// Sets the admission class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `budget` after the submit instant.
    pub fn with_deadline_in(mut self, budget: Duration) -> Self {
        self.deadline = Some(self.submit_instant + budget);
        self
    }

    /// The engine-level spec of this request.
    pub fn spec(&self) -> QuerySpec {
        QuerySpec { algorithm: self.algorithm, query: self.query, k: self.k }
    }
}

impl From<QuerySpec> for Request {
    fn from(spec: QuerySpec) -> Self {
        Request::from_spec(spec)
    }
}

/// Why a request was not served. See [`crate::Server::submit`] for which
/// variants surface where (synchronously vs. through the ticket).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control turned the request away: the queue was full and the
    /// policy was `Reject`, or `Shed` found no expired request to drop.
    QueueFull,
    /// The server is shutting down and accepts no new requests.
    ShuttingDown,
    /// The request was accepted, then dropped past its deadline by the
    /// `Shed` policy (at admission, to make room, or at dequeue).
    Shed,
    /// The request cannot be served: `k == 0`, or the algorithm needs a
    /// precomputed structure (materialized table, hub labels) the world
    /// does not carry. Surfaces synchronously from admission, or through
    /// the ticket when a point-set swap removed the structure after the
    /// request was queued.
    Unservable,
    /// The request was dropped without being served. A healthy server never
    /// produces this: it is the drop-time backstop that keeps a ticket from
    /// hanging forever if a worker thread dies mid-batch.
    Lost,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeError::QueueFull => "request queue is full",
            ServeError::ShuttingDown => "server is shutting down",
            ServeError::Shed => "request shed past its deadline",
            ServeError::Unservable => "request cannot be served by the current world",
            ServeError::Lost => "request was dropped without being served",
        })
    }
}

impl std::error::Error for ServeError {}

/// A served request: the RkNN outcome plus where its latency went.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServedQuery {
    /// The query result, byte-identical to what the sequential
    /// [`rnn_core::run_rknn`] loop computes for the same world.
    pub outcome: RknnOutcome,
    /// Submit instant to dequeue: time spent in (or blocked on) the queue.
    pub queue_wait: Duration,
    /// Dequeue to completion: time spent executing the algorithm.
    pub service_time: Duration,
    /// Index of the worker thread that served the request.
    pub worker: usize,
}

/// What a ticket resolves to.
pub type ServeResult = Result<ServedQuery, ServeError>;

/// The oneshot slot a worker fills and a [`Ticket`] waits on.
pub(crate) struct Completion {
    slot: Mutex<Option<ServeResult>>,
    filled: Condvar,
}

impl Completion {
    pub(crate) fn new() -> Self {
        Completion { slot: Mutex::new(None), filled: Condvar::new() }
    }

    /// Fills the slot if it is still empty (first write wins — the drop-time
    /// `Lost` backstop must never overwrite a real result) and wakes waiters.
    pub(crate) fn fulfill(&self, result: ServeResult) {
        let mut slot = lock(&self.slot);
        if slot.is_none() {
            *slot = Some(result);
            self.filled.notify_all();
        }
    }

    fn wait(&self) -> ServeResult {
        let mut slot = lock(&self.slot);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.filled.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn is_done(&self) -> bool {
        lock(&self.slot).is_some()
    }
}

/// Locks ignoring poison: a panicking worker must not cascade into every
/// caller that touches the same slot (parking_lot semantics, on std types).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// The completion handle returned by [`crate::Server::submit`]: await the
/// result of one request with [`Ticket::wait`].
pub struct Ticket {
    pub(crate) completion: Arc<Completion>,
}

impl Ticket {
    /// Blocks until the request resolves and returns its result. Every
    /// accepted request resolves exactly once (served, shed, or — worker
    /// death only — lost), so this never hangs on a drained server.
    pub fn wait(self) -> ServeResult {
        self.completion.wait()
    }

    /// Returns `true` once the result is available ([`Ticket::wait`] will
    /// not block).
    pub fn is_done(&self) -> bool {
        self.completion.is_done()
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("done", &self.is_done()).finish()
    }
}

/// A request riding the queue together with its completion handle.
pub(crate) struct Queued {
    pub(crate) request: Request,
    pub(crate) completion: Arc<Completion>,
}

impl Queued {
    pub(crate) fn new(request: Request) -> (Self, Ticket) {
        let completion = Arc::new(Completion::new());
        let ticket = Ticket { completion: Arc::clone(&completion) };
        (Queued { request, completion }, ticket)
    }

    /// Resolves the ticket with a served result.
    pub(crate) fn complete(&self, served: ServedQuery) {
        self.completion.fulfill(Ok(served));
    }

    /// Resolves the ticket with an error.
    pub(crate) fn fail(&self, error: ServeError) {
        self.completion.fulfill(Err(error));
    }
}

impl Drop for Queued {
    fn drop(&mut self) {
        // Backstop: a queued request that dies unserved still resolves its
        // ticket (no-op when the worker already fulfilled it).
        self.completion.fulfill(Err(ServeError::Lost));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_core::QueryStats;

    fn request() -> Request {
        Request::new(Algorithm::Eager, NodeId::new(3), 2)
    }

    fn served() -> ServedQuery {
        ServedQuery {
            outcome: RknnOutcome::from_points(vec![], QueryStats::default()),
            queue_wait: Duration::from_micros(5),
            service_time: Duration::from_micros(7),
            worker: 0,
        }
    }

    #[test]
    fn request_builders_and_spec() {
        let r = request();
        assert_eq!(
            r.spec(),
            QuerySpec { algorithm: Algorithm::Eager, query: NodeId::new(3), k: 2 }
        );
        assert!(r.deadline.is_none());
        assert_eq!(r.priority, Priority::Interactive, "interactive is the default class");
        let d = r.with_deadline_in(Duration::from_millis(10));
        assert_eq!(d.deadline, Some(d.submit_instant + Duration::from_millis(10)));
        let at = Instant::now();
        assert_eq!(request().with_deadline(at).deadline, Some(at));
        assert_eq!(request().with_priority(Priority::Batch).priority, Priority::Batch);
    }

    #[test]
    fn priority_class_order_and_names() {
        assert_eq!(Priority::ALL, [Priority::Interactive, Priority::Batch]);
        for (i, p) in Priority::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i, "ALL order and index agree");
        }
        assert_eq!(Priority::Interactive.name(), "interactive");
        assert_eq!(Priority::Batch.to_string(), "batch");
        assert_eq!(Priority::default(), Priority::Interactive);
    }

    #[test]
    fn request_from_spec_round_trips() {
        let spec = QuerySpec { algorithm: Algorithm::Lazy, query: NodeId::new(7), k: 3 };
        let r = Request::from(spec);
        assert_eq!(r.spec(), spec);
        assert_eq!(r.priority, Priority::Interactive);
        assert!(r.deadline.is_none());
    }

    #[test]
    fn ticket_resolves_once_and_first_write_wins() {
        let (queued, ticket) = Queued::new(request());
        assert!(!ticket.is_done());
        queued.complete(served());
        queued.fail(ServeError::Shed); // ignored: already fulfilled
        assert!(ticket.is_done());
        assert!(format!("{ticket:?}").contains("done: true"));
        let result = ticket.wait().expect("completed");
        assert_eq!(result.worker, 0);
        assert_eq!(result.service_time, Duration::from_micros(7));
    }

    #[test]
    fn ticket_wait_blocks_until_a_worker_fulfills() {
        let (queued, ticket) = Queued::new(request());
        let waiter = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(Duration::from_millis(10));
        queued.fail(ServeError::Shed);
        assert_eq!(waiter.join().unwrap(), Err(ServeError::Shed));
    }

    #[test]
    fn dropping_an_unserved_request_resolves_the_ticket_as_lost() {
        let (queued, ticket) = Queued::new(request());
        drop(queued);
        assert!(ticket.is_done());
        assert_eq!(ticket.wait(), Err(ServeError::Lost));
    }

    #[test]
    fn error_display_is_human_readable() {
        for (e, needle) in [
            (ServeError::QueueFull, "full"),
            (ServeError::ShuttingDown, "shutting down"),
            (ServeError::Shed, "shed"),
            (ServeError::Unservable, "cannot be served"),
            (ServeError::Lost, "dropped"),
        ] {
            assert!(e.to_string().contains(needle), "{e:?}");
        }
    }
}

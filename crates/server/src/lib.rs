//! Online RkNN serving: the subsystem that turns the offline batch engine
//! into a long-running service.
//!
//! The layers below this crate answer queries; none of them *accepts* them.
//! [`rnn_core::QueryEngine::run_batch`] executes a workload that is fully
//! known up front and returns when the last query finishes — the shape of an
//! experiment, not of a service. ReHub (Efentakis & Pfoser) frames RkNN as
//! an **online** problem: requests arrive continuously, with different
//! algorithms, priorities, deadlines and arrival bursts, and the system must
//! decide what to admit, when to run it, and how long everything waited.
//! This crate is that missing layer:
//!
//! * [`RequestQueue`](queue) — a hand-rolled bounded MPMC queue (mutex +
//!   two condvars) with one sub-queue per [`Priority`] class and three
//!   admission policies at the full-queue edge:
//!   [`Block`](BackpressurePolicy::Block),
//!   [`Reject`](BackpressurePolicy::Reject), and
//!   [`Shed`](BackpressurePolicy::Shed) (shed an expired newcomer
//!   directly, else drop the earliest-deadline expired resident). Under
//!   `Shed`, deadline-bearing requests are served
//!   **earliest-deadline-first** from a binary heap; workers drain
//!   interactive before batch traffic, with a starvation-ratio bound.
//! * [`Ticket`] — a oneshot completion handle per request: callers submit
//!   (singly, or batched via [`Server::submit_all`] for one lock round-trip
//!   per burst), then await their own result while other traffic
//!   interleaves. Every accepted request resolves its ticket exactly once.
//! * [`Server`] — N long-lived workers, each with its own [`Scratch`]
//!   arena, draining the queue in micro-batches, sharing one result cache
//!   (and, on paged worlds, one striped buffer pool and one set of
//!   lock-free I/O counters); graceful drain-then-join shutdown; atomic
//!   point-set swaps that sweep the cache.
//! * [`ServerStats`] — **wait-free** runtime snapshots: global and
//!   per-class ([`ClassStats`]) admission counters and latency histograms,
//!   published by workers through seqlock-style double-buffered cells
//!   ([`stats`]) so a poll never contends with an in-flight micro-batch.
//! * [`LatencyHistogram`] (re-exported from [`rnn_obs`]) — fixed-bucket
//!   log-scale latency accounting with the queue-wait / service-time split,
//!   mergeable across workers. Queue waits include requests shed at dequeue,
//!   so overload telemetry is not survivorship-biased.
//! * **Observability** — [`Server::start_observed`] registers the server as
//!   a pollable source of an [`rnn_obs::MetricsRegistry`] (admission
//!   counters, per-class histograms, per-algorithm serve counts, cache /
//!   I/O rollups, all from one wait-free stats poll);
//!   [`ServerConfig::with_tracing`] turns on per-query phase tracing
//!   (folded into `algorithm x phase` registry aggregates), and
//!   [`ServerConfig::with_slow_query_log`] captures the worst-N traces plus
//!   a deterministic uniform sample, drained via
//!   [`Server::drain_slow_queries`].
//! * **Time-aware telemetry** — [`Server::start_with_telemetry`] adds the
//!   windowed half of the stack ([`telemetry`]): per-class
//!   rate-over-window and quantile-over-window instruments on a logical
//!   clock ticked by the server's micro-batch loop (or manually via
//!   [`Server::advance_epoch`]), an [`SloEngine`] evaluating latency and
//!   drop-ratio objectives with multi-window burn rates at every tick, and
//!   a flight recorder of structured serving events drained through
//!   [`Server::drain_events`] — exportable as a Chrome trace together with
//!   the slow-query spans ([`rnn_obs::chrome_trace`]).
//!
//! [`Server::start_with_telemetry`]: server::Server::start_with_telemetry
//! [`Server::advance_epoch`]: server::Server::advance_epoch
//! [`Server::drain_events`]: server::Server::drain_events
//!
//! Serving never changes answers: for any admitted request the outcome is
//! byte-identical to the sequential [`rnn_core::run_rknn`] call against the
//! same world, regardless of worker count, micro-batch size, policy or
//! priority class — the `server_determinism` integration suite pins this
//! down for all six algorithms.
//!
//! [`Scratch`]: rnn_core::Scratch

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
pub mod request;
pub mod server;
pub mod stats;
pub mod telemetry;

pub use queue::BackpressurePolicy;
pub use request::{Priority, Request, ServeError, ServeResult, ServedQuery, Ticket};
pub use rnn_obs::{
    Drained, Event, EventKind, LatencyHistogram, MetricsRegistry, QueryTrace, SloEngine, SloSpec,
    SloState, SloTransition, SlowQueryReport,
};
pub use server::{PointUpdate, Server, ServerConfig, World};
pub use stats::{ClassStats, ServerStats};
pub use telemetry::TelemetryConfig;

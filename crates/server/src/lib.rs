//! Online RkNN serving: the subsystem that turns the offline batch engine
//! into a long-running service.
//!
//! The layers below this crate answer queries; none of them *accepts* them.
//! [`rnn_core::QueryEngine::run_batch`] executes a workload that is fully
//! known up front and returns when the last query finishes — the shape of an
//! experiment, not of a service. ReHub (Efentakis & Pfoser) frames RkNN as
//! an **online** problem: requests arrive continuously, with different
//! algorithms, deadlines and arrival bursts, and the system must decide what
//! to admit, when to run it, and how long everything waited. This crate is
//! that missing layer:
//!
//! * [`RequestQueue`](queue) — a hand-rolled bounded MPMC queue (mutex +
//!   two condvars around a ring buffer) with three admission policies at
//!   the full-queue edge: [`Block`](BackpressurePolicy::Block),
//!   [`Reject`](BackpressurePolicy::Reject), and
//!   [`Shed`](BackpressurePolicy::Shed) (drop the oldest request already
//!   past its deadline).
//! * [`Ticket`] — a oneshot completion handle per request: callers submit,
//!   then await their own result while other traffic interleaves. Every
//!   accepted request resolves its ticket exactly once.
//! * [`Server`] — N long-lived workers, each with its own [`Scratch`]
//!   arena, draining the queue in micro-batches, sharing one result cache
//!   (and, on paged worlds, one striped buffer pool and one set of
//!   lock-free I/O counters); graceful drain-then-join shutdown; runtime
//!   [`ServerStats`] snapshots; atomic point-set swaps that sweep the
//!   cache.
//! * [`LatencyHistogram`] — fixed-bucket log-scale latency accounting with
//!   the queue-wait / service-time split, mergeable across workers.
//!
//! Serving never changes answers: for any admitted request the outcome is
//! byte-identical to the sequential [`rnn_core::run_rknn`] call against the
//! same world, regardless of worker count, micro-batch size or policy — the
//! `server_determinism` integration suite pins this down for all six
//! algorithms.
//!
//! [`Scratch`]: rnn_core::Scratch

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod queue;
pub mod request;
pub mod server;

pub use histogram::LatencyHistogram;
pub use queue::BackpressurePolicy;
pub use request::{Request, ServeError, ServeResult, ServedQuery, Ticket};
pub use server::{Server, ServerConfig, ServerStats, World};

//! Time-aware serving telemetry: the server-side assembly of the
//! observability crate's windowed instruments, SLO engine and flight
//! recorder.
//!
//! [`crate::ServerConfig`] stays a `Copy` engine config; everything
//! time-aware lives in a [`TelemetryConfig`] consumed by
//! [`Server::start_with_telemetry`](crate::Server::start_with_telemetry).
//! The server then owns one logical [`Clock`] and, per priority class, a
//! windowed total-latency histogram (queue wait + service) and windowed
//! arrival / drop counters — everything an [`SloEngine`] needs to judge
//! per-class latency and shed/reject-ratio objectives with multi-window
//! burn rates.
//!
//! # Clock semantics
//!
//! The clock is **logical** and driven by the server, never by wall time on
//! a record path. Two drivers exist:
//!
//! * automatic — every [`TelemetryConfig::tick_micro_batches`] completed
//!   micro-batches (across all workers), the finishing worker evaluates the
//!   SLOs at the current epoch and then advances the clock;
//! * manual — [`Server::advance_epoch`](crate::Server::advance_epoch) does
//!   the same on demand, which is what benchmarks and tests use to make
//!   window boundaries deterministic.
//!
//! Both follow the *evaluate-then-advance* discipline: the epoch's traffic
//! is judged before its slots rotate out, so a one-epoch short window always
//! sees the epoch that just ended.

use crate::request::Priority;
use rnn_obs::{
    Clock, Drained, EventKind, FlightRecorder, MetricsRegistry, SloEngine, SloEngineBuilder,
    SloSpec, SloTransition, WindowedCounter, WindowedHistogram,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the server's time-aware telemetry — windowed
/// instruments, SLO objectives and the flight recorder. Separate from
/// [`crate::ServerConfig`] (which stays `Copy`); consumed by
/// [`Server::start_with_telemetry`](crate::Server::start_with_telemetry).
#[derive(Clone, Debug, Default)]
pub struct TelemetryConfig {
    /// Ring width of every windowed instrument, in epochs (clamped to at
    /// least 1). Bounds the longest window any SLO can use; the default 16
    /// holds the conventional 4-epoch long window four times over.
    pub window_epochs: usize,
    /// Flight-recorder capacity in events; 0 disables the recorder.
    pub recorder_capacity: usize,
    /// Completed micro-batches (across all workers) per automatic epoch
    /// tick; 0 disables automatic ticking (epochs advance only through
    /// [`Server::advance_epoch`](crate::Server::advance_epoch)).
    pub tick_micro_batches: u64,
    /// Per-class latency objectives (total latency: queue wait + service).
    /// Specs must carry [`rnn_obs::SloObjective::LatencyQuantile`].
    pub latency_slos: Vec<(Priority, SloSpec)>,
    /// Per-class drop-ratio objectives (shed + rejected over submitted).
    /// Specs must carry [`rnn_obs::SloObjective::ErrorRatio`].
    pub dropped_slos: Vec<(Priority, SloSpec)>,
}

impl TelemetryConfig {
    /// A 16-epoch ring, a 256-event flight recorder, manual ticking, no
    /// SLOs.
    pub fn new() -> Self {
        TelemetryConfig {
            window_epochs: 16,
            recorder_capacity: 256,
            tick_micro_batches: 0,
            latency_slos: Vec::new(),
            dropped_slos: Vec::new(),
        }
    }

    /// Sets the windowed-instrument ring width in epochs.
    pub fn with_window_epochs(mut self, epochs: usize) -> Self {
        self.window_epochs = epochs.max(1);
        self
    }

    /// Sets the flight-recorder capacity (0 disables it).
    pub fn with_recorder_capacity(mut self, events: usize) -> Self {
        self.recorder_capacity = events;
        self
    }

    /// Enables automatic epoch ticking every `micro_batches` completed
    /// micro-batches (0 = manual only).
    pub fn with_tick_micro_batches(mut self, micro_batches: u64) -> Self {
        self.tick_micro_batches = micro_batches;
        self
    }

    /// Adds a latency SLO over `class`'s windowed total latency.
    pub fn with_latency_slo(mut self, class: Priority, spec: SloSpec) -> Self {
        self.latency_slos.push((class, spec));
        self
    }

    /// Adds a drop-ratio SLO (shed + rejected over submitted) for `class`.
    pub fn with_dropped_slo(mut self, class: Priority, spec: SloSpec) -> Self {
        self.dropped_slos.push((class, spec));
        self
    }
}

/// The assembled runtime: one clock, per-class windowed instruments, the
/// SLO engine and the (optional) flight recorder. Lives in the server's
/// `Shared`, recorded into by admission and worker paths.
pub(crate) struct Telemetry {
    clock: Clock,
    /// Per-class windowed total latency (queue wait + service), indexed by
    /// [`Priority::index`].
    latency: Vec<WindowedHistogram>,
    /// Per-class windowed submissions.
    arrivals: Vec<WindowedCounter>,
    /// Per-class windowed drops (shed + rejected, both admission edges).
    dropped: Vec<WindowedCounter>,
    recorder: Option<Arc<FlightRecorder>>,
    slo: SloEngine,
    tick_every: u64,
    /// Completed micro-batches across all workers — the automatic tick's
    /// denominator.
    batches: AtomicU64,
}

impl Telemetry {
    /// Builds the instruments, binds the SLOs and registers everything in
    /// `registry`: per class `rnn_server_latency_nanos{class=...}` (+
    /// `_window`), `rnn_server_arrivals_total{class=...}` (+ `_window`),
    /// `rnn_server_dropped_total{class=...}` (+ `_window`), the
    /// `rnn_slo_*` gauges, and a `telemetry` source with the clock epoch
    /// and flight-recorder counters.
    ///
    /// # Panics
    /// Panics if a latency SLO carries a ratio objective or vice versa
    /// (see [`SloEngineBuilder::latency`] / [`SloEngineBuilder::ratio`]).
    pub(crate) fn new(config: TelemetryConfig, registry: &MetricsRegistry) -> Telemetry {
        let clock = Clock::new();
        let windows = config.window_epochs.max(1);
        let instrument = |stem: &str, p: Priority| format!("{stem}{{class=\"{}\"}}", p.name());
        let latency: Vec<WindowedHistogram> = Priority::ALL
            .iter()
            .map(|&p| {
                WindowedHistogram::register(
                    registry,
                    &instrument("rnn_server_latency_nanos", p),
                    &clock,
                    windows,
                )
            })
            .collect();
        let arrivals: Vec<WindowedCounter> = Priority::ALL
            .iter()
            .map(|&p| {
                WindowedCounter::register(
                    registry,
                    &instrument("rnn_server_arrivals_total", p),
                    &clock,
                    windows,
                )
            })
            .collect();
        let dropped: Vec<WindowedCounter> = Priority::ALL
            .iter()
            .map(|&p| {
                WindowedCounter::register(
                    registry,
                    &instrument("rnn_server_dropped_total", p),
                    &clock,
                    windows,
                )
            })
            .collect();
        let recorder = (config.recorder_capacity > 0).then(|| {
            Arc::new(FlightRecorder::new(config.recorder_capacity).with_clock(clock.clone()))
        });
        let mut builder = SloEngineBuilder::new();
        for (p, spec) in config.latency_slos {
            builder = builder.latency(spec, latency[p.index()].clone());
        }
        for (p, spec) in config.dropped_slos {
            builder = builder.ratio(spec, dropped[p.index()].clone(), arrivals[p.index()].clone());
        }
        let slo = builder.register(registry).build();
        {
            let clock = clock.clone();
            let recorder = recorder.clone();
            registry.register_source("telemetry", move |set| {
                set.gauge("rnn_telemetry_epoch", clock.now());
                if let Some(r) = &recorder {
                    set.counter("rnn_recorder_recorded_total", r.recorded());
                    set.gauge("rnn_recorder_capacity", r.capacity() as u64);
                }
            });
        }
        Telemetry {
            clock,
            latency,
            arrivals,
            dropped,
            recorder,
            slo,
            tick_every: config.tick_micro_batches,
            batches: AtomicU64::new(0),
        }
    }

    /// The current logical epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.clock.now()
    }

    /// A clone of the SLO engine (shares state).
    pub(crate) fn slo(&self) -> SloEngine {
        self.slo.clone()
    }

    /// One submission entered admission for `class`.
    pub(crate) fn on_arrival(&self, class: Priority) {
        self.arrivals[class.index()].inc();
    }

    /// One request of `class` was dropped — shed (either admission edge)
    /// or rejected. Sheds additionally append an
    /// [`EventKind::AdmissionShed`] at `nanos`.
    pub(crate) fn on_dropped(&self, class: Priority, shed: bool, nanos: u64) {
        self.dropped[class.index()].inc();
        if shed {
            self.record_event(
                nanos,
                EventKind::AdmissionShed { class: class.index() as u64, count: 1 },
            );
        }
    }

    /// One request of `class` completed with `total` latency (queue wait +
    /// service).
    pub(crate) fn on_completed(&self, class: Priority, total: Duration) {
        self.latency[class.index()].record(total);
    }

    /// Appends a structured event at `nanos` (no-op without a recorder).
    pub(crate) fn record_event(&self, nanos: u64, kind: EventKind) {
        if let Some(recorder) = &self.recorder {
            recorder.record_at(nanos, kind);
        }
    }

    /// A shareable handle to the flight recorder, when one is configured —
    /// this is what the storage layer's control paths append to.
    pub(crate) fn recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.recorder.clone()
    }

    /// Evaluate-then-advance: judges every SLO at the current epoch
    /// (recording transitions), then advances the clock. Returns the
    /// transitions.
    pub(crate) fn advance_epoch(&self) -> Vec<SloTransition> {
        let transitions = self.slo.evaluate(self.clock.now(), self.recorder.as_deref());
        self.clock.advance();
        transitions
    }

    /// The automatic driver: counts one completed micro-batch and performs
    /// an [`advance_epoch`](Self::advance_epoch) whenever the count crosses
    /// a `tick_micro_batches` multiple.
    pub(crate) fn on_micro_batch(&self) {
        if self.tick_every == 0 {
            return;
        }
        let n = self.batches.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.tick_every) {
            self.advance_epoch();
        }
    }

    /// Drains the flight recorder (empty without one).
    pub(crate) fn drain_events(&self) -> Drained {
        self.recorder.as_ref().map(|r| r.drain()).unwrap_or_default()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("epoch", &self.epoch())
            .field("slos", &self.slo.len())
            .field("recorder", &self.recorder.is_some())
            .field("tick_every", &self.tick_every)
            .finish()
    }
}

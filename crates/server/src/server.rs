//! The serving lifecycle: worker pool, admission, world swaps, shutdown.
//!
//! A [`Server`] is the first component in this workspace with a *lifecycle*
//! rather than a pure function signature: [`Server::start`] spawns N
//! long-lived worker threads, a steady state serves an open-ended request
//! stream, and [`Server::shutdown`] drains the queue and joins the workers.
//!
//! The data flow per request:
//!
//! ```text
//! submit() ──admission──▶ RequestQueue ──micro-batch──▶ worker ──▶ Ticket
//!    │                                                    │
//!    └── Err(QueueFull / ShuttingDown / Unservable)       └── QueryEngine
//!        (synchronous rejection)                              view over the
//!                                                             current World
//! ```
//!
//! Each worker owns a [`Scratch`] arena (steady-state queries are
//! allocation-free, exactly as in the batch engine) and drains the queue in
//! micro-batches of up to B requests per wakeup. All workers share one
//! [`SharedResultCache`] and — when the world is a `PagedGraph` — one striped
//! buffer pool and one set of lock-free I/O counters, so the serving path
//! reuses every concurrency layer built underneath it.
//!
//! **World swaps.** The topology and precomputed structures live in a
//! [`World`] behind an RwLock. A worker holds the *read* lock for the
//! duration of one micro-batch; [`Server::swap_points`] takes the *write*
//! lock, installs the new point set and sweeps the result cache before
//! releasing. The lock order makes the swap airtight: no in-flight batch can
//! insert a stale answer after the sweep, because the sweep does not start
//! until every in-flight batch has finished, and every later batch sees the
//! new world.
//!
//! **Accounting.** Every submitted request lands in exactly one of
//! `rejected` (synchronous), `completed`, or `shed` (asynchronous, via its
//! ticket): `completed + rejected + shed == submitted` holds at quiescence —
//! the shutdown-under-load test pins it down.

use crate::histogram::LatencyHistogram;
use crate::queue::{Admission, BackpressurePolicy, RequestQueue};
use crate::request::{Queued, Request, ServeError, ServedQuery, Ticket};
use parking_lot::{Mutex, RwLock};
use rnn_core::engine::QueryEngine;
use rnn_core::{Algorithm, CacheStats, HubLabelRknn, MaterializedKnn, Scratch, SharedResultCache};
use rnn_graph::{PointsOnNodes, Topology};
use rnn_storage::{IoCounters, IoStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// The graph, point set and precomputed structures a server answers from —
/// everything a [`QueryEngine`] view borrows, owned behind `Arc`s so worker
/// threads outlive any one caller's stack frame.
pub struct World {
    topo: Arc<dyn Topology + Send + Sync>,
    points: Arc<dyn PointsOnNodes + Send + Sync>,
    materialized: Option<Arc<MaterializedKnn>>,
    hub_labels: Option<Arc<dyn HubLabelRknn + Send + Sync>>,
}

impl World {
    /// A world of a topology and point set, with no precomputed structures
    /// (algorithms that need them are turned away as
    /// [`ServeError::Unservable`]).
    pub fn new(
        topo: Arc<dyn Topology + Send + Sync>,
        points: Arc<dyn PointsOnNodes + Send + Sync>,
    ) -> Self {
        World { topo, points, materialized: None, hub_labels: None }
    }

    /// Attaches a materialized k-NN table (admits
    /// [`Algorithm::EagerMaterialized`] requests).
    pub fn with_materialized(mut self, table: Arc<MaterializedKnn>) -> Self {
        self.materialized = Some(table);
        self
    }

    /// Attaches a hub-label index (admits [`Algorithm::HubLabel`] requests).
    pub fn with_hub_labels(mut self, index: Arc<dyn HubLabelRknn + Send + Sync>) -> Self {
        self.hub_labels = Some(index);
        self
    }

    /// Builds the engine view every worker uses for one micro-batch.
    fn engine_view(&self) -> QueryEngine<'_> {
        let mut engine = QueryEngine::from_dyn(&*self.topo, &*self.points);
        if let Some(table) = &self.materialized {
            engine = engine.with_materialized(table);
        }
        if let Some(index) = &self.hub_labels {
            engine = engine.with_hub_labels(&**index);
        }
        engine
    }

    /// `true` if the current precomputed structures can serve `algorithm`.
    fn can_serve(&self, algorithm: Algorithm) -> bool {
        (!algorithm.needs_materialization() || self.materialized.is_some())
            && (!algorithm.needs_hub_labels() || self.hub_labels.is_some())
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("num_nodes", &self.topo.num_nodes())
            .field("num_points", &self.points.num_points())
            .field("materialized", &self.materialized.is_some())
            .field("hub_labels", &self.hub_labels.is_some())
            .finish()
    }
}

/// Server sizing and policy — the engine config the constructor consumes.
#[derive(Copy, Clone, Debug)]
pub struct ServerConfig {
    /// Number of worker threads (at least 1).
    pub workers: usize,
    /// Request-queue capacity (at least 1).
    pub queue_capacity: usize,
    /// Maximum requests a worker takes per wakeup (at least 1). Micro-
    /// batching amortizes lock acquisitions and condvar wakeups when the
    /// queue runs deep; it never waits for a full batch, so it adds no
    /// latency when the queue is shallow.
    pub micro_batch: usize,
    /// What to do with a new request when the queue is full.
    pub policy: BackpressurePolicy,
    /// Result-cache entries shared by all workers (0 disables caching).
    pub cache_capacity: usize,
    /// Result-cache shards (0 means one per worker, the rule of thumb).
    pub cache_shards: usize,
}

impl Default for ServerConfig {
    /// Two workers, a 1024-deep queue, micro-batches of 8, blocking
    /// admission, no result cache.
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 1024,
            micro_batch: 8,
            policy: BackpressurePolicy::Block,
            cache_capacity: 0,
            cache_shards: 0,
        }
    }
}

impl ServerConfig {
    /// Sets the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the queue capacity (clamped to at least 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the micro-batch size (clamped to at least 1).
    pub fn with_micro_batch(mut self, micro_batch: usize) -> Self {
        self.micro_batch = micro_batch.max(1);
        self
    }

    /// Sets the backpressure policy.
    pub fn with_policy(mut self, policy: BackpressurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the shared result cache: `capacity` entries over `shards`
    /// independently locked shards (0 shards = one per worker).
    pub fn with_result_cache(mut self, capacity: usize, shards: usize) -> Self {
        self.cache_capacity = capacity;
        self.cache_shards = shards;
        self
    }
}

/// Cumulative admission / completion counters plus per-algorithm serve
/// counts (indexed in [`Algorithm::ALL`] order).
struct Counts {
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    per_algorithm: [AtomicU64; Algorithm::ALL.len()],
}

impl Counts {
    fn new() -> Self {
        Counts {
            submitted: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            per_algorithm: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The position of `algorithm` in [`Algorithm::ALL`] — kept as a
/// wildcard-free match (the workspace contract: adding a variant must break
/// this build, not silently share a counter).
fn algorithm_index(algorithm: Algorithm) -> usize {
    match algorithm {
        Algorithm::Eager => 0,
        Algorithm::EagerMaterialized => 1,
        Algorithm::Lazy => 2,
        Algorithm::LazyExtendedPruning => 3,
        Algorithm::Naive => 4,
        Algorithm::HubLabel => 5,
    }
}

/// One worker's latency accounting, merged across workers by
/// [`Server::stats`].
#[derive(Default)]
struct WorkerMetrics {
    queue_wait: LatencyHistogram,
    service: LatencyHistogram,
    micro_batches: u64,
}

/// Everything the workers and the handle share.
struct Shared {
    queue: RequestQueue,
    policy: BackpressurePolicy,
    micro_batch: usize,
    world: RwLock<World>,
    cache: Option<SharedResultCache>,
    io: Option<IoCounters>,
    counts: Counts,
    metrics: Vec<Mutex<WorkerMetrics>>,
}

/// A point-in-time snapshot of a server's counters and latency split.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Requests handed to [`Server::submit`].
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests turned away without being served: synchronously at
    /// admission (queue full, unservable, shutting down), or at dequeue
    /// when a point-set swap removed the precomputed structure an
    /// already-queued request needs (its ticket resolves to
    /// [`ServeError::Unservable`]).
    pub rejected: u64,
    /// Accepted requests dropped past their deadline by the `Shed` policy.
    pub shed: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Served-request counts per algorithm, in [`Algorithm::ALL`] order.
    pub per_algorithm: Vec<(Algorithm, u64)>,
    /// Requests sitting in the queue at snapshot time.
    pub queue_depth: usize,
    /// Worker wakeups that processed at least one request (micro-batching
    /// makes this less than `completed` under load).
    pub micro_batches: u64,
    /// Submit-to-dequeue latency, merged across workers.
    pub queue_wait: LatencyHistogram,
    /// Dequeue-to-completion latency, merged across workers.
    pub service: LatencyHistogram,
    /// Result-cache hits/misses (zeros when caching is disabled).
    pub cache: CacheStats,
    /// I/O counters rollup (zeros unless the server was given the paged
    /// world's counters).
    pub io: IoStats,
}

impl ServerStats {
    /// Served-request count for one algorithm.
    pub fn algorithm_count(&self, algorithm: Algorithm) -> u64 {
        self.per_algorithm[algorithm_index(algorithm)].1
    }

    /// `completed + rejected + shed` — equals `submitted` at quiescence
    /// (nothing in flight), which is the no-request-lost invariant.
    pub fn accounted(&self) -> u64 {
        self.completed + self.rejected + self.shed
    }
}

/// A running RkNN serving instance. See the [module docs](self) for the
/// architecture; see [`Server::submit`] / [`Ticket::wait`] for the caller
/// protocol.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool over `world`. Workers are live when this
    /// returns; requests submitted from any thread are served concurrently.
    ///
    /// To serve a disk-resident world with I/O accounting, pass the paged
    /// graph's counters via [`Server::start_with_io`].
    pub fn start(world: World, config: ServerConfig) -> Server {
        Self::start_inner(world, config, None)
    }

    /// [`Server::start`] plus I/O attribution: `counters` (e.g.
    /// `PagedGraph::counters()`) are snapshotted into [`ServerStats::io`]
    /// and retired per worker on shutdown.
    pub fn start_with_io(world: World, config: ServerConfig, counters: IoCounters) -> Server {
        Self::start_inner(world, config, Some(counters))
    }

    fn start_inner(world: World, config: ServerConfig, io: Option<IoCounters>) -> Server {
        let workers = config.workers.max(1);
        let cache = (config.cache_capacity > 0).then(|| {
            let shards = if config.cache_shards == 0 { workers } else { config.cache_shards };
            SharedResultCache::new(config.cache_capacity, shards)
        });
        let shared = Arc::new(Shared {
            queue: RequestQueue::new(config.queue_capacity.max(1)),
            policy: config.policy,
            micro_batch: config.micro_batch.max(1),
            world: RwLock::new(world),
            cache,
            io,
            counts: Counts::new(),
            metrics: (0..workers).map(|_| Mutex::new(WorkerMetrics::default())).collect(),
        });
        let handles = (0..workers)
            .map(|worker_id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rnn-server-worker-{worker_id}"))
                    .spawn(move || worker_loop(&shared, worker_id))
                    .expect("spawn server worker")
            })
            .collect();
        Server { shared, workers: handles }
    }

    /// Submits one request.
    ///
    /// Returns a [`Ticket`] when the request was admitted — the ticket
    /// resolves to the served result, to [`ServeError::Shed`] if the `Shed`
    /// policy drops it past its deadline, or to [`ServeError::Unservable`]
    /// if a [`Server::swap_points`] removed the precomputed structure it
    /// needs before a worker reached it. Synchronous errors mean the
    /// request never entered the queue: [`ServeError::Unservable`] (failed
    /// admission validation), [`ServeError::QueueFull`], or
    /// [`ServeError::ShuttingDown`].
    pub fn submit(&self, request: Request) -> Result<Ticket, ServeError> {
        let counts = &self.shared.counts;
        counts.submitted.fetch_add(1, Ordering::Relaxed);
        // Admission validation: refuse now what no worker could ever serve
        // (panicking a worker thread instead would poison the whole pool).
        if request.k == 0 || !self.shared.world.read().can_serve(request.algorithm) {
            counts.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Unservable);
        }
        let (queued, ticket) = Queued::new(request);
        match self.shared.queue.submit(queued, self.shared.policy) {
            Admission::Enqueued => {
                counts.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Admission::EnqueuedAfterShed(victim) => {
                counts.accepted.fetch_add(1, Ordering::Relaxed);
                counts.shed.fetch_add(1, Ordering::Relaxed);
                victim.fail(ServeError::Shed);
                Ok(ticket)
            }
            Admission::Rejected(unadmitted) => {
                counts.rejected.fetch_add(1, Ordering::Relaxed);
                // The drop resolves the never-handed-out ticket (Lost).
                drop(unadmitted);
                Err(ServeError::QueueFull)
            }
            Admission::Closed(unadmitted) => {
                counts.rejected.fetch_add(1, Ordering::Relaxed);
                drop(unadmitted);
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Replaces the point set (and the point-set-derived precomputed
    /// structures, which are stale by construction) and sweeps the shared
    /// result cache, all under the world write lock: in-flight micro-batches
    /// finish first, and no batch started after the swap can see the old
    /// points or a stale cached answer.
    pub fn swap_points(
        &self,
        points: Arc<dyn PointsOnNodes + Send + Sync>,
        materialized: Option<Arc<MaterializedKnn>>,
        hub_labels: Option<Arc<dyn HubLabelRknn + Send + Sync>>,
    ) {
        let mut world = self.shared.world.write();
        world.points = points;
        world.materialized = materialized;
        world.hub_labels = hub_labels;
        if let Some(cache) = &self.shared.cache {
            cache.invalidate_all();
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.metrics.len()
    }

    /// Requests currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// A point-in-time snapshot of counters, latency histograms and the
    /// cache / I/O rollups. Cheap enough to poll: five atomic loads plus one
    /// short mutex hold per worker.
    pub fn stats(&self) -> ServerStats {
        let counts = &self.shared.counts;
        let mut queue_wait = LatencyHistogram::new();
        let mut service = LatencyHistogram::new();
        let mut micro_batches = 0;
        for metrics in &self.shared.metrics {
            let m = metrics.lock();
            queue_wait.merge(&m.queue_wait);
            service.merge(&m.service);
            micro_batches += m.micro_batches;
        }
        let per_algorithm = Algorithm::ALL
            .iter()
            .map(|&a| (a, counts.per_algorithm[algorithm_index(a)].load(Ordering::Relaxed)))
            .collect();
        ServerStats {
            submitted: counts.submitted.load(Ordering::Relaxed),
            accepted: counts.accepted.load(Ordering::Relaxed),
            rejected: counts.rejected.load(Ordering::Relaxed),
            shed: counts.shed.load(Ordering::Relaxed),
            completed: counts.completed.load(Ordering::Relaxed),
            per_algorithm,
            queue_depth: self.shared.queue.len(),
            micro_batches,
            queue_wait,
            service,
            cache: self.shared.cache.as_ref().map(|c| c.stats()).unwrap_or_default(),
            io: self.shared.io.as_ref().map(|c| c.snapshot()).unwrap_or_default(),
        }
    }

    /// Stops admission through a shared handle, without waiting: subsequent
    /// submissions (and submitters blocked on a full queue) fail with
    /// [`ServeError::ShuttingDown`], while the workers keep draining what
    /// was already accepted. Follow with [`Server::shutdown`] (or drop the
    /// server) to join the workers. Idempotent — this is how a signal
    /// handler or deadline thread initiates shutdown while other threads
    /// still hold the server.
    pub fn close(&self) {
        self.shared.queue.close();
    }

    /// Graceful shutdown: stops admission, lets the workers drain every
    /// queued request, joins them, and returns the final stats. Every
    /// accepted request is completed (or shed) before this returns; blocked
    /// submitters wake with [`ServeError::ShuttingDown`].
    pub fn shutdown(mut self) -> ServerStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    /// Dropping a running server performs the same graceful
    /// drain-then-join as [`Server::shutdown`] (which has already emptied
    /// `workers` when it was called first).
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers())
            .field("queue_depth", &self.queue_depth())
            .field("policy", &self.shared.policy)
            .field("micro_batch", &self.shared.micro_batch)
            .field("result_cache", &self.shared.cache.is_some())
            .finish()
    }
}

/// One worker: pop a micro-batch, snapshot the world, serve, repeat until
/// the queue is closed and drained.
fn worker_loop(shared: &Shared, worker_id: usize) {
    let mut scratch = Scratch::new();
    let mut batch: Vec<Queued> = Vec::with_capacity(shared.micro_batch);
    loop {
        batch.clear();
        shared.queue.pop_batch(&mut batch, shared.micro_batch);
        if batch.is_empty() {
            break; // closed and drained
        }
        // The read lock is held for the whole micro-batch: this is what
        // lets swap_points guarantee no stale cache insert after its sweep.
        let world = shared.world.read();
        let mut engine = world.engine_view();
        if let Some(cache) = &shared.cache {
            engine = engine.with_shared_result_cache(cache);
        }
        if let Some(io) = &shared.io {
            engine = engine.with_io_counters(io);
        }
        // Latencies are recorded into batch-local histograms and folded
        // into the shared metrics in one short lock hold at the end, so a
        // `stats()` poll never waits for an in-flight query.
        let mut queue_wait_hist = LatencyHistogram::new();
        let mut service_hist = LatencyHistogram::new();
        for queued in batch.drain(..) {
            let start = Instant::now();
            let queue_wait = start.duration_since(queued.request.submit_instant);
            // Re-check serveability at dequeue: a swap_points() between
            // admission and now may have dropped the precomputed structure
            // this request needs — fail its ticket instead of letting the
            // engine panic (which would kill the worker for good).
            if !world.can_serve(queued.request.algorithm) {
                shared.counts.rejected.fetch_add(1, Ordering::Relaxed);
                queued.fail(ServeError::Unservable);
                continue;
            }
            if shared.policy == BackpressurePolicy::Shed
                && queued.request.deadline.is_some_and(|d| d <= start)
            {
                shared.counts.shed.fetch_add(1, Ordering::Relaxed);
                queued.fail(ServeError::Shed);
                continue;
            }
            let outcome = engine.run(&queued.request.spec(), &mut scratch);
            let service_time = start.elapsed();
            queue_wait_hist.record(queue_wait);
            service_hist.record(service_time);
            shared.counts.completed.fetch_add(1, Ordering::Relaxed);
            shared.counts.per_algorithm[algorithm_index(queued.request.algorithm)]
                .fetch_add(1, Ordering::Relaxed);
            queued.complete(ServedQuery { outcome, queue_wait, service_time, worker: worker_id });
        }
        let mut metrics = shared.metrics[worker_id].lock();
        metrics.micro_batches += 1;
        metrics.queue_wait.merge(&queue_wait_hist);
        metrics.service.merge(&service_hist);
    }
    // Fold this worker's per-thread I/O into the retired total, exactly as
    // the batch engine's workers do (ThreadIds are never reused).
    if let Some(io) = &shared.io {
        io.retire_current_thread();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_core::{run_rknn, Precomputed};
    use rnn_graph::{Graph, GraphBuilder, NodeId, NodePointSet};
    use std::time::Duration;

    fn grid(side: usize) -> Graph {
        let mut b = GraphBuilder::new(side * side);
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    b.add_edge(v, v + 1, 1.0 + ((v * 7 % 5) as f64) * 0.25).unwrap();
                }
                if r + 1 < side {
                    b.add_edge(v, v + side, 1.0 + ((v * 11 % 7) as f64) * 0.25).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    fn world(side: usize, step: usize) -> (Arc<Graph>, Arc<NodePointSet>, World) {
        let graph = Arc::new(grid(side));
        let n = side * side;
        let points = Arc::new(NodePointSet::from_nodes(n, (0..n).step_by(step).map(NodeId::new)));
        let w = World::new(graph.clone(), points.clone());
        (graph, points, w)
    }

    #[test]
    fn serves_requests_and_matches_the_direct_call() {
        let (graph, points, world) = world(9, 7);
        let server = Server::start(world, ServerConfig::default().with_workers(2));
        assert_eq!(server.workers(), 2);
        assert!(format!("{server:?}").contains("Server"));

        let tickets: Vec<Ticket> = (0..81)
            .map(|q| server.submit(Request::new(Algorithm::Eager, NodeId::new(q), 2)).unwrap())
            .collect();
        for (q, ticket) in tickets.into_iter().enumerate() {
            let served = ticket.wait().expect("served");
            let direct = run_rknn(
                Algorithm::Eager,
                &*graph,
                &*points,
                Precomputed::none(),
                NodeId::new(q),
                2,
            );
            assert_eq!(served.outcome, direct, "query {q}");
            assert!(served.worker < 2);
        }
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 81);
        assert_eq!(stats.completed, 81);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.accounted(), stats.submitted);
        assert_eq!(stats.algorithm_count(Algorithm::Eager), 81);
        assert_eq!(stats.algorithm_count(Algorithm::Lazy), 0);
        assert_eq!(stats.queue_wait.count(), 81);
        assert_eq!(stats.service.count(), 81);
        assert!(stats.micro_batches >= 1);
        assert!(stats.service.max() > Duration::ZERO);
    }

    #[test]
    fn admission_rejects_unservable_requests_instead_of_panicking_workers() {
        let (_, _, world) = world(5, 3);
        let server = Server::start(world, ServerConfig::default().with_workers(1));
        // k == 0 and algorithms whose precomputed structures are missing.
        let zero_k = server.submit(Request::new(Algorithm::Eager, NodeId::new(0), 0));
        assert_eq!(zero_k.err(), Some(ServeError::Unservable));
        let no_table = server.submit(Request::new(Algorithm::EagerMaterialized, NodeId::new(0), 1));
        assert_eq!(no_table.err(), Some(ServeError::Unservable));
        let no_labels = server.submit(Request::new(Algorithm::HubLabel, NodeId::new(0), 1));
        assert_eq!(no_labels.err(), Some(ServeError::Unservable));
        let ok = server.submit(Request::new(Algorithm::Naive, NodeId::new(0), 1)).unwrap();
        assert!(ok.wait().is_ok());
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.rejected, 3);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.accounted(), stats.submitted);
    }

    #[test]
    fn submitting_after_shutdown_is_rejected() {
        let (_, _, w) = world(5, 3);
        let server = Server::start(w, ServerConfig::default().with_workers(1));
        let stats = server.stats();
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.queue_depth, 0);
        // Shutdown consumes the server; a second handle can't exist, so
        // test post-close admission through the shared queue instead: start
        // another server, close it via drop, then check the drop drained.
        let (_, _, w2) = world(5, 3);
        let server2 = Server::start(w2, ServerConfig::default().with_workers(1));
        let ticket = server2.submit(Request::new(Algorithm::Eager, NodeId::new(3), 1)).unwrap();
        drop(server2); // graceful: drains before joining
        assert!(ticket.wait().is_ok(), "drop drains accepted requests");
        server.shutdown();
    }

    #[test]
    fn per_worker_scratch_is_reused_across_requests() {
        // Not directly observable from outside the worker, but the serving
        // path goes through QueryEngine::run on a per-worker Scratch — the
        // engine's own tests pin the allocation-free property. Here we just
        // hammer one worker with repeats and check the cache-less path stays
        // correct and the latency split is recorded for every request.
        let (graph, points, world) = world(7, 5);
        let server =
            Server::start(world, ServerConfig::default().with_workers(1).with_micro_batch(4));
        let expected =
            run_rknn(Algorithm::Lazy, &*graph, &*points, Precomputed::none(), NodeId::new(10), 1);
        for _ in 0..50 {
            let served = server
                .submit(Request::new(Algorithm::Lazy, NodeId::new(10), 1))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(served.outcome, expected);
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 50);
        assert_eq!(stats.queue_wait.count(), 50);
        assert_eq!(stats.service.count(), 50);
    }

    #[test]
    fn result_cache_serves_repeats_and_swap_points_invalidates() {
        let (graph, _, _) = world(9, 7);
        let n = 81;
        let old_points = Arc::new(NodePointSet::from_nodes(n, (0..n).step_by(7).map(NodeId::new)));
        let new_points = Arc::new(NodePointSet::from_nodes(n, (0..n).step_by(13).map(NodeId::new)));
        let w = World::new(graph.clone(), old_points.clone());
        let server =
            Server::start(w, ServerConfig::default().with_workers(2).with_result_cache(64, 0));
        let request = || Request::new(Algorithm::Eager, NodeId::new(40), 2);

        let old_expected = run_rknn(
            Algorithm::Eager,
            &*graph,
            &*old_points,
            Precomputed::none(),
            NodeId::new(40),
            2,
        );
        let new_expected = run_rknn(
            Algorithm::Eager,
            &*graph,
            &*new_points,
            Precomputed::none(),
            NodeId::new(40),
            2,
        );
        assert_ne!(old_expected, new_expected, "the swap must change this answer");

        for _ in 0..10 {
            let served = server.submit(request()).unwrap().wait().unwrap();
            assert_eq!(served.outcome, old_expected);
        }
        let stats = server.stats();
        assert_eq!(stats.cache.lookups(), 10);
        assert!(stats.cache.hits >= 9, "repeats are served from the shared cache");

        // The swap sweeps the cache under the world write lock: the next
        // query computes (a miss) and returns the *new* answer.
        server.swap_points(new_points.clone(), None, None);
        let served = server.submit(request()).unwrap().wait().unwrap();
        assert_eq!(served.outcome, new_expected, "no stale RkNN set after the swap");
        let served = server.submit(request()).unwrap().wait().unwrap();
        assert_eq!(served.outcome, new_expected);
        server.shutdown();
    }

    #[test]
    fn reject_policy_fails_fast_on_a_tiny_queue() {
        let (_, _, w) = world(9, 7);
        // One worker, queue of 1, and a pile of synchronous submissions:
        // some must be rejected, and everything accepted completes.
        let server = Server::start(
            w,
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_policy(BackpressurePolicy::Reject),
        );
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for q in 0..200 {
            match server.submit(Request::new(Algorithm::Eager, NodeId::new(q % 81), 1)) {
                Ok(t) => tickets.push(t),
                Err(ServeError::QueueFull) => rejected += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        for t in tickets {
            assert!(t.wait().is_ok(), "accepted requests always complete under Reject");
        }
        let stats = server.shutdown();
        assert_eq!(stats.rejected, rejected);
        assert_eq!(stats.completed + stats.rejected, 200);
        assert_eq!(stats.shed, 0, "Reject never drops accepted work");
        assert_eq!(stats.accounted(), stats.submitted);
    }

    #[test]
    fn conservation_holds_through_shutdown_under_load() {
        let (_, _, w) = world(9, 7);
        let server = Arc::new(Server::start(
            w,
            ServerConfig::default()
                .with_workers(2)
                .with_queue_capacity(4)
                .with_policy(BackpressurePolicy::Block),
        ));
        let submitted = Arc::new(AtomicU64::new(0));
        let sync_rejected = Arc::new(AtomicU64::new(0));
        let resolved_ok = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let server = Arc::clone(&server);
                let submitted = Arc::clone(&submitted);
                let sync_rejected = Arc::clone(&sync_rejected);
                let resolved_ok = Arc::clone(&resolved_ok);
                scope.spawn(move || {
                    for i in 0..100u32 {
                        let q = ((t * 100 + i) % 81) as usize;
                        submitted.fetch_add(1, Ordering::Relaxed);
                        match server.submit(Request::new(Algorithm::Lazy, NodeId::new(q), 1)) {
                            Ok(ticket) => {
                                if ticket.wait().is_ok() {
                                    resolved_ok.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(ServeError::ShuttingDown) => {
                                sync_rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("unexpected {other:?}"),
                        }
                    }
                });
            }
            // Shut down while submitters are still hammering: close() works
            // through the shared handle without consuming the server.
            std::thread::sleep(Duration::from_millis(30));
            server.close();
        });
        let stats = server.stats();
        assert_eq!(stats.submitted, submitted.load(Ordering::Relaxed));
        assert_eq!(
            stats.accounted(),
            stats.submitted,
            "completed + rejected + shed == submitted: no request lost"
        );
        assert_eq!(stats.completed, resolved_ok.load(Ordering::Relaxed));
        assert_eq!(stats.rejected, sync_rejected.load(Ordering::Relaxed));
        assert!(stats.completed > 0, "some requests were served before the close");
    }

    #[test]
    fn shed_policy_drops_expired_requests_and_accounts_them() {
        let (_, _, w) = world(9, 7);
        // Single worker, tiny queue: park the worker on a first slow-ish
        // request wave, then overfill with already-expired requests so both
        // shed paths (admission-time and dequeue-time) trigger.
        let server = Server::start(
            w,
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(2)
                .with_micro_batch(1)
                .with_policy(BackpressurePolicy::Shed),
        );
        let expired =
            || Request::new(Algorithm::Eager, NodeId::new(40), 1).with_deadline_in(Duration::ZERO);
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for _ in 0..50 {
            match server.submit(expired()) {
                Ok(t) => tickets.push(t),
                Err(ServeError::QueueFull) => rejected += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        let mut shed = 0u64;
        let mut completed = 0u64;
        for t in tickets {
            match t.wait() {
                Ok(_) => completed += 1,
                Err(ServeError::Shed) => shed += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.shed, shed);
        assert_eq!(stats.completed, completed);
        assert_eq!(stats.rejected, rejected);
        assert_eq!(stats.accounted(), stats.submitted);
        assert!(stats.shed > 0, "expired requests under Shed must actually be dropped");
    }
}

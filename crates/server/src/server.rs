//! The serving lifecycle: worker pool, admission, world swaps, shutdown.
//!
//! A [`Server`] is the first component in this workspace with a *lifecycle*
//! rather than a pure function signature: [`Server::start`] spawns N
//! long-lived worker threads, a steady state serves an open-ended request
//! stream, and [`Server::shutdown`] drains the queue and joins the workers.
//!
//! The data flow per request:
//!
//! ```text
//! submit() ──admission──▶ RequestQueue ──micro-batch──▶ worker ──▶ Ticket
//!    │                    (per-class,                     │
//!    │                     EDF under Shed)                └── QueryEngine
//!    └── Err(QueueFull / ShuttingDown / Unservable)           view over the
//!        (synchronous rejection)                              current World
//! ```
//!
//! Each worker owns a [`Scratch`] arena (steady-state queries are
//! allocation-free, exactly as in the batch engine) and drains the queue in
//! micro-batches of up to B requests per wakeup — interactive before batch
//! class, earliest-deadline-first under `Shed`. All workers share one
//! [`SharedResultCache`] and — when the world is a `PagedGraph` — one striped
//! buffer pool and one set of lock-free I/O counters, so the serving path
//! reuses every concurrency layer built underneath it.
//!
//! **World swaps.** The topology and precomputed structures live in a
//! [`World`] behind an RwLock. A worker holds the *read* lock for the
//! duration of one micro-batch; [`Server::swap_points`] takes the *write*
//! lock, installs the new point set and sweeps the result cache before
//! releasing. The lock order makes the swap airtight: no in-flight batch can
//! insert a stale answer after the sweep, because the sweep does not start
//! until every in-flight batch has finished, and every later batch sees the
//! new world.
//!
//! **Accounting.** Every submitted request lands in exactly one of
//! `rejected` (synchronous), `completed`, or `shed` (asynchronous, via its
//! ticket): `completed + rejected + shed == submitted` holds at quiescence,
//! per priority class — the shutdown-under-load test pins it down. Requests
//! shed at *dequeue* still record their queue wait (a histogram that only
//! counted survivors would look healthiest exactly when the server drowns),
//! and `queue_wait.count() == completed + shed_at_dequeue` per class.
//!
//! **Stats are wait-free.** Workers publish their latency histograms
//! through a per-worker seqlock snapshot ([`crate::stats`]); a
//! [`Server::stats`] poll never takes a lock a worker might hold.

use crate::queue::{Admission, BackpressurePolicy, RequestQueue};
use crate::request::{Priority, Queued, Request, ServeError, ServedQuery, Ticket};
use crate::stats::{algorithm_index, ClassStats, PublishedMetrics, ServerStats, WorkerMetrics};
use crate::telemetry::{Telemetry, TelemetryConfig};
use parking_lot::RwLock;
use rnn_core::engine::QueryEngine;
use rnn_core::{Algorithm, HubLabelRknn, MaterializedKnn, Scratch, SharedResultCache};
use rnn_graph::{NodeId, PointsOnNodes, Topology};
use rnn_index::HubLabelIndex;
use rnn_obs::{
    Drained, EventKind, FlightRecorder, LatencyHistogram, MetricsRegistry, SloEngine,
    SloTransition, SlowQueryLog, SlowQueryReport, TraceRecorder,
};
use rnn_storage::{EvictionPolicy, IoCounters, StorageControl};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One point mutation of a delta-shaped swap (see
/// [`Server::swap_points_delta`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PointUpdate {
    /// Place a point on this (currently unoccupied) node.
    Insert(NodeId),
    /// Remove the point on this node, if any.
    Remove(NodeId),
}

/// The graph, point set and precomputed structures a server answers from —
/// everything a [`QueryEngine`] view borrows, owned behind `Arc`s so worker
/// threads outlive any one caller's stack frame.
pub struct World {
    topo: Arc<dyn Topology + Send + Sync>,
    points: Arc<dyn PointsOnNodes + Send + Sync>,
    materialized: Option<Arc<MaterializedKnn>>,
    hub_labels: Option<Arc<dyn HubLabelRknn + Send + Sync>>,
    /// The concrete hub-label index, when the world was built with
    /// [`World::with_hub_label_index`] — what [`Server::swap_points_delta`]
    /// maintains incrementally (the type-erased `hub_labels` handle cannot
    /// be mutated through the trait).
    hub_index: Option<Arc<HubLabelIndex>>,
    /// Runtime-tuning handle of the paged storage behind `topo`, when the
    /// world is disk-resident ([`World::with_storage_control`]): lets the
    /// server apply [`ServerConfig`]'s eviction-policy / prefetch knobs and
    /// export the buffer's policy + prefetch telemetry. Point swaps never
    /// touch it — the topology (and its storage) outlives point churn.
    storage: Option<Arc<dyn StorageControl>>,
}

impl World {
    /// A world of a topology and point set, with no precomputed structures
    /// (algorithms that need them are turned away as
    /// [`ServeError::Unservable`]).
    pub fn new(
        topo: Arc<dyn Topology + Send + Sync>,
        points: Arc<dyn PointsOnNodes + Send + Sync>,
    ) -> Self {
        World { topo, points, materialized: None, hub_labels: None, hub_index: None, storage: None }
    }

    /// Attaches the storage-control handle of a paged topology (typically
    /// the same `Arc<PagedGraph<_>>` passed as `topo`, re-cast): the server
    /// then applies [`ServerConfig::with_eviction_policy`] /
    /// [`ServerConfig::with_prefetch`] at startup and exports the buffer
    /// pool's policy and prefetch counters through its metrics source.
    pub fn with_storage_control(mut self, storage: Arc<dyn StorageControl>) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Attaches a materialized k-NN table (admits
    /// [`Algorithm::EagerMaterialized`] requests).
    pub fn with_materialized(mut self, table: Arc<MaterializedKnn>) -> Self {
        self.materialized = Some(table);
        self
    }

    /// Attaches a hub-label index (admits [`Algorithm::HubLabel`] requests).
    ///
    /// For an index the server can also maintain *incrementally* under
    /// point churn, attach the concrete type via
    /// [`World::with_hub_label_index`] instead.
    pub fn with_hub_labels(mut self, index: Arc<dyn HubLabelRknn + Send + Sync>) -> Self {
        self.hub_labels = Some(index);
        self
    }

    /// Attaches a concrete [`HubLabelIndex`] (admits
    /// [`Algorithm::HubLabel`] requests) and keeps hold of the concrete
    /// handle so [`Server::swap_points_delta`] can update its point table
    /// in place instead of requiring a full rebuild per swap.
    pub fn with_hub_label_index(mut self, index: Arc<HubLabelIndex>) -> Self {
        self.hub_labels = Some(Arc::clone(&index) as Arc<dyn HubLabelRknn + Send + Sync>);
        self.hub_index = Some(index);
        self
    }

    /// Builds the engine view every worker uses for one micro-batch.
    fn engine_view(&self) -> QueryEngine<'_> {
        let mut engine = QueryEngine::from_dyn(&*self.topo, &*self.points);
        if let Some(table) = &self.materialized {
            engine = engine.with_materialized(table);
        }
        if let Some(index) = &self.hub_labels {
            engine = engine.with_hub_labels(&**index);
        }
        engine
    }

    /// `true` if the current precomputed structures can serve `algorithm`.
    fn can_serve(&self, algorithm: Algorithm) -> bool {
        (!algorithm.needs_materialization() || self.materialized.is_some())
            && (!algorithm.needs_hub_labels() || self.hub_labels.is_some())
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("num_nodes", &self.topo.num_nodes())
            .field("num_points", &self.points.num_points())
            .field("materialized", &self.materialized.is_some())
            .field("hub_labels", &self.hub_labels.is_some())
            .field("hub_index", &self.hub_index.is_some())
            .field("storage", &self.storage.is_some())
            .finish()
    }
}

/// Server sizing and policy — the engine config the constructor consumes.
#[derive(Copy, Clone, Debug)]
pub struct ServerConfig {
    /// Number of worker threads (at least 1).
    pub workers: usize,
    /// Request-queue capacity (at least 1), shared across priority classes.
    pub queue_capacity: usize,
    /// Maximum requests a worker takes per wakeup (at least 1). Micro-
    /// batching amortizes lock acquisitions and condvar wakeups when the
    /// queue runs deep; it never waits for a full batch, so it adds no
    /// latency when the queue is shallow.
    pub micro_batch: usize,
    /// What to do with a new request when the queue is full.
    pub policy: BackpressurePolicy,
    /// After this many consecutive interactive pops with batch work
    /// waiting, one batch pop is forced — the bound that keeps a saturating
    /// interactive stream from starving the batch class forever. `0`
    /// disables the bound (strict priority).
    pub starvation_ratio: u64,
    /// Result-cache entries shared by all workers (0 disables caching).
    pub cache_capacity: usize,
    /// Result-cache shards (0 means one per worker, the rule of thumb).
    pub cache_shards: usize,
    /// Per-query phase tracing on the serving path. Off by default; when
    /// on, every served query produces a [`rnn_obs::QueryTrace`] that is
    /// folded into the registry's `algorithm x phase` aggregates (under
    /// [`Server::start_observed`]) and offered to the slow-query log.
    pub tracing: bool,
    /// Worst-N capacity of the slow-query log (0 disables worst capture).
    pub slow_worst: usize,
    /// Uniform-sample rate of the slow-query log: one trace per this many
    /// arrivals on average (0 disables sampling).
    pub slow_sample_every: u64,
    /// Sample-ring capacity of the slow-query log.
    pub slow_samples: usize,
    /// Seed of the slow-query log's deterministic sampler.
    pub slow_seed: u64,
    /// Page-eviction policy to apply to the world's paged storage at
    /// startup (requires [`World::with_storage_control`]). `None` leaves
    /// the backend's current policy — the paper-exact LRU by default.
    pub eviction_policy: Option<EvictionPolicy>,
    /// Expansion-frontier prefetch on the paged storage: `Some(true)` /
    /// `Some(false)` set it at startup (requires
    /// [`World::with_storage_control`]), `None` leaves the backend as
    /// built. Prefetch is speculation-only — it never changes results or
    /// demand I/O accounting.
    pub prefetch: Option<bool>,
}

impl Default for ServerConfig {
    /// Two workers, a 1024-deep queue, micro-batches of 8, blocking
    /// admission, a starvation ratio of 4, no result cache.
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 1024,
            micro_batch: 8,
            policy: BackpressurePolicy::Block,
            starvation_ratio: 4,
            cache_capacity: 0,
            cache_shards: 0,
            tracing: false,
            slow_worst: 0,
            slow_sample_every: 0,
            slow_samples: 0,
            slow_seed: 0,
            eviction_policy: None,
            prefetch: None,
        }
    }
}

impl ServerConfig {
    /// Sets the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the queue capacity (clamped to at least 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the micro-batch size (clamped to at least 1).
    pub fn with_micro_batch(mut self, micro_batch: usize) -> Self {
        self.micro_batch = micro_batch.max(1);
        self
    }

    /// Sets the backpressure policy.
    pub fn with_policy(mut self, policy: BackpressurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the batch-starvation bound (see
    /// [`ServerConfig::starvation_ratio`]; `0` = strict priority).
    pub fn with_starvation_ratio(mut self, ratio: u64) -> Self {
        self.starvation_ratio = ratio;
        self
    }

    /// Enables the shared result cache: `capacity` entries over `shards`
    /// independently locked shards (0 shards = one per worker).
    pub fn with_result_cache(mut self, capacity: usize, shards: usize) -> Self {
        self.cache_capacity = capacity;
        self.cache_shards = shards;
        self
    }

    /// Enables or disables per-query phase tracing on the serving path.
    pub fn with_tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Enables the slow-query log: keep the `worst` slowest traces plus a
    /// deterministic 1-in-`sample_every` uniform sample (ring of `samples`
    /// traces, seeded by `seed`). The log consumes traces, so this also
    /// turns tracing on.
    pub fn with_slow_query_log(
        mut self,
        worst: usize,
        sample_every: u64,
        samples: usize,
        seed: u64,
    ) -> Self {
        self.slow_worst = worst;
        self.slow_sample_every = sample_every;
        self.slow_samples = samples;
        self.slow_seed = seed;
        self.tracing = true;
        self
    }

    /// Sets the page-eviction policy to apply to the world's paged storage
    /// at startup (no-op for in-memory worlds).
    pub fn with_eviction_policy(mut self, policy: EvictionPolicy) -> Self {
        self.eviction_policy = Some(policy);
        self
    }

    /// Enables or disables expansion-frontier prefetch on the world's paged
    /// storage at startup (no-op for in-memory worlds).
    pub fn with_prefetch(mut self, enabled: bool) -> Self {
        self.prefetch = Some(enabled);
        self
    }
}

/// One priority class's admission / completion counters.
struct ClassCounts {
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    shed_at_dequeue: AtomicU64,
    completed: AtomicU64,
}

impl ClassCounts {
    fn new() -> Self {
        ClassCounts {
            submitted: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            shed_at_dequeue: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        }
    }
}

/// Cumulative per-class counters plus per-algorithm serve counts (indexed
/// in [`Algorithm::ALL`] order). Global totals are derived by summing the
/// classes, so the two levels can never disagree.
struct Counts {
    classes: [ClassCounts; Priority::ALL.len()],
    per_algorithm: [AtomicU64; Algorithm::ALL.len()],
}

impl Counts {
    fn new() -> Self {
        Counts {
            classes: std::array::from_fn(|_| ClassCounts::new()),
            per_algorithm: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn class(&self, priority: Priority) -> &ClassCounts {
        &self.classes[priority.index()]
    }
}

/// Everything the workers and the handle share.
struct Shared {
    queue: RequestQueue,
    micro_batch: usize,
    world: RwLock<World>,
    cache: Option<SharedResultCache>,
    io: Option<IoCounters>,
    counts: Counts,
    metrics: Vec<PublishedMetrics>,
    /// Per-query phase tracing: workers enable the engine's tracer and
    /// harvest one trace per served query.
    tracing: bool,
    /// Pre-resolved `algorithm x phase` registry handles (present only
    /// under [`Server::start_observed`] with tracing on).
    recorder: Option<TraceRecorder>,
    /// Worst-N + uniform-sample trace capture, drained through
    /// [`Server::drain_slow_queries`].
    slow_log: Option<SlowQueryLog>,
    /// The time-aware half of the observability stack — windowed
    /// instruments, SLO engine and flight recorder (present only under
    /// [`Server::start_with_telemetry`]).
    telemetry: Option<Telemetry>,
    /// When the server started: the zero point of every
    /// [`rnn_obs::QueryTrace::start_nanos`] stamp and flight-recorder event
    /// timestamp, so one serving run shares one trace timeline.
    started: Instant,
}

impl Shared {
    /// Nanoseconds since the server started — the shared timeline of trace
    /// `start_nanos` stamps and flight-recorder event timestamps.
    fn nanos_since_start(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Resolves one admission decision into the caller-visible result,
    /// updating the submitter's (and, for an evicted victim, the victim's)
    /// class counters. Shared by [`Server::submit`] and
    /// [`Server::submit_all`] so batched accounting is identical to N
    /// single submits by construction.
    fn resolve_admission(
        &self,
        priority: Priority,
        admission: Admission,
        ticket: Ticket,
    ) -> Result<Ticket, ServeError> {
        let class = self.counts.class(priority);
        match admission {
            Admission::Enqueued => {
                class.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Admission::EnqueuedAfterShed(victim) => {
                class.accepted.fetch_add(1, Ordering::Relaxed);
                // The victim is shed against *its* class, not the
                // submitter's.
                let victim_class = victim.request.priority;
                self.counts.class(victim_class).shed.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &self.telemetry {
                    t.on_dropped(victim_class, true, self.nanos_since_start());
                }
                victim.fail(ServeError::Shed);
                Ok(ticket)
            }
            Admission::ShedNewcomer(newcomer) => {
                // The request arrived already expired at the full edge: it
                // was never enqueued, and resolves through its ticket like
                // every other shed.
                class.shed.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &self.telemetry {
                    t.on_dropped(priority, true, self.nanos_since_start());
                }
                newcomer.fail(ServeError::Shed);
                Ok(ticket)
            }
            Admission::Rejected(unadmitted) => {
                class.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &self.telemetry {
                    t.on_dropped(priority, false, self.nanos_since_start());
                }
                // The drop resolves the never-handed-out ticket (Lost).
                drop(unadmitted);
                Err(ServeError::QueueFull)
            }
            Admission::Closed(unadmitted) => {
                class.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &self.telemetry {
                    t.on_dropped(priority, false, self.nanos_since_start());
                }
                drop(unadmitted);
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// The stats assembly behind [`Server::stats`], on `Shared` so a
    /// registered metrics source (which holds an `Arc<Shared>`, not the
    /// `Server` handle) polls the identical snapshot.
    fn stats_snapshot(&self) -> ServerStats {
        // Read order matters for snapshot consistency: histograms FIRST
        // (Acquire, through each worker's seqlock), admission counters
        // after. A worker bumps its class counters *before* publishing the
        // matching histogram entries (Release store on the version), so
        // every latency sample visible below is already reflected in the
        // counter values read afterwards — a poll can under-report
        // latencies relative to the counters, never over-report
        // (`queue_wait.count() <= completed + shed_at_dequeue` holds in
        // every snapshot, not just at quiescence).
        let mut micro_batches = 0;
        let mut class_latencies: Vec<(LatencyHistogram, LatencyHistogram)> = Priority::ALL
            .iter()
            .map(|_| (LatencyHistogram::new(), LatencyHistogram::new()))
            .collect();
        for published in &self.metrics {
            let m = published.read();
            micro_batches += m.micro_batches;
            for (slot, latencies) in class_latencies.iter_mut().zip(&m.classes) {
                slot.0.merge(&latencies.queue_wait);
                slot.1.merge(&latencies.service);
            }
        }
        let counts = &self.counts;
        let per_class: Vec<(Priority, ClassStats)> = Priority::ALL
            .iter()
            .zip(class_latencies)
            .map(|(&p, (queue_wait, service))| {
                let c = counts.class(p);
                (
                    p,
                    ClassStats {
                        submitted: c.submitted.load(Ordering::Relaxed),
                        accepted: c.accepted.load(Ordering::Relaxed),
                        rejected: c.rejected.load(Ordering::Relaxed),
                        shed: c.shed.load(Ordering::Relaxed),
                        shed_at_dequeue: c.shed_at_dequeue.load(Ordering::Relaxed),
                        completed: c.completed.load(Ordering::Relaxed),
                        queue_wait,
                        service,
                    },
                )
            })
            .collect();
        let mut queue_wait = LatencyHistogram::new();
        let mut service = LatencyHistogram::new();
        let mut totals = ClassStats::default();
        for (_, class) in &per_class {
            queue_wait.merge(&class.queue_wait);
            service.merge(&class.service);
            totals.submitted += class.submitted;
            totals.accepted += class.accepted;
            totals.rejected += class.rejected;
            totals.shed += class.shed;
            totals.shed_at_dequeue += class.shed_at_dequeue;
            totals.completed += class.completed;
        }
        let per_algorithm = Algorithm::ALL
            .iter()
            .map(|&a| (a, counts.per_algorithm[algorithm_index(a)].load(Ordering::Relaxed)))
            .collect();
        ServerStats {
            submitted: totals.submitted,
            accepted: totals.accepted,
            rejected: totals.rejected,
            shed: totals.shed,
            shed_at_dequeue: totals.shed_at_dequeue,
            completed: totals.completed,
            per_algorithm,
            per_class,
            queue_depth: self.queue.len(),
            micro_batches,
            queue_wait,
            service,
            cache: self.cache.as_ref().map(|c| c.stats()).unwrap_or_default(),
            io: self.io.as_ref().map(|c| c.snapshot()).unwrap_or_default(),
        }
    }
}

/// Registers the server as one metrics source named `server`: every
/// registry snapshot polls one [`Shared::stats_snapshot`] and emits the
/// admission counters (totals and per class), per-algorithm serve counts,
/// queue depth, micro-batch count, the latency histograms, and the cache /
/// I/O rollups — all from that single wait-free poll, so the exported
/// numbers keep the snapshot's internal consistency (per-class counts sum
/// to the totals, `queue_wait.count() <= completed + shed_at_dequeue`).
///
/// When the world carries a storage-control handle
/// ([`World::with_storage_control`]), the source additionally emits the
/// buffer's eviction-policy code, whether prefetch is on, the pool-level
/// `prefetch_{issued,useful,wasted}` counters and a per-shard demand
/// hit-rate gauge — all from one [`StorageControl::pool_stats`] call. The
/// handle is captured at registration (point swaps never replace the
/// storage), so polling stays lock-free with respect to the world lock.
fn register_server_source(registry: &MetricsRegistry, shared: &Arc<Shared>) {
    let storage = shared.world.read().storage.clone();
    let shared = Arc::clone(shared);
    registry.register_source("server", move |set| {
        let s = shared.stats_snapshot();
        set.counter("rnn_server_submitted_total", s.submitted);
        set.counter("rnn_server_accepted_total", s.accepted);
        set.counter("rnn_server_rejected_total", s.rejected);
        set.counter("rnn_server_shed_total", s.shed);
        set.counter("rnn_server_shed_at_dequeue_total", s.shed_at_dequeue);
        set.counter("rnn_server_completed_total", s.completed);
        set.counter("rnn_server_micro_batches_total", s.micro_batches);
        set.gauge("rnn_server_queue_depth", s.queue_depth as u64);
        set.gauge("rnn_server_workers", shared.metrics.len() as u64);
        set.histogram("rnn_server_queue_wait_nanos", s.queue_wait.clone());
        set.histogram("rnn_server_service_nanos", s.service.clone());
        for (priority, class) in &s.per_class {
            let p = priority.name();
            set.counter(&format!("rnn_server_submitted_total{{class=\"{p}\"}}"), class.submitted);
            set.counter(&format!("rnn_server_accepted_total{{class=\"{p}\"}}"), class.accepted);
            set.counter(&format!("rnn_server_rejected_total{{class=\"{p}\"}}"), class.rejected);
            set.counter(&format!("rnn_server_shed_total{{class=\"{p}\"}}"), class.shed);
            set.counter(
                &format!("rnn_server_shed_at_dequeue_total{{class=\"{p}\"}}"),
                class.shed_at_dequeue,
            );
            set.counter(&format!("rnn_server_completed_total{{class=\"{p}\"}}"), class.completed);
            set.histogram(
                &format!("rnn_server_queue_wait_nanos{{class=\"{p}\"}}"),
                class.queue_wait.clone(),
            );
            set.histogram(
                &format!("rnn_server_service_nanos{{class=\"{p}\"}}"),
                class.service.clone(),
            );
        }
        for &(algorithm, served) in &s.per_algorithm {
            let a = algorithm.name();
            set.counter(&format!("rnn_server_served_total{{algorithm=\"{a}\"}}"), served);
        }
        set.counter("rnn_server_cache_hits_total", s.cache.hits);
        set.counter("rnn_server_cache_misses_total", s.cache.misses);
        set.counter("rnn_server_io_accesses_total", s.io.accesses);
        set.counter("rnn_server_io_faults_total", s.io.faults);
        set.counter("rnn_server_io_evictions_total", s.io.evictions);
        if let Some(storage) = &storage {
            set.gauge("rnn_server_storage_policy", storage.policy().code());
            set.gauge("rnn_server_storage_prefetch_enabled", u64::from(storage.prefetch_enabled()));
            let pool = storage.pool_stats();
            set.counter("rnn_server_storage_prefetch_issued_total", pool.total.prefetch_issued);
            set.counter("rnn_server_storage_prefetch_useful_total", pool.total.prefetch_useful);
            set.counter("rnn_server_storage_prefetch_wasted_total", pool.total.prefetch_wasted);
            for (i, shard) in pool.per_shard.iter().enumerate() {
                set.gauge(
                    &format!("rnn_server_storage_shard_hit_rate_permille{{shard=\"{i}\"}}"),
                    shard.hit_rate_permille(),
                );
            }
        }
    });
}

/// A running RkNN serving instance. See the [module docs](self) for the
/// architecture; see [`Server::submit`] / [`Ticket::wait`] for the caller
/// protocol.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool over `world`. Workers are live when this
    /// returns; requests submitted from any thread are served concurrently.
    ///
    /// To serve a disk-resident world with I/O accounting, pass the paged
    /// graph's counters via [`Server::start_with_io`].
    pub fn start(world: World, config: ServerConfig) -> Server {
        Self::start_inner(world, config, None, None, None)
    }

    /// [`Server::start`] plus I/O attribution: `counters` (e.g.
    /// `PagedGraph::counters()`) are snapshotted into [`ServerStats::io`]
    /// and retired per worker on shutdown.
    pub fn start_with_io(world: World, config: ServerConfig, counters: IoCounters) -> Server {
        Self::start_inner(world, config, Some(counters), None, None)
    }

    /// [`Server::start_with_io`] (with `io` optional) plus observability:
    /// registers the server as a pollable source of `registry` — every
    /// [`MetricsRegistry::snapshot`] then carries the admission counters,
    /// per-class latency histograms, per-algorithm serve counts and the
    /// cache / I/O rollups — and, when [`ServerConfig::tracing`] is on,
    /// folds every served query's phase trace into the registry's
    /// `algorithm x phase` aggregates.
    pub fn start_observed(
        world: World,
        config: ServerConfig,
        io: Option<IoCounters>,
        registry: &MetricsRegistry,
    ) -> Server {
        Self::start_inner(world, config, io, Some(registry), None)
    }

    /// [`Server::start_observed`] plus the time-aware telemetry stack:
    /// windowed per-class latency and admission instruments on a logical
    /// clock, an SLO engine evaluated at every epoch tick, and a flight
    /// recorder of structured serving events (admission sheds, point
    /// swaps, worker lifecycle, slow-query captures, SLO transitions —
    /// and, when the world carries a storage-control handle, buffer-pool
    /// resize / policy / clear events). See [`TelemetryConfig`] for the
    /// clock-driving options and [`Server::advance_epoch`] for the manual
    /// driver.
    pub fn start_with_telemetry(
        world: World,
        config: ServerConfig,
        telemetry: TelemetryConfig,
        io: Option<IoCounters>,
        registry: &MetricsRegistry,
    ) -> Server {
        Self::start_inner(world, config, io, Some(registry), Some(telemetry))
    }

    fn start_inner(
        world: World,
        config: ServerConfig,
        io: Option<IoCounters>,
        registry: Option<&MetricsRegistry>,
        telemetry: Option<TelemetryConfig>,
    ) -> Server {
        // Apply the storage knobs before any worker can fetch a page, so the
        // whole serving lifetime runs under one policy/prefetch setting.
        if let Some(storage) = &world.storage {
            if let Some(policy) = config.eviction_policy {
                storage.set_policy(policy);
            }
            if let Some(prefetch) = config.prefetch {
                storage.set_prefetch(prefetch);
            }
        }
        let workers = config.workers.max(1);
        let cache = (config.cache_capacity > 0).then(|| {
            let shards = if config.cache_shards == 0 { workers } else { config.cache_shards };
            SharedResultCache::new(config.cache_capacity, shards)
        });
        let recorder = match registry {
            Some(registry) if config.tracing => {
                let names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
                Some(TraceRecorder::new(registry, &names))
            }
            _ => None,
        };
        let slow_log = (config.tracing
            && (config.slow_worst > 0
                || (config.slow_sample_every > 0 && config.slow_samples > 0)))
            .then(|| {
                SlowQueryLog::new(
                    config.slow_worst,
                    config.slow_sample_every,
                    config.slow_samples,
                    config.slow_seed,
                )
            });
        let telemetry = match (telemetry, registry) {
            (Some(t), Some(registry)) => Some(Telemetry::new(t, registry)),
            _ => None,
        };
        // Hand the flight recorder to the storage layer's control paths, so
        // runtime resize / policy / clear actions land on the same event
        // timeline as the serving events.
        if let (Some(t), Some(storage)) = (&telemetry, &world.storage) {
            if let Some(events) = t.recorder() {
                storage.set_event_sink(events);
            }
        }
        let shared = Arc::new(Shared {
            queue: RequestQueue::new(
                config.queue_capacity.max(1),
                config.policy,
                config.starvation_ratio,
            ),
            micro_batch: config.micro_batch.max(1),
            world: RwLock::new(world),
            cache,
            io,
            counts: Counts::new(),
            metrics: (0..workers).map(|_| PublishedMetrics::new()).collect(),
            tracing: config.tracing,
            recorder,
            slow_log,
            telemetry,
            started: Instant::now(),
        });
        if let Some(registry) = registry {
            register_server_source(registry, &shared);
        }
        let handles = (0..workers)
            .map(|worker_id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rnn-server-worker-{worker_id}"))
                    .spawn(move || worker_loop(&shared, worker_id))
                    .expect("spawn server worker")
            })
            .collect();
        Server { shared, workers: handles }
    }

    /// Submits one request.
    ///
    /// Returns a [`Ticket`] when the request was admitted — the ticket
    /// resolves to the served result, to [`ServeError::Shed`] if the `Shed`
    /// policy drops it past its deadline (at the full-queue edge, or at
    /// dequeue), or to [`ServeError::Unservable`] if a
    /// [`Server::swap_points`] removed the precomputed structure it needs
    /// before a worker reached it. Synchronous errors mean the request
    /// never entered the queue: [`ServeError::Unservable`] (failed
    /// admission validation), [`ServeError::QueueFull`], or
    /// [`ServeError::ShuttingDown`].
    pub fn submit(&self, request: Request) -> Result<Ticket, ServeError> {
        let class = self.shared.counts.class(request.priority);
        class.submitted.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.shared.telemetry {
            t.on_arrival(request.priority);
        }
        // Admission validation: refuse now what no worker could ever serve
        // (panicking a worker thread instead would poison the whole pool).
        if request.k == 0 || !self.shared.world.read().can_serve(request.algorithm) {
            class.rejected.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &self.shared.telemetry {
                t.on_dropped(request.priority, false, self.shared.nanos_since_start());
            }
            return Err(ServeError::Unservable);
        }
        let (queued, ticket) = Queued::new(request);
        let admission = self.shared.queue.submit(queued);
        self.shared.resolve_admission(request.priority, admission, ticket)
    }

    /// Submits a batch of requests under **one** queue-lock acquisition and
    /// one worker wakeup, returning one result per request in order — each
    /// exactly what [`Server::submit`] would have returned, with identical
    /// accounting. This is the cheap way to feed a workload's worth of
    /// requests (e.g. via [`Request::from_spec`]) into the server: N
    /// requests cost one lock round-trip instead of N.
    ///
    /// Under [`BackpressurePolicy::Block`], a batch larger than the free
    /// queue space parks the submitter mid-batch until workers drain room
    /// (workers are woken for the already-enqueued prefix first, so this
    /// cannot deadlock).
    pub fn submit_all(&self, requests: &[Request]) -> Vec<Result<Ticket, ServeError>> {
        let counts = &self.shared.counts;
        let mut results: Vec<Option<Result<Ticket, ServeError>>> =
            Vec::with_capacity(requests.len());
        let mut batch: Vec<Queued> = Vec::with_capacity(requests.len());
        let mut admitted_slots: Vec<(usize, Ticket)> = Vec::with_capacity(requests.len());
        {
            // One world read lock validates the whole batch.
            let world = self.shared.world.read();
            for (slot, &request) in requests.iter().enumerate() {
                let class = counts.class(request.priority);
                class.submitted.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &self.shared.telemetry {
                    t.on_arrival(request.priority);
                }
                if request.k == 0 || !world.can_serve(request.algorithm) {
                    class.rejected.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &self.shared.telemetry {
                        t.on_dropped(request.priority, false, self.shared.nanos_since_start());
                    }
                    results.push(Some(Err(ServeError::Unservable)));
                } else {
                    let (queued, ticket) = Queued::new(request);
                    batch.push(queued);
                    admitted_slots.push((slot, ticket));
                    results.push(None);
                }
            }
        }
        let admissions = self.shared.queue.submit_batch(batch);
        debug_assert_eq!(admissions.len(), admitted_slots.len());
        for ((slot, ticket), admission) in admitted_slots.into_iter().zip(admissions) {
            let outcome = self.shared.resolve_admission(requests[slot].priority, admission, ticket);
            results[slot] = Some(outcome);
        }
        results.into_iter().map(|r| r.expect("every slot resolved exactly once")).collect()
    }

    /// Replaces the point set (and the point-set-derived precomputed
    /// structures, which are stale by construction) and sweeps the shared
    /// result cache, all under the world write lock: in-flight micro-batches
    /// finish first, and no batch started after the swap can see the old
    /// points or a stale cached answer.
    pub fn swap_points(
        &self,
        points: Arc<dyn PointsOnNodes + Send + Sync>,
        materialized: Option<Arc<MaterializedKnn>>,
        hub_labels: Option<Arc<dyn HubLabelRknn + Send + Sync>>,
    ) {
        let mut world = self.shared.world.write();
        let num_points = points.num_points() as u64;
        world.points = points;
        world.materialized = materialized;
        world.hub_labels = hub_labels;
        // A wholesale swap invalidates the incrementally maintained handle:
        // the caller-provided labels are the only truth from here on. Delta
        // maintenance resumes only from a world rebuilt with
        // `with_hub_label_index`.
        world.hub_index = None;
        if let Some(cache) = &self.shared.cache {
            cache.invalidate_all();
        }
        if let Some(t) = &self.shared.telemetry {
            t.record_event(
                self.shared.nanos_since_start(),
                EventKind::PointsSwap { points: num_points, delta: false },
            );
        }
    }

    /// The delta-shaped [`Server::swap_points`]: installs the new point set
    /// and applies the point `updates` to the concrete hub-label index *in
    /// place* under the world write lock — `O(label size)` bucket splices
    /// per update (see [`HubLabelIndex::insert_point`]) instead of the
    /// `O(total label entries)` table rebuild a full swap pays. The eager
    /// k-NN materialization, when present, is still replaced wholesale.
    ///
    /// Returns `false` without touching the world when it holds no concrete
    /// index (built without [`World::with_hub_label_index`], or invalidated
    /// by a wholesale [`Server::swap_points`]) — the caller falls back to a
    /// full swap.
    ///
    /// # Panics
    ///
    /// Panics if the updates do not reconcile the index with `points`
    /// (inserting on an occupied node, or ending at a different point
    /// count) — the same contract violation a stale full swap would hide
    /// until query time.
    pub fn swap_points_delta(
        &self,
        points: Arc<dyn PointsOnNodes + Send + Sync>,
        materialized: Option<Arc<MaterializedKnn>>,
        updates: &[PointUpdate],
    ) -> bool {
        let mut guard = self.shared.world.write();
        let world = &mut *guard;
        if world.hub_index.is_none() {
            return false;
        }
        // Drop the type-erased alias first so the Arc is uniquely held and
        // `make_mut` mutates in place rather than deep-cloning the index.
        world.hub_labels = None;
        let shared_index = world.hub_index.as_mut().expect("checked above");
        let index = Arc::make_mut(shared_index);
        for &update in updates {
            match update {
                PointUpdate::Insert(node) => {
                    index.insert_point(node);
                }
                PointUpdate::Remove(node) => {
                    index.remove_point(node);
                }
            }
        }
        assert_eq!(
            index.num_points(),
            points.num_points(),
            "updates must reconcile the index with the new point set"
        );
        world.hub_labels = Some(Arc::clone(shared_index) as Arc<dyn HubLabelRknn + Send + Sync>);
        let num_points = points.num_points() as u64;
        world.points = points;
        world.materialized = materialized;
        // Sweep under the write lock, like the full swap: no in-flight
        // micro-batch can insert a stale answer after this.
        if let Some(cache) = &self.shared.cache {
            cache.invalidate_all();
        }
        if let Some(t) = &self.shared.telemetry {
            t.record_event(
                self.shared.nanos_since_start(),
                EventKind::PointsSwap { points: num_points, delta: true },
            );
        }
        true
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.metrics.len()
    }

    /// Requests currently waiting in the queue (all classes).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// `true` when the serving path traces queries (see
    /// [`ServerConfig::with_tracing`]).
    pub fn tracing(&self) -> bool {
        self.shared.tracing
    }

    /// The world's storage-control handle, when the server fronts a paged
    /// topology ([`World::with_storage_control`]) — for inspecting the
    /// buffer's policy, prefetch setting and prefetch usefulness at
    /// runtime.
    pub fn storage_control(&self) -> Option<Arc<dyn StorageControl>> {
        self.shared.world.read().storage.clone()
    }

    /// Takes everything the slow-query log captured since the last drain:
    /// the worst traces slowest-first plus the deterministic uniform
    /// samples. Empty when no log is configured
    /// ([`ServerConfig::with_slow_query_log`]).
    pub fn drain_slow_queries(&self) -> SlowQueryReport {
        self.shared.slow_log.as_ref().map(|log| log.drain()).unwrap_or_default()
    }

    /// Takes everything the flight recorder captured since the last drain
    /// (ascending sequence order, plus the count of events lost to ring
    /// lapping). Empty without telemetry
    /// ([`Server::start_with_telemetry`]). Like
    /// [`Server::drain_slow_queries`], this works on a [`Server::close`]d
    /// or [`Server::join`]ed server — drain *after* joining to be sure the
    /// worker-stop events are in.
    pub fn drain_events(&self) -> Drained {
        self.shared.telemetry.as_ref().map(|t| t.drain_events()).unwrap_or_default()
    }

    /// The flight recorder itself, when telemetry is on — for handing to
    /// other emitting layers or exporters.
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.shared.telemetry.as_ref().and_then(|t| t.recorder())
    }

    /// The current logical telemetry epoch (0 without telemetry).
    pub fn epoch(&self) -> u64 {
        self.shared.telemetry.as_ref().map(|t| t.epoch()).unwrap_or(0)
    }

    /// The SLO engine, when telemetry is on (a clone sharing state — poll
    /// [`SloEngine::state`] from anywhere).
    pub fn slo(&self) -> Option<SloEngine> {
        self.shared.telemetry.as_ref().map(|t| t.slo())
    }

    /// Manually ends the current telemetry epoch: evaluates every SLO
    /// against the epoch's traffic (appending
    /// [`rnn_obs::EventKind::SloTransition`] events), *then* advances the
    /// clock, and returns the transitions. This is the deterministic
    /// driver benchmarks and tests use; the automatic micro-batch tick
    /// ([`TelemetryConfig::with_tick_micro_batches`]) does exactly the
    /// same. Empty without telemetry.
    pub fn advance_epoch(&self) -> Vec<SloTransition> {
        self.shared.telemetry.as_ref().map(|t| t.advance_epoch()).unwrap_or_default()
    }

    /// A point-in-time snapshot of counters, latency histograms and the
    /// cache / I/O rollups. **Wait-free**: atomic loads plus one seqlock
    /// snapshot read per worker — a poll never contends with an in-flight
    /// micro-batch, so dashboards and autoscalers can hammer it.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats_snapshot()
    }

    /// Stops admission through a shared handle, without waiting: subsequent
    /// submissions (and submitters blocked on a full queue) fail with
    /// [`ServeError::ShuttingDown`], while the workers keep draining what
    /// was already accepted. Follow with [`Server::shutdown`] (or drop the
    /// server) to join the workers. Idempotent — this is how a signal
    /// handler or deadline thread initiates shutdown while other threads
    /// still hold the server.
    pub fn close(&self) {
        self.shared.queue.close();
    }

    /// Graceful shutdown: stops admission, lets the workers drain every
    /// queued request, joins them, and returns the final stats. Every
    /// accepted request is completed (or shed) before this returns; blocked
    /// submitters wake with [`ServeError::ShuttingDown`].
    pub fn shutdown(mut self) -> ServerStats {
        self.join();
        self.stats()
    }

    /// [`Server::shutdown`] without consuming the handle: stops admission,
    /// drains the queue, joins the workers — and leaves the server alive
    /// so the post-mortem drains ([`Server::drain_slow_queries`],
    /// [`Server::drain_events`]) and [`Server::stats`] still work. This is
    /// the shape a crash handler or test harness wants: quiesce first,
    /// *then* pull the flight recorder and slow-query evidence. Idempotent.
    pub fn join(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    /// Dropping a running server performs the same graceful
    /// drain-then-join as [`Server::shutdown`] (which has already emptied
    /// `workers` when it was called first).
    fn drop(&mut self) {
        self.join();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers())
            .field("queue_depth", &self.queue_depth())
            .field("policy", &self.shared.queue.policy())
            .field("micro_batch", &self.shared.micro_batch)
            .field("result_cache", &self.shared.cache.is_some())
            .field("tracing", &self.shared.tracing)
            .finish()
    }
}

/// One worker: pop a micro-batch, snapshot the world, serve, publish
/// metrics, repeat until the queue is closed and drained.
fn worker_loop(shared: &Shared, worker_id: usize) {
    let mut scratch = Scratch::new();
    let mut batch: Vec<Queued> = Vec::with_capacity(shared.micro_batch);
    // The worker's cumulative metrics live on its own stack; after every
    // micro-batch they are published wait-free through the seqlock snapshot
    // (never a lock a stats() poll could contend on).
    let mut metrics = WorkerMetrics::default();
    let mut served: u64 = 0;
    let shedding = shared.queue.policy() == BackpressurePolicy::Shed;
    if let Some(t) = &shared.telemetry {
        t.record_event(
            shared.nanos_since_start(),
            EventKind::WorkerStart { worker: worker_id as u64 },
        );
    }
    loop {
        batch.clear();
        shared.queue.pop_batch(&mut batch, shared.micro_batch);
        if batch.is_empty() {
            break; // closed and drained
        }
        // The read lock is held for the whole micro-batch: this is what
        // lets swap_points guarantee no stale cache insert after its sweep.
        let world = shared.world.read();
        let mut engine = world.engine_view().with_tracing(shared.tracing);
        if let Some(cache) = &shared.cache {
            engine = engine.with_shared_result_cache(cache);
        }
        if let Some(io) = &shared.io {
            engine = engine.with_io_counters(io);
        }
        for queued in batch.drain(..) {
            let priority = queued.request.priority;
            let class = shared.counts.class(priority);
            let latencies = &mut metrics.classes[priority.index()];
            let start = Instant::now();
            let queue_wait = start.duration_since(queued.request.submit_instant);
            // Re-check serveability at dequeue: a swap_points() between
            // admission and now may have dropped the precomputed structure
            // this request needs — fail its ticket instead of letting the
            // engine panic (which would kill the worker for good).
            if !world.can_serve(queued.request.algorithm) {
                class.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &shared.telemetry {
                    t.on_dropped(priority, false, shared.nanos_since_start());
                }
                queued.fail(ServeError::Unservable);
                continue;
            }
            if shedding && queued.request.deadline.is_some_and(|d| d <= start) {
                // A shed request waited too: drop it from the histogram and
                // overload telemetry reads healthy exactly when the queue
                // drowns (survivorship bias). Count it and record its wait.
                latencies.queue_wait.record(queue_wait);
                class.shed.fetch_add(1, Ordering::Relaxed);
                class.shed_at_dequeue.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &shared.telemetry {
                    t.on_dropped(priority, true, shared.nanos_since_start());
                }
                queued.fail(ServeError::Shed);
                continue;
            }
            let outcome = engine.run(&queued.request.spec(), &mut scratch);
            let service_time = start.elapsed();
            if shared.tracing {
                if let Some(mut trace) = scratch.tracer_mut().take_completed() {
                    // The engine stamped the compute-side split; the server
                    // adds what only it knows — the queue wait, the worker,
                    // and where the service span sits on the shared
                    // timeline.
                    trace.queue_wait_nanos =
                        u64::try_from(queue_wait.as_nanos()).unwrap_or(u64::MAX);
                    trace.worker = worker_id as u32;
                    trace.start_nanos =
                        u64::try_from(start.duration_since(shared.started).as_nanos())
                            .unwrap_or(u64::MAX);
                    if let Some(recorder) = &shared.recorder {
                        recorder.record(algorithm_index(queued.request.algorithm), &trace);
                    }
                    if let Some(log) = &shared.slow_log {
                        let captured = log.observe(&trace);
                        if captured {
                            if let Some(t) = &shared.telemetry {
                                t.record_event(
                                    trace.start_nanos,
                                    EventKind::SlowQuery {
                                        query: trace.query,
                                        service_nanos: trace.service_nanos,
                                        algorithm: algorithm_index(queued.request.algorithm) as u64,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            latencies.queue_wait.record(queue_wait);
            latencies.service.record(service_time);
            class.completed.fetch_add(1, Ordering::Relaxed);
            served += 1;
            if let Some(t) = &shared.telemetry {
                t.on_completed(priority, queue_wait + service_time);
            }
            shared.counts.per_algorithm[algorithm_index(queued.request.algorithm)]
                .fetch_add(1, Ordering::Relaxed);
            queued.complete(ServedQuery { outcome, queue_wait, service_time, worker: worker_id });
        }
        metrics.micro_batches += 1;
        shared.metrics[worker_id].publish(&metrics);
        // The automatic clock driver: the worker that completes the Nth
        // micro-batch evaluates the SLOs and advances the epoch.
        if let Some(t) = &shared.telemetry {
            t.on_micro_batch();
        }
    }
    // Fold this worker's per-thread I/O into the retired total, exactly as
    // the batch engine's workers do (ThreadIds are never reused).
    if let Some(io) = &shared.io {
        io.retire_current_thread();
    }
    if let Some(t) = &shared.telemetry {
        t.record_event(
            shared.nanos_since_start(),
            EventKind::WorkerStop { worker: worker_id as u64, served },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_core::{run_rknn, Precomputed};
    use rnn_graph::{Graph, GraphBuilder, NodeId, NodePointSet};
    use std::time::Duration;

    fn grid(side: usize) -> Graph {
        let mut b = GraphBuilder::new(side * side);
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    b.add_edge(v, v + 1, 1.0 + ((v * 7 % 5) as f64) * 0.25).unwrap();
                }
                if r + 1 < side {
                    b.add_edge(v, v + side, 1.0 + ((v * 11 % 7) as f64) * 0.25).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    fn world(side: usize, step: usize) -> (Arc<Graph>, Arc<NodePointSet>, World) {
        let graph = Arc::new(grid(side));
        let n = side * side;
        let points = Arc::new(NodePointSet::from_nodes(n, (0..n).step_by(step).map(NodeId::new)));
        let w = World::new(graph.clone(), points.clone());
        (graph, points, w)
    }

    #[test]
    fn serves_requests_and_matches_the_direct_call() {
        let (graph, points, world) = world(9, 7);
        let server = Server::start(world, ServerConfig::default().with_workers(2));
        assert_eq!(server.workers(), 2);
        assert!(format!("{server:?}").contains("Server"));

        let tickets: Vec<Ticket> = (0..81)
            .map(|q| server.submit(Request::new(Algorithm::Eager, NodeId::new(q), 2)).unwrap())
            .collect();
        for (q, ticket) in tickets.into_iter().enumerate() {
            let served = ticket.wait().expect("served");
            let direct = run_rknn(
                Algorithm::Eager,
                &*graph,
                &*points,
                Precomputed::none(),
                NodeId::new(q),
                2,
            );
            assert_eq!(served.outcome, direct, "query {q}");
            assert!(served.worker < 2);
        }
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 81);
        assert_eq!(stats.completed, 81);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.accounted(), stats.submitted);
        assert_eq!(stats.algorithm_count(Algorithm::Eager), 81);
        assert_eq!(stats.algorithm_count(Algorithm::Lazy), 0);
        assert_eq!(stats.queue_wait.count(), 81);
        assert_eq!(stats.service.count(), 81);
        assert!(stats.micro_batches >= 1);
        assert!(stats.service.max() > Duration::ZERO);
        // Default-class traffic lands in the interactive class; batch stays
        // zero everywhere.
        assert_eq!(stats.class(Priority::Interactive).completed, 81);
        assert_eq!(stats.class(Priority::Interactive).queue_wait.count(), 81);
        assert_eq!(stats.class(Priority::Batch).submitted, 0);
        assert_eq!(stats.class(Priority::Batch).service.count(), 0);
    }

    #[test]
    fn storage_control_applies_config_and_exports_prefetch_telemetry() {
        use rnn_storage::{BufferPoolConfig, LayoutStrategy, PagedGraph};
        let graph = Arc::new(grid(9));
        let n = 81;
        let points = Arc::new(NodePointSet::from_nodes(n, (0..n).step_by(5).map(NodeId::new)));
        let counters = IoCounters::new();
        let paged = Arc::new(
            PagedGraph::build_with_config(
                &graph,
                LayoutStrategy::BfsLocality,
                BufferPoolConfig::new(16).with_shards(2),
                counters.clone(),
            )
            .expect("paged graph"),
        );
        let world = World::new(paged.clone(), points.clone())
            .with_storage_control(paged as Arc<dyn StorageControl>);
        assert!(format!("{world:?}").contains("storage: true"));
        let registry = MetricsRegistry::new();
        let server = Server::start_observed(
            world,
            ServerConfig::default()
                .with_workers(2)
                .with_eviction_policy(EvictionPolicy::TwoQ)
                .with_prefetch(true),
            Some(counters),
            &registry,
        );
        let ctl = server.storage_control().expect("the world carries a storage handle");
        assert_eq!(ctl.policy(), EvictionPolicy::TwoQ, "config applied at startup");
        assert!(ctl.prefetch_enabled(), "config applied at startup");

        let tickets: Vec<Ticket> = (0..n)
            .map(|q| server.submit(Request::new(Algorithm::Lazy, NodeId::new(q), 2)).unwrap())
            .collect();
        for (q, ticket) in tickets.into_iter().enumerate() {
            let served = ticket.wait().expect("served");
            let direct = run_rknn(
                Algorithm::Lazy,
                &*graph,
                &*points,
                Precomputed::none(),
                NodeId::new(q),
                2,
            );
            assert_eq!(served.outcome, direct, "prefetch/policy must not change results");
        }

        let snap = registry.snapshot();
        assert_eq!(snap.gauge("rnn_server_storage_policy"), Some(EvictionPolicy::TwoQ.code()));
        assert_eq!(snap.gauge("rnn_server_storage_prefetch_enabled"), Some(1));
        let issued = snap.counter("rnn_server_storage_prefetch_issued_total").unwrap();
        let useful = snap.counter("rnn_server_storage_prefetch_useful_total").unwrap();
        let wasted = snap.counter("rnn_server_storage_prefetch_wasted_total").unwrap();
        assert!(issued > 0, "expansions over a paged world emit prefetch hints");
        assert!(useful + wasted <= issued, "each issued page decides at most once");
        assert!(
            snap.gauge("rnn_server_storage_shard_hit_rate_permille{shard=\"0\"}").is_some(),
            "per-shard hit-rate gauge is exported"
        );
        server.shutdown();
    }

    #[test]
    fn admission_rejects_unservable_requests_instead_of_panicking_workers() {
        let (_, _, world) = world(5, 3);
        let server = Server::start(world, ServerConfig::default().with_workers(1));
        // k == 0 and algorithms whose precomputed structures are missing.
        let zero_k = server.submit(Request::new(Algorithm::Eager, NodeId::new(0), 0));
        assert_eq!(zero_k.err(), Some(ServeError::Unservable));
        let no_table = server.submit(Request::new(Algorithm::EagerMaterialized, NodeId::new(0), 1));
        assert_eq!(no_table.err(), Some(ServeError::Unservable));
        let no_labels = server.submit(Request::new(Algorithm::HubLabel, NodeId::new(0), 1));
        assert_eq!(no_labels.err(), Some(ServeError::Unservable));
        let ok = server.submit(Request::new(Algorithm::Naive, NodeId::new(0), 1)).unwrap();
        assert!(ok.wait().is_ok());
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.rejected, 3);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.accounted(), stats.submitted);
    }

    #[test]
    fn submitting_after_shutdown_is_rejected() {
        let (_, _, w) = world(5, 3);
        let server = Server::start(w, ServerConfig::default().with_workers(1));
        let stats = server.stats();
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.queue_depth, 0);
        // Shutdown consumes the server; a second handle can't exist, so
        // test post-close admission through the shared queue instead: start
        // another server, close it via drop, then check the drop drained.
        let (_, _, w2) = world(5, 3);
        let server2 = Server::start(w2, ServerConfig::default().with_workers(1));
        let ticket = server2.submit(Request::new(Algorithm::Eager, NodeId::new(3), 1)).unwrap();
        drop(server2); // graceful: drains before joining
        assert!(ticket.wait().is_ok(), "drop drains accepted requests");
        server.shutdown();
    }

    #[test]
    fn per_worker_scratch_is_reused_across_requests() {
        // Not directly observable from outside the worker, but the serving
        // path goes through QueryEngine::run on a per-worker Scratch — the
        // engine's own tests pin the allocation-free property. Here we just
        // hammer one worker with repeats and check the cache-less path stays
        // correct and the latency split is recorded for every request.
        let (graph, points, world) = world(7, 5);
        let server =
            Server::start(world, ServerConfig::default().with_workers(1).with_micro_batch(4));
        let expected =
            run_rknn(Algorithm::Lazy, &*graph, &*points, Precomputed::none(), NodeId::new(10), 1);
        for _ in 0..50 {
            let served = server
                .submit(Request::new(Algorithm::Lazy, NodeId::new(10), 1))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(served.outcome, expected);
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 50);
        assert_eq!(stats.queue_wait.count(), 50);
        assert_eq!(stats.service.count(), 50);
    }

    #[test]
    fn result_cache_serves_repeats_and_swap_points_invalidates() {
        let (graph, _, _) = world(9, 7);
        let n = 81;
        let old_points = Arc::new(NodePointSet::from_nodes(n, (0..n).step_by(7).map(NodeId::new)));
        let new_points = Arc::new(NodePointSet::from_nodes(n, (0..n).step_by(13).map(NodeId::new)));
        let w = World::new(graph.clone(), old_points.clone());
        let server =
            Server::start(w, ServerConfig::default().with_workers(2).with_result_cache(64, 0));
        let request = || Request::new(Algorithm::Eager, NodeId::new(40), 2);

        let old_expected = run_rknn(
            Algorithm::Eager,
            &*graph,
            &*old_points,
            Precomputed::none(),
            NodeId::new(40),
            2,
        );
        let new_expected = run_rknn(
            Algorithm::Eager,
            &*graph,
            &*new_points,
            Precomputed::none(),
            NodeId::new(40),
            2,
        );
        assert_ne!(old_expected, new_expected, "the swap must change this answer");

        for _ in 0..10 {
            let served = server.submit(request()).unwrap().wait().unwrap();
            assert_eq!(served.outcome, old_expected);
        }
        let stats = server.stats();
        assert_eq!(stats.cache.lookups(), 10);
        assert!(stats.cache.hits >= 9, "repeats are served from the shared cache");

        // The swap sweeps the cache under the world write lock: the next
        // query computes (a miss) and returns the *new* answer.
        server.swap_points(new_points.clone(), None, None);
        let served = server.submit(request()).unwrap().wait().unwrap();
        assert_eq!(served.outcome, new_expected, "no stale RkNN set after the swap");
        let served = server.submit(request()).unwrap().wait().unwrap();
        assert_eq!(served.outcome, new_expected);
        server.shutdown();
    }

    #[test]
    fn swap_points_delta_maintains_the_hub_index_in_place() {
        let graph = Arc::new(grid(9));
        let n = 81;
        let old_points = Arc::new(NodePointSet::from_nodes(n, (0..n).step_by(7).map(NodeId::new)));
        // Delta shape: drop the point on node 7, add points on nodes 11, 40.
        let new_points = Arc::new(NodePointSet::from_nodes(
            n,
            old_points
                .nodes()
                .iter()
                .copied()
                .filter(|&v| v != NodeId::new(7))
                .chain([NodeId::new(11), NodeId::new(40)]),
        ));
        let updates = [
            PointUpdate::Remove(NodeId::new(7)),
            PointUpdate::Insert(NodeId::new(11)),
            PointUpdate::Insert(NodeId::new(40)),
        ];
        let index = Arc::new(rnn_index::HubLabelIndex::build(&*graph, &*old_points));
        let w = World::new(graph.clone(), old_points.clone()).with_hub_label_index(index);
        let server =
            Server::start(w, ServerConfig::default().with_workers(2).with_result_cache(64, 0));
        let request = |q: usize| Request::new(Algorithm::HubLabel, NodeId::new(q), 2);

        let old_index = rnn_index::HubLabelIndex::build(&*graph, &*old_points);
        for q in 0..n {
            let served = server.submit(request(q)).unwrap().wait().unwrap();
            assert_eq!(served.outcome.points, old_index.rknn(NodeId::new(q), 2).points);
        }

        assert!(server.swap_points_delta(new_points.clone(), None, &updates));
        let new_index = rnn_index::HubLabelIndex::build(&*graph, &*new_points);
        for q in 0..n {
            let served = server.submit(request(q)).unwrap().wait().unwrap();
            assert_eq!(
                served.outcome.points,
                new_index.rknn(NodeId::new(q), 2).points,
                "post-delta-swap query {q} must see the updated index"
            );
        }

        // A wholesale swap drops the concrete handle; delta swaps then
        // report unsupported without touching the world.
        server.swap_points(old_points.clone(), None, None);
        assert!(!server.swap_points_delta(new_points.clone(), None, &updates));
        let served = server.submit(Request::new(Algorithm::Naive, NodeId::new(3), 1)).unwrap();
        assert!(served.wait().is_ok(), "world stays intact after a refused delta swap");
        server.shutdown();
    }

    #[test]
    fn reject_policy_fails_fast_on_a_tiny_queue() {
        let (_, _, w) = world(9, 7);
        // One worker, queue of 1, and a pile of synchronous submissions:
        // some must be rejected, and everything accepted completes.
        let server = Server::start(
            w,
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_policy(BackpressurePolicy::Reject),
        );
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for q in 0..200 {
            match server.submit(Request::new(Algorithm::Eager, NodeId::new(q % 81), 1)) {
                Ok(t) => tickets.push(t),
                Err(ServeError::QueueFull) => rejected += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        for t in tickets {
            assert!(t.wait().is_ok(), "accepted requests always complete under Reject");
        }
        let stats = server.shutdown();
        assert_eq!(stats.rejected, rejected);
        assert_eq!(stats.completed + stats.rejected, 200);
        assert_eq!(stats.shed, 0, "Reject never drops accepted work");
        assert_eq!(stats.accounted(), stats.submitted);
    }

    #[test]
    fn conservation_holds_through_shutdown_under_load() {
        let (_, _, w) = world(9, 7);
        let server = Arc::new(Server::start(
            w,
            ServerConfig::default()
                .with_workers(2)
                .with_queue_capacity(4)
                .with_policy(BackpressurePolicy::Block),
        ));
        let submitted = Arc::new(AtomicU64::new(0));
        let sync_rejected = Arc::new(AtomicU64::new(0));
        let resolved_ok = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let server = Arc::clone(&server);
                let submitted = Arc::clone(&submitted);
                let sync_rejected = Arc::clone(&sync_rejected);
                let resolved_ok = Arc::clone(&resolved_ok);
                scope.spawn(move || {
                    for i in 0..100u32 {
                        let q = ((t * 100 + i) % 81) as usize;
                        // Alternate classes: conservation must hold per
                        // class under concurrent load and mid-stream close.
                        let priority =
                            if i % 2 == 0 { Priority::Interactive } else { Priority::Batch };
                        submitted.fetch_add(1, Ordering::Relaxed);
                        let request = Request::new(Algorithm::Lazy, NodeId::new(q), 1)
                            .with_priority(priority);
                        match server.submit(request) {
                            Ok(ticket) => {
                                if ticket.wait().is_ok() {
                                    resolved_ok.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(ServeError::ShuttingDown) => {
                                sync_rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("unexpected {other:?}"),
                        }
                    }
                });
            }
            // Shut down while submitters are still hammering: close() works
            // through the shared handle without consuming the server.
            std::thread::sleep(Duration::from_millis(30));
            server.close();
        });
        let stats = server.stats();
        assert_eq!(stats.submitted, submitted.load(Ordering::Relaxed));
        assert_eq!(
            stats.accounted(),
            stats.submitted,
            "completed + rejected + shed == submitted: no request lost"
        );
        assert_eq!(stats.completed, resolved_ok.load(Ordering::Relaxed));
        assert_eq!(stats.rejected, sync_rejected.load(Ordering::Relaxed));
        assert!(stats.completed > 0, "some requests were served before the close");
        for p in Priority::ALL {
            let class = stats.class(p);
            assert_eq!(
                class.accounted(),
                class.submitted,
                "{p}: per-class conservation through shutdown"
            );
        }
    }

    #[test]
    fn shed_policy_drops_expired_requests_and_accounts_them() {
        let (_, _, w) = world(9, 7);
        // Single worker, tiny queue: park the worker on a first slow-ish
        // request wave, then overfill with already-expired requests so both
        // shed paths (admission-edge and dequeue-time) trigger.
        let server = Server::start(
            w,
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(2)
                .with_micro_batch(1)
                .with_policy(BackpressurePolicy::Shed),
        );
        let expired =
            || Request::new(Algorithm::Eager, NodeId::new(40), 1).with_deadline_in(Duration::ZERO);
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for _ in 0..50 {
            match server.submit(expired()) {
                Ok(t) => tickets.push(t),
                Err(ServeError::QueueFull) => rejected += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        let mut shed = 0u64;
        let mut completed = 0u64;
        for t in tickets {
            match t.wait() {
                Ok(_) => completed += 1,
                Err(ServeError::Shed) => shed += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.shed, shed);
        assert_eq!(stats.completed, completed);
        assert_eq!(stats.rejected, rejected);
        assert_eq!(stats.accounted(), stats.submitted);
        assert!(stats.shed > 0, "expired requests under Shed must actually be dropped");
        // The telemetry bugfix: requests shed at dequeue waited in the
        // queue, and that wait is *in* the histogram — the count covers
        // completions plus dequeue sheds, not survivors only.
        assert_eq!(
            stats.queue_wait.count(),
            stats.completed + stats.shed_at_dequeue,
            "queue-wait histogram must include dequeue-shed requests"
        );
        assert!(stats.shed_at_dequeue > 0, "this workload must exercise the dequeue shed path");
        assert!(stats.shed_at_dequeue <= stats.shed);
        let class = stats.class(Priority::Interactive);
        assert_eq!(class.queue_wait.count(), class.completed + class.shed_at_dequeue);
    }

    #[test]
    fn expired_newcomer_at_the_full_edge_resolves_as_shed_not_queue_full() {
        // Regression for the expired-newcomer bug: a full queue of *fresh*
        // deadline-bearing requests plus an expired submitter. Pre-fix, the
        // newcomer was either rejected (nothing shed) or worse — admitted
        // after evicting a resident. Post-fix it is accepted-and-shed on
        // the spot: Ok(ticket) resolving to Err(Shed), residents untouched.
        let (_, _, w) = world(9, 7);
        let server = Server::start(
            w,
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(2)
                .with_micro_batch(1)
                .with_policy(BackpressurePolicy::Shed),
        );
        // Keep the queue pressed full with fresh-deadline requests (these
        // may legitimately bounce with QueueFull — nothing queued is ever
        // expired when only fresh requests are resident) while interleaving
        // expired newcomers. An expired newcomer must NEVER surface
        // QueueFull: at the full edge it is accepted-and-shed on the spot,
        // below capacity it is admitted and shed at dequeue — either way
        // the caller sees Ok(ticket) then Err(Shed).
        let mut fresh_tickets = Vec::new();
        let mut dead_tickets = Vec::new();
        for q in 0..200 {
            let fresh = Request::new(Algorithm::Eager, NodeId::new(q % 81), 1)
                .with_deadline_in(Duration::from_secs(3600));
            match server.submit(fresh) {
                Ok(t) => fresh_tickets.push(t),
                Err(ServeError::QueueFull) => {}
                Err(other) => panic!("unexpected {other:?}"),
            }
            let dead = Request::new(Algorithm::Eager, NodeId::new(q % 81), 1)
                .with_deadline_in(Duration::ZERO);
            match server.submit(dead) {
                Ok(t) => dead_tickets.push(t),
                Err(e) => panic!("expired newcomer must never surface {e:?} (pre-fix QueueFull)"),
            }
        }
        assert_eq!(dead_tickets.len(), 200, "every expired newcomer got a ticket");
        for t in dead_tickets {
            assert_eq!(t.wait(), Err(ServeError::Shed), "expired requests always resolve Shed");
        }
        // Fresh residents were never evicted for dead newcomers: every
        // admitted request with an hour of budget completes.
        for t in fresh_tickets {
            assert!(t.wait().is_ok(), "resident requests survive expired newcomers");
        }
        let stats = server.shutdown();
        assert_eq!(stats.accounted(), stats.submitted);
        assert_eq!(stats.shed, 200, "all and only the expired newcomers were shed");
    }

    #[test]
    fn submit_all_matches_single_submits_and_conserves() {
        let (graph, points, w) = world(9, 7);
        let server = Server::start(w, ServerConfig::default().with_workers(2));
        // A batch mixing priorities, an unservable request (k = 0) in the
        // middle, and repeats. Results arrive in order, one per request.
        let mut requests = Vec::new();
        for q in 0..40 {
            let mut r = Request::new(Algorithm::Eager, NodeId::new(q), 2);
            if q % 4 == 3 {
                r = r.with_priority(Priority::Batch);
            }
            requests.push(r);
        }
        requests.push(Request::new(Algorithm::Eager, NodeId::new(0), 0)); // unservable
        let results = server.submit_all(&requests);
        assert_eq!(results.len(), 41);
        assert_eq!(results[40].as_ref().err(), Some(&ServeError::Unservable));
        for (q, result) in results.into_iter().take(40).enumerate() {
            let served = result.expect("admitted").wait().expect("served");
            let direct = run_rknn(
                Algorithm::Eager,
                &*graph,
                &*points,
                Precomputed::none(),
                NodeId::new(q),
                2,
            );
            assert_eq!(served.outcome, direct, "query {q} via submit_all");
        }
        let stats = server.shutdown();
        // Accounting identical to 41 single submits.
        assert_eq!(stats.submitted, 41);
        assert_eq!(stats.completed, 40);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.accounted(), stats.submitted);
        assert_eq!(stats.class(Priority::Batch).submitted, 10);
        assert_eq!(stats.class(Priority::Batch).completed, 10);
        assert_eq!(stats.class(Priority::Interactive).submitted, 31);
        assert_eq!(stats.class(Priority::Interactive).completed, 30);
        assert_eq!(stats.class(Priority::Interactive).rejected, 1);

        // Empty batch: no-op, no accounting.
        let (_, _, w2) = world(5, 3);
        let server2 = Server::start(w2, ServerConfig::default().with_workers(1));
        assert!(server2.submit_all(&[]).is_empty());
        assert_eq!(server2.shutdown().submitted, 0);
    }

    #[test]
    fn traced_serving_matches_the_direct_call_and_aggregates_phases() {
        // Tracing must never change answers, and every served query must
        // land in the registry's algorithm x phase aggregates with
        // non-trivial phase counters.
        let graph = Arc::new(grid(9));
        let n = 81;
        let points = Arc::new(NodePointSet::from_nodes(n, (0..n).step_by(7).map(NodeId::new)));
        let index = Arc::new(rnn_index::HubLabelIndex::build(&*graph, &*points));
        let w = World::new(graph.clone(), points.clone()).with_hub_label_index(index.clone());
        let registry = MetricsRegistry::new();
        let server = Server::start_observed(
            w,
            ServerConfig::default().with_workers(2).with_tracing(true),
            None,
            &registry,
        );
        assert!(server.tracing());
        for q in 0..40 {
            let served = server
                .submit(Request::new(Algorithm::Eager, NodeId::new(q), 2))
                .unwrap()
                .wait()
                .unwrap();
            let direct = run_rknn(
                Algorithm::Eager,
                &*graph,
                &*points,
                Precomputed::none(),
                NodeId::new(q),
                2,
            );
            assert_eq!(served.outcome, direct, "tracing never changes query {q}");
        }
        for q in 0..40 {
            let served = server
                .submit(Request::new(Algorithm::HubLabel, NodeId::new(q), 2))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(served.outcome.points, index.rknn(NodeId::new(q), 2).points);
        }
        // Shut down before snapshotting: workers publish their histograms
        // after each micro-batch, so only a post-join snapshot is guaranteed
        // to count every service time (counters lead histograms mid-flight).
        server.shutdown();
        let snap = registry.snapshot();
        // One source poll carries the admission counters...
        assert_eq!(snap.counter("rnn_server_submitted_total"), Some(80));
        assert_eq!(snap.counter("rnn_server_completed_total"), Some(80));
        assert_eq!(snap.counter("rnn_server_completed_total{class=\"interactive\"}"), Some(80));
        assert_eq!(snap.counter("rnn_server_served_total{algorithm=\"eager\"}"), Some(40));
        assert_eq!(snap.counter("rnn_server_served_total{algorithm=\"hub-label\"}"), Some(40));
        assert_eq!(snap.histogram("rnn_server_service_nanos").unwrap().count(), 80);
        // ...and the trace aggregates: every served query traced, with the
        // right phases per algorithm family.
        assert_eq!(snap.counter("rnn_trace_queries_total{algorithm=\"eager\"}"), Some(40));
        assert_eq!(snap.counter("rnn_trace_queries_total{algorithm=\"hub-label\"}"), Some(40));
        let expansion =
            snap.counter("rnn_trace_phase_nanos_total{algorithm=\"eager\",phase=\"expansion\"}");
        assert!(expansion.unwrap() > 0, "traversal queries spend time expanding");
        let candidate_gen = snap.counter(
            "rnn_trace_phase_calls_total{algorithm=\"hub-label\",phase=\"candidate_gen\"}",
        );
        assert_eq!(candidate_gen, Some(40), "one candidate-generation span per hub-label query");
    }

    #[test]
    fn slow_query_log_captures_worst_and_samples_with_queue_wait_stamped() {
        let (_, _, w) = world(9, 7);
        let registry = MetricsRegistry::new();
        let server = Server::start_observed(
            w,
            ServerConfig::default().with_workers(1).with_slow_query_log(5, 2, 16, 42),
            None,
            &registry,
        );
        assert!(server.tracing(), "a slow-query log implies tracing");
        let requests: Vec<Request> =
            (0..60).map(|q| Request::new(Algorithm::Lazy, NodeId::new(q % 81), 2)).collect();
        for result in server.submit_all(&requests) {
            result.unwrap().wait().unwrap();
        }
        let report = server.drain_slow_queries();
        assert_eq!(report.worst.len(), 5, "worst ring fills to capacity");
        assert!(
            report.worst.windows(2).all(|w| w[0].service_nanos >= w[1].service_nanos),
            "worst traces come slowest-first"
        );
        assert!(!report.samples.is_empty(), "1-in-2 sampling over 60 queries hits");
        for trace in report.worst.iter().chain(&report.samples) {
            assert_eq!(trace.algorithm, "lazy");
            assert!(trace.service_nanos > 0);
            assert!(trace.queue_wait_nanos > 0, "server stamps the queue wait into the trace");
        }
        // Drained: the next window starts empty.
        assert!(server.drain_slow_queries().worst.is_empty());
        server.shutdown();
    }

    #[test]
    fn untraced_observed_server_still_exports_counters() {
        // Observability without tracing: the server source polls, but no
        // trace aggregates are registered at all.
        let (_, _, w) = world(5, 3);
        let registry = MetricsRegistry::new();
        let server =
            Server::start_observed(w, ServerConfig::default().with_workers(1), None, &registry);
        assert!(!server.tracing());
        server.submit(Request::new(Algorithm::Naive, NodeId::new(0), 1)).unwrap().wait().unwrap();
        assert!(server.drain_slow_queries().worst.is_empty(), "no log configured");
        server.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rnn_server_completed_total"), Some(1));
        assert_eq!(snap.counter("rnn_trace_queries_total{algorithm=\"naive\"}"), None);
    }

    #[test]
    fn telemetry_windows_slos_and_flight_recorder_work_end_to_end() {
        use crate::telemetry::TelemetryConfig;
        use rnn_obs::{SloSpec, SloState};

        let (_, points, w) = world(9, 7);
        let registry = MetricsRegistry::new();
        // Threshold ZERO makes every completed request an SLO violation:
        // burn = 1.0 / 0.01 = 100 >> critical. Windows of (1, 2) epochs.
        let telemetry = TelemetryConfig::new()
            .with_window_epochs(8)
            .with_recorder_capacity(128)
            .with_latency_slo(
                Priority::Interactive,
                SloSpec::latency("interactive_latency", 0.99, Duration::ZERO).with_windows(1, 2),
            )
            .with_dropped_slo(
                Priority::Interactive,
                SloSpec::error_ratio("interactive_drops", 0.05).with_windows(1, 2),
            );
        let mut server = Server::start_with_telemetry(
            w,
            ServerConfig::default().with_workers(2).with_slow_query_log(3, 0, 0, 7),
            telemetry,
            None,
            &registry,
        );
        assert_eq!(server.epoch(), 0);
        let slo = server.slo().expect("telemetry carries an SLO engine");
        assert_eq!(slo.len(), 2);

        for q in 0..30 {
            server
                .submit(Request::new(Algorithm::Eager, NodeId::new(q), 2))
                .unwrap()
                .wait()
                .unwrap();
        }
        // Evaluate-then-advance: epoch 0's traffic flips the latency SLO.
        let transitions = server.advance_epoch();
        assert_eq!(server.epoch(), 1);
        assert_eq!(transitions.len(), 1, "only the latency SLO transitions");
        assert_eq!(transitions[0].name, "interactive_latency");
        assert_eq!(transitions[0].from, SloState::Ok);
        assert_eq!(transitions[0].to, SloState::Critical);
        assert_eq!(slo.state(0), Some(SloState::Critical));
        assert_eq!(slo.state(1), Some(SloState::Ok), "no drops: the ratio SLO stays ok");

        // An empty epoch recovers: the 1-epoch short window stops burning.
        let transitions = server.advance_epoch();
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].to, SloState::Ok);

        // A swap lands on the event timeline.
        server.swap_points(points.clone(), None, None);

        // Windowed instruments exported alongside the cumulative values.
        let snap = registry.snapshot();
        let cumulative = snap.histogram("rnn_server_latency_nanos{class=\"interactive\"}").unwrap();
        assert_eq!(cumulative.count(), 30);
        let window =
            snap.histogram("rnn_server_latency_nanos_window{class=\"interactive\"}").unwrap();
        assert_eq!(window.count(), 30, "the 8-epoch ring still holds epoch 0");
        assert_eq!(snap.counter("rnn_server_arrivals_total{class=\"interactive\"}"), Some(30));
        assert_eq!(snap.gauge("rnn_server_dropped_total_window{class=\"interactive\"}"), Some(0));
        assert_eq!(snap.gauge("rnn_telemetry_epoch"), Some(2));
        assert_eq!(snap.gauge("rnn_slo_state{slo=\"interactive_latency\"}"), Some(0));
        assert_eq!(snap.gauge("rnn_recorder_capacity"), Some(128));

        // Quiesce without consuming the handle, then pull the evidence.
        server.join();
        let drained = server.drain_events();
        assert_eq!(drained.dropped, 0);
        let names: Vec<&str> = drained.events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(names.iter().filter(|n| **n == "worker_start").count(), 2);
        assert_eq!(names.iter().filter(|n| **n == "worker_stop").count(), 2);
        assert_eq!(names.iter().filter(|n| **n == "slo_transition").count(), 2);
        assert_eq!(names.iter().filter(|n| **n == "points_swap").count(), 1);
        assert!(names.contains(&"slow_query"), "worst-N captures become events");
        let served: u64 = drained
            .events
            .iter()
            .filter_map(|e| match e.kind {
                rnn_obs::EventKind::WorkerStop { served, .. } => Some(served),
                _ => None,
            })
            .sum();
        assert_eq!(served, 30, "worker-stop events account for every completion");
        assert!(
            drained.events.windows(2).all(|w| w[0].seq < w[1].seq),
            "drain returns ascending sequence order"
        );
        let report = server.drain_slow_queries();
        assert_eq!(report.worst.len(), 3, "slow-query drain still works after join()");
        for trace in &report.worst {
            assert!(trace.start_nanos > 0, "server stamps the trace timeline");
        }
        assert_eq!(server.stats().completed, 30);
        assert!(server.drain_events().events.is_empty(), "a second drain starts empty");
    }

    #[test]
    fn telemetry_counts_sheds_in_windows_and_events() {
        use crate::telemetry::TelemetryConfig;

        let (_, _, w) = world(9, 7);
        let registry = MetricsRegistry::new();
        let server = Server::start_with_telemetry(
            w,
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(2)
                .with_micro_batch(1)
                .with_policy(BackpressurePolicy::Shed),
            TelemetryConfig::new(),
            None,
            &registry,
        );
        let expired =
            || Request::new(Algorithm::Eager, NodeId::new(40), 1).with_deadline_in(Duration::ZERO);
        let mut tickets = Vec::new();
        for _ in 0..30 {
            if let Ok(t) = server.submit(expired()) {
                tickets.push(t);
            }
        }
        for t in tickets {
            let _ = t.wait();
        }
        let mut server = server;
        server.join();
        let stats = server.stats();
        assert!(stats.shed > 0, "this workload sheds");
        // Every shed (either admission edge) and rejection lands in the
        // windowed drop counter and — for sheds — on the event timeline.
        let snap = registry.snapshot();
        let dropped = snap.counter("rnn_server_dropped_total{class=\"interactive\"}").unwrap_or(0);
        assert_eq!(dropped, stats.shed + stats.rejected);
        let drained = server.drain_events();
        let shed_events: u64 = drained
            .events
            .iter()
            .filter_map(|e| match e.kind {
                rnn_obs::EventKind::AdmissionShed { class, count } => {
                    assert_eq!(class, Priority::Interactive.index() as u64);
                    Some(count)
                }
                _ => None,
            })
            .sum();
        assert_eq!(shed_events, stats.shed, "one admission-shed event per shed request");
    }

    #[test]
    fn batch_class_is_served_and_cannot_be_starved_forever() {
        let (graph, points, w) = world(9, 7);
        let server =
            Server::start(w, ServerConfig::default().with_workers(1).with_starvation_ratio(2));
        let expected =
            run_rknn(Algorithm::Eager, &*graph, &*points, Precomputed::none(), NodeId::new(5), 1);
        // Interleave: batch requests among a heavier interactive stream.
        let mut batch_tickets = Vec::new();
        let mut interactive_tickets = Vec::new();
        for i in 0..60 {
            if i % 3 == 0 {
                batch_tickets.push(
                    server
                        .submit(
                            Request::new(Algorithm::Eager, NodeId::new(5), 1)
                                .with_priority(Priority::Batch),
                        )
                        .unwrap(),
                );
            } else {
                interactive_tickets.push(
                    server.submit(Request::new(Algorithm::Eager, NodeId::new(i % 81), 2)).unwrap(),
                );
            }
        }
        for t in batch_tickets {
            let served = t.wait().expect("batch requests are served, not starved");
            assert_eq!(served.outcome, expected, "class never changes the answer");
        }
        for t in interactive_tickets {
            assert!(t.wait().is_ok());
        }
        let stats = server.shutdown();
        assert_eq!(stats.class(Priority::Batch).completed, 20);
        assert_eq!(stats.class(Priority::Interactive).completed, 40);
        assert_eq!(stats.class(Priority::Batch).queue_wait.count(), 20);
        assert_eq!(stats.completed, 60);
    }
}

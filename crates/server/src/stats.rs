//! Server statistics: per-class accounting and the wait-free snapshot path.
//!
//! A serving system's stats endpoint is polled — by dashboards, autoscalers,
//! load-balancer health checks — and a poll must never get in the way of the
//! traffic it observes. The first cut of `rnn-server` had each worker guard
//! its latency histograms with a mutex that `stats()` also took: a poll
//! arriving while a worker folded a micro-batch waited, and (worse) the
//! worker's *next* fold waited on a slow poller. This module removes both
//! waits with a **seqlock-style double-buffered snapshot**:
//!
//! * Each worker owns a [`PublishedMetrics`]: two buffers of plain atomic
//!   words plus a version counter. After every micro-batch the worker writes
//!   its cumulative metrics into the buffer the readers are *not* looking at
//!   (the one of opposite parity to the version), then bumps the version
//!   with a release store. The worker never blocks and never retries —
//!   publishing is wait-free.
//! * [`Server::stats`](crate::Server::stats) reads the stable buffer
//!   (version parity selects it), then re-checks the version; if a publish
//!   completed in between it simply rereads. Readers never block a worker
//!   and a worker's publish window is a few hundred relaxed stores, so the
//!   retry loop terminates immediately in practice.
//!
//! The consistency argument is the classic seqlock one (every word is an
//! atomic, so racing reads are defined behavior; the acquire fence before
//! the version re-check makes a torn read visible as a version change), with
//! the double buffer removing the writer-side "odd = mid-write" wait: a
//! writer always has a free buffer to publish into.
//!
//! Everything else in a [`ServerStats`] snapshot is already wait-free:
//! admission counters are relaxed atomics, the shared result cache keeps its
//! hit/miss counters outside the shard locks, and the I/O registry mutex is
//! touched by workers only on their first page access. A `stats()` poll
//! therefore never contends with an in-flight micro-batch — pinned by the
//! `polling_stats_never_blocks_and_never_tears` test.

use crate::request::Priority;
use rnn_core::{Algorithm, CacheStats};
use rnn_obs::histogram::{LatencyHistogram, BUCKETS};
use rnn_storage::IoStats;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// The position of `algorithm` in [`Algorithm::ALL`] — kept as a
/// wildcard-free match (the workspace contract: adding a variant must break
/// this build, not silently share a counter).
pub(crate) fn algorithm_index(algorithm: Algorithm) -> usize {
    match algorithm {
        Algorithm::Eager => 0,
        Algorithm::EagerMaterialized => 1,
        Algorithm::Lazy => 2,
        Algorithm::LazyExtendedPruning => 3,
        Algorithm::Naive => 4,
        Algorithm::HubLabel => 5,
    }
}

/// One admission class's latency pair: where its requests' time went.
#[derive(Clone, Debug, Default)]
pub(crate) struct ClassLatencies {
    /// Submit to dequeue (includes queue waits of requests shed at dequeue,
    /// so overload telemetry is not survivorship-biased).
    pub(crate) queue_wait: LatencyHistogram,
    /// Dequeue to completion (served requests only).
    pub(crate) service: LatencyHistogram,
}

/// One worker's cumulative metrics — owned by the worker thread, published
/// through its [`PublishedMetrics`] after every micro-batch.
#[derive(Default)]
pub(crate) struct WorkerMetrics {
    pub(crate) classes: [ClassLatencies; Priority::ALL.len()],
    pub(crate) micro_batches: u64,
}

/// One histogram's worth of atomic words in a snapshot buffer.
struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_lo: AtomicU64,
    sum_hi: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_lo: AtomicU64::new(0),
            sum_hi: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Writer side: copy `h` into this cell, word by word (relaxed — the
    /// version store orders the whole publish).
    fn store(&self, h: &LatencyHistogram) {
        let (buckets, count, sum, max, min) = h.raw();
        for (cell, &value) in self.buckets.iter().zip(buckets) {
            cell.store(value, Ordering::Relaxed);
        }
        self.count.store(count, Ordering::Relaxed);
        self.sum_lo.store(sum as u64, Ordering::Relaxed);
        self.sum_hi.store((sum >> 64) as u64, Ordering::Relaxed);
        self.max.store(max, Ordering::Relaxed);
        self.min.store(min, Ordering::Relaxed);
    }

    /// Reader side: rebuild the histogram from the cell's words.
    fn load(&self) -> LatencyHistogram {
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let sum = u128::from(self.sum_lo.load(Ordering::Relaxed))
            | (u128::from(self.sum_hi.load(Ordering::Relaxed)) << 64);
        LatencyHistogram::from_raw(
            buckets,
            self.count.load(Ordering::Relaxed),
            sum,
            self.max.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
        )
    }
}

/// One snapshot buffer: a cell pair per class plus the micro-batch counter.
struct MetricsBuffer {
    classes: [[HistogramCell; 2]; Priority::ALL.len()],
    micro_batches: AtomicU64,
}

impl MetricsBuffer {
    fn new() -> Self {
        MetricsBuffer {
            classes: std::array::from_fn(|_| [HistogramCell::new(), HistogramCell::new()]),
            micro_batches: AtomicU64::new(0),
        }
    }
}

/// One worker's double-buffered, versioned metrics snapshot. Single writer
/// (the owning worker), any number of concurrent readers; neither side ever
/// blocks the other.
pub(crate) struct PublishedMetrics {
    /// Number of completed publishes. Parity selects the stable buffer
    /// (`version & 1`); the writer fills the other one.
    version: AtomicU64,
    buffers: [MetricsBuffer; 2],
}

impl PublishedMetrics {
    pub(crate) fn new() -> Self {
        PublishedMetrics {
            version: AtomicU64::new(0),
            buffers: [MetricsBuffer::new(), MetricsBuffer::new()],
        }
    }

    /// Writer side (the owning worker only): publish `metrics` as the new
    /// stable snapshot. Wait-free — writes the back buffer, then flips the
    /// version with a release store.
    pub(crate) fn publish(&self, metrics: &WorkerMetrics) {
        let version = self.version.load(Ordering::Relaxed);
        let back = &self.buffers[((version + 1) & 1) as usize];
        for (cells, latencies) in back.classes.iter().zip(&metrics.classes) {
            cells[0].store(&latencies.queue_wait);
            cells[1].store(&latencies.service);
        }
        back.micro_batches.store(metrics.micro_batches, Ordering::Relaxed);
        self.version.store(version + 1, Ordering::Release);
    }

    /// Reader side: a consistent snapshot of the last published metrics.
    /// Lock-free — retries only if a publish completed mid-read, and each
    /// retry observes a strictly newer version, so it cannot livelock
    /// against a worker publishing at micro-batch granularity.
    pub(crate) fn read(&self) -> WorkerMetrics {
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            let stable = &self.buffers[(v1 & 1) as usize];
            let mut metrics = WorkerMetrics::default();
            for (cells, latencies) in stable.classes.iter().zip(&mut metrics.classes) {
                latencies.queue_wait = cells[0].load();
                latencies.service = cells[1].load();
            }
            metrics.micro_batches = stable.micro_batches.load(Ordering::Relaxed);
            // The classic seqlock read fence: if any word above came from a
            // later publish into this buffer, the version re-read below is
            // guaranteed to see that publish's version bump and retry.
            fence(Ordering::Acquire);
            if self.version.load(Ordering::Relaxed) == v1 {
                return metrics;
            }
        }
    }
}

/// One admission class's slice of a [`ServerStats`] snapshot: the class's
/// admission counters and latency histograms. Per-class conservation mirrors
/// the global one: `completed + rejected + shed == submitted` at quiescence.
#[derive(Clone, Debug, Default)]
pub struct ClassStats {
    /// Requests of this class handed to `submit` / `submit_all`.
    pub submitted: u64,
    /// Requests of this class admitted to the queue.
    pub accepted: u64,
    /// Requests of this class turned away without being served (queue full,
    /// unservable, shutting down — at admission or at dequeue after a swap).
    pub rejected: u64,
    /// Requests of this class dropped past their deadline by the `Shed`
    /// policy (at admission or at dequeue).
    pub shed: u64,
    /// The subset of `shed` dropped at *dequeue* — these have a recorded
    /// queue wait: `queue_wait.count() == completed + shed_at_dequeue`.
    pub shed_at_dequeue: u64,
    /// Requests of this class served to completion.
    pub completed: u64,
    /// Submit-to-dequeue latency of this class, merged across workers.
    /// Includes requests shed at dequeue (see `shed_at_dequeue`), so the
    /// histogram shows overload instead of hiding it.
    pub queue_wait: LatencyHistogram,
    /// Dequeue-to-completion latency of this class (served requests only).
    pub service: LatencyHistogram,
}

impl ClassStats {
    /// `completed + rejected + shed` — equals `submitted` at quiescence.
    pub fn accounted(&self) -> u64 {
        self.completed + self.rejected + self.shed
    }
}

/// A point-in-time snapshot of a server's counters and latency split —
/// global rollups plus the per-class breakdown. Wait-free to take: atomic
/// counter loads plus one seqlock snapshot read per worker; a poll never
/// waits on an in-flight micro-batch.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Requests handed to [`crate::Server::submit`] /
    /// [`crate::Server::submit_all`].
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests turned away without being served: synchronously at
    /// admission (queue full, unservable, shutting down), or at dequeue
    /// when a point-set swap removed the precomputed structure an
    /// already-queued request needs (its ticket resolves to
    /// [`crate::ServeError::Unservable`]).
    pub rejected: u64,
    /// Accepted requests dropped past their deadline by the `Shed` policy,
    /// plus expired newcomers resolved as shed at the full-queue edge.
    pub shed: u64,
    /// The subset of `shed` dropped at dequeue (their queue waits are in the
    /// histograms; admission-edge sheds never waited in the queue).
    pub shed_at_dequeue: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Served-request counts per algorithm, in [`Algorithm::ALL`] order.
    pub per_algorithm: Vec<(Algorithm, u64)>,
    /// Per-class counters and latency split, in [`Priority::ALL`] order.
    pub per_class: Vec<(Priority, ClassStats)>,
    /// Requests sitting in the queue at snapshot time.
    pub queue_depth: usize,
    /// Worker wakeups that processed at least one request (micro-batching
    /// makes this less than `completed` under load).
    pub micro_batches: u64,
    /// Submit-to-dequeue latency, merged across workers and classes.
    pub queue_wait: LatencyHistogram,
    /// Dequeue-to-completion latency, merged across workers and classes.
    pub service: LatencyHistogram,
    /// Result-cache hits/misses (zeros when caching is disabled).
    pub cache: CacheStats,
    /// I/O counters rollup (zeros unless the server was given the paged
    /// world's counters).
    pub io: IoStats,
}

impl ServerStats {
    /// Served-request count for one algorithm.
    pub fn algorithm_count(&self, algorithm: Algorithm) -> u64 {
        self.per_algorithm[algorithm_index(algorithm)].1
    }

    /// The counters and latency split of one admission class.
    pub fn class(&self, priority: Priority) -> &ClassStats {
        &self.per_class[priority.index()].1
    }

    /// `completed + rejected + shed` — equals `submitted` at quiescence
    /// (nothing in flight), which is the no-request-lost invariant.
    pub fn accounted(&self) -> u64 {
        self.completed + self.rejected + self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    /// A snapshot is internally consistent iff its bucket counts add up to
    /// its total count — any torn mix of two publishes breaks this.
    fn consistent(h: &LatencyHistogram) -> bool {
        let (buckets, count, _, _, _) = h.raw();
        buckets.iter().sum::<u64>() == count
    }

    fn metrics_with(samples: u64) -> WorkerMetrics {
        let mut m = WorkerMetrics::default();
        for i in 0..samples {
            let d = Duration::from_nanos(100 + i * 37);
            m.classes[0].queue_wait.record(d);
            m.classes[0].service.record(2 * d);
            m.classes[1].queue_wait.record(3 * d);
            m.classes[1].service.record(d / 2);
        }
        m.micro_batches = samples;
        m
    }

    #[test]
    fn publish_then_read_round_trips_every_field() {
        let published = PublishedMetrics::new();
        let metrics = metrics_with(50);
        published.publish(&metrics);
        let read = published.read();
        assert_eq!(read.micro_batches, 50);
        for class in 0..Priority::ALL.len() {
            for (mine, theirs) in [
                (&read.classes[class].queue_wait, &metrics.classes[class].queue_wait),
                (&read.classes[class].service, &metrics.classes[class].service),
            ] {
                assert_eq!(mine.count(), theirs.count());
                assert_eq!(mine.mean(), theirs.mean());
                assert_eq!(mine.max(), theirs.max());
                assert_eq!(mine.p99(), theirs.p99());
            }
        }
    }

    #[test]
    fn unpublished_metrics_read_as_zeros() {
        let published = PublishedMetrics::new();
        let read = published.read();
        assert_eq!(read.micro_batches, 0);
        assert!(read.classes.iter().all(|c| c.queue_wait.is_empty() && c.service.is_empty()));
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_snapshot() {
        // The writer publishes snapshots whose internal invariant (bucket
        // sum == count, and service count == queue-wait count) only holds
        // for a complete publish: any interleaving of two publishes would
        // break it. Readers hammer in parallel and assert the invariant
        // plus monotonicity of the published count.
        let published = Arc::new(PublishedMetrics::new());
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let published = Arc::clone(&published);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last_count = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let m = published.read();
                        let qw = &m.classes[0].queue_wait;
                        let sv = &m.classes[0].service;
                        assert!(consistent(qw), "torn bucket/count pair");
                        assert!(consistent(sv), "torn bucket/count pair");
                        assert_eq!(
                            qw.count(),
                            sv.count(),
                            "torn snapshot: histograms from different publishes"
                        );
                        assert_eq!(qw.count(), m.micro_batches, "torn counter");
                        assert!(qw.count() >= last_count, "published count went backwards");
                        last_count = qw.count();
                    }
                });
            }
            let mut metrics = WorkerMetrics::default();
            for i in 0..20_000u64 {
                let d = Duration::from_nanos(1 + (i * 2654435761) % 1_000_000);
                metrics.classes[0].queue_wait.record(d);
                metrics.classes[0].service.record(d);
                metrics.micro_batches += 1;
                published.publish(&metrics);
            }
            stop.store(true, Ordering::Relaxed);
        });
        let final_read = published.read();
        assert_eq!(final_read.micro_batches, 20_000);
        assert_eq!(final_read.classes[0].queue_wait.count(), 20_000);
    }

    #[test]
    fn class_stats_accounting_helper() {
        let stats = ClassStats {
            submitted: 10,
            accepted: 8,
            rejected: 2,
            shed: 3,
            shed_at_dequeue: 1,
            completed: 5,
            ..Default::default()
        };
        assert_eq!(stats.accounted(), 10);
    }
}

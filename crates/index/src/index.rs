//! The queryable hub-label index: labeling + point table + the ReHub-style
//! RkNN algorithm.
//!
//! All queries here touch *only* label arrays — never an adjacency list.
//! That changes the cost model completely: where the expansion algorithms
//! charge page accesses per visited node, the index charges a few sorted
//! scans whose length is bounded by the label size. The
//! [`rnn_core::QueryStats`] counters are therefore reinterpreted (and
//! documented on [`HubLabelIndex::rknn_in`]) as label-scan counts, keeping
//! the engine's aggregation machinery meaningful without new fields.
//!
//! The monochromatic RkNN query runs in two label-only phases, mirroring
//! ReHub's candidate/verification split:
//!
//! 1. **Candidates.** Scan the buckets of the query's hubs once, folding
//!    `d(q, h) + d(h, p)` to the minimum per occupied node. By the 2-hop
//!    cover this minimum is the exact `d(q, p)` for every point in the
//!    query's component (and only those points are touched).
//! 2. **Verification.** For each candidate `p` with `d(q, p) > 0`, count
//!    distinct other points within distance `< d(q, p)` of `p` by scanning
//!    the bucket *prefixes* of `p`'s hubs (buckets are distance-sorted, so
//!    each scan stops at the bound), short-circuiting once `k` are found.
//!    `p` is a reverse neighbor iff fewer than `k` such points exist —
//!    exactly the semantics of the expansion algorithms, ties included.
//!
//! Labels are read through a pooled [`LabelDecoder`], so both label layouts
//! (full-width and compressed, see [`HubLabeling::compressed`]) serve
//! steady-state queries allocation-free.

use crate::labeling::{HubLabeling, LabelDecoder, LabelPrecision};
use crate::point_table::HubPointTable;
use rnn_core::precomputed::HubLabelRknn;
use rnn_core::query::{QueryStats, RknnOutcome};
use rnn_core::scratch::Scratch;
use rnn_graph::{NodeId, NodePointSet, PointId, PointsOnNodes, Topology, Weight};
use rnn_obs::{MetricsRegistry, Phase};
use std::collections::hash_map::Entry;

/// A hub labeling bundled with the inverted point table of one data set,
/// answering distance, k-NN and RkNN queries without graph traversal.
#[derive(Clone, Debug, PartialEq)]
pub struct HubLabelIndex {
    labeling: HubLabeling,
    table: HubPointTable,
}

impl HubLabelIndex {
    /// Builds labeling and point table in one go. Preprocessing cost is one
    /// pruned Dijkstra per node plus one sort of the inverted entries; query
    /// cost afterwards is label scans only.
    pub fn build<T, P>(topo: &T, points: &P) -> Self
    where
        T: Topology + ?Sized,
        P: PointsOnNodes + ?Sized,
    {
        Self::build_with_threads(topo, points, 1)
    }

    /// [`HubLabelIndex::build`] with the level-parallel label construction
    /// of [`HubLabeling::build_with_threads`]. The index is identical at
    /// every thread count.
    pub fn build_with_threads<T, P>(topo: &T, points: &P, threads: usize) -> Self
    where
        T: Topology + ?Sized,
        P: PointsOnNodes + ?Sized,
    {
        let labeling = HubLabeling::build_with_threads(topo, threads);
        Self::from_labeling(labeling, points)
    }

    /// Reuses an existing labeling for a (new) point set — the labeling
    /// depends only on the graph, so serving several data sets over one
    /// network shares the expensive half of the preprocessing.
    pub fn from_labeling<P: PointsOnNodes + ?Sized>(labeling: HubLabeling, points: &P) -> Self {
        let table = HubPointTable::build(&labeling, points);
        HubLabelIndex { labeling, table }
    }

    /// Re-encodes the index with compressed labels (see
    /// [`HubLabeling::compressed`]) over the same point set.
    ///
    /// The point table is rebuilt from the compressed labeling so bucket
    /// distances and decoded label distances come from the same tier: under
    /// [`LabelPrecision::F32`] every phase sums identically rounded values
    /// in both directions, which preserves the exact tie semantics of the
    /// verification phase.
    pub fn compressed(&self, precision: LabelPrecision) -> Self {
        let labeling = self.labeling.compressed(precision);
        let points =
            NodePointSet::from_nodes(labeling.num_nodes(), self.table.nodes().iter().copied());
        let table = HubPointTable::build(&labeling, &points);
        HubLabelIndex { labeling, table }
    }

    /// The underlying labeling.
    pub fn labeling(&self) -> &HubLabeling {
        &self.labeling
    }

    /// The underlying inverted point table.
    pub fn point_table(&self) -> &HubPointTable {
        &self.table
    }

    /// Number of labeled graph nodes.
    pub fn num_nodes(&self) -> usize {
        self.labeling.num_nodes()
    }

    /// Number of indexed data points.
    pub fn num_points(&self) -> usize {
        self.table.num_points()
    }

    /// Publishes the index's size statistics as gauges in `registry`:
    /// `rnn_label_nodes`, `rnn_label_points`, `rnn_label_entries`,
    /// `rnn_label_max_label` and `rnn_label_bytes`. Gauges are stamped at
    /// call time — call again after a rebuild or point maintenance to
    /// refresh them.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        let stats = self.labeling.stats();
        registry.gauge("rnn_label_nodes").set(stats.nodes as u64);
        registry.gauge("rnn_label_points").set(self.num_points() as u64);
        registry.gauge("rnn_label_entries").set(stats.entries as u64);
        registry.gauge("rnn_label_max_label").set(stats.max_label as u64);
        registry.gauge("rnn_label_bytes").set(stats.label_bytes() as u64);
    }

    /// Adds a point on `node` by incremental point-table maintenance —
    /// `O(label size)` bucket splices instead of a rebuild (see
    /// [`HubPointTable::insert_point`]). Returns the new point's id.
    pub fn insert_point(&mut self, node: NodeId) -> PointId {
        let HubLabelIndex { labeling, table } = self;
        table.insert_point(labeling, node)
    }

    /// Removes the point on `node`, if any, by incremental point-table
    /// maintenance (see [`HubPointTable::remove_point`]).
    pub fn remove_point(&mut self, node: NodeId) -> Option<PointId> {
        let HubLabelIndex { labeling, table } = self;
        table.remove_point(labeling, node)
    }

    /// Label-based shortest path distance (see [`HubLabeling::distance`]).
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.labeling.distance(u, v)
    }

    /// The `k` nearest data points of `node` (including a point residing on
    /// `node` itself, at distance zero), as `(point, distance)` in ascending
    /// `(distance, point id)` order — the same order the expansion-based
    /// [`rnn_core::knn::k_nearest`] reports on tie-free instances.
    ///
    /// Answered by scanning bucket prefixes of the node's hubs, cutting each
    /// bucket off as soon as its candidates can no longer beat the current
    /// k-th best.
    pub fn k_nearest(&self, node: NodeId, k: usize) -> Vec<(PointId, Weight)> {
        assert!(node.index() < self.num_nodes(), "node {node} outside the labeled graph");
        let mut best: Vec<(Weight, NodeId)> = Vec::with_capacity(k + 1);
        if k == 0 {
            return Vec::new();
        }
        let mut dec = LabelDecoder::new();
        let (hubs, hub_dists) = self.labeling.label(node, &mut dec);
        for (i, &h) in hubs.iter().enumerate() {
            let dh = hub_dists[i];
            if best.len() == k && dh > best[k - 1].0 {
                continue; // every candidate of this bucket is farther
            }
            let (dists, nodes) = self.table.bucket(h);
            for (j, &d) in dists.iter().enumerate() {
                let cand = dh + d;
                if best.len() == k && cand > best[k - 1].0 {
                    break; // bucket ascends: nothing better follows
                }
                Self::offer(&mut best, k, cand, nodes[j]);
            }
        }
        // Node order equals point-id order (the dense-id invariant), so the
        // (distance, node) ranking maps 1:1 onto (distance, point).
        best.into_iter()
            .map(|(d, n)| (self.table.point_of(n).expect("bucket nodes are occupied"), d))
            .collect()
    }

    /// Offers a candidate to the running top-k, keeping `best` sorted by
    /// `(distance, node)` and deduplicated by node (minimum distance wins).
    fn offer(best: &mut Vec<(Weight, NodeId)>, k: usize, cand: Weight, n: NodeId) {
        if let Some(pos) = best.iter().position(|&(_, m)| m == n) {
            if best[pos].0 <= cand {
                return; // already listed at least as close
            }
            best.remove(pos);
        }
        let at = best.partition_point(|&e| e < (cand, n));
        if at == best.len() && best.len() >= k {
            return;
        }
        best.insert(at, (cand, n));
        best.truncate(k);
    }

    /// [`HubLabelIndex::rknn_in`] on a throwaway scratch arena.
    pub fn rknn(&self, query: NodeId, k: usize) -> RknnOutcome {
        self.rknn_in(query, k, &mut Scratch::new())
    }

    /// Answers a monochromatic RkNN query purely from the labels (the
    /// two-phase algorithm of the module docs), recycling buffers from
    /// `scratch` so steady-state queries are allocation-free apart from the
    /// result vector (like every other algorithm).
    ///
    /// [`QueryStats`] fields are label-scan counters here:
    /// `nodes_settled` = query label entries processed (the "main
    /// expansion"), `heap_pushes` = bucket entries folded in the candidate
    /// phase, `candidates` / `verifications` as usual, and
    /// `auxiliary_settled` = bucket entries scanned by verifications.
    /// `range_nn_queries` stays zero — there is no range probe. The
    /// dedicated hub-label counters report the same work in its own terms:
    /// `label_scans` = label entries read (the query's label plus one per
    /// candidate-hub examined while counting) and `bucket_scans` = bucket
    /// entries examined across both phases.
    ///
    /// When the scratch's tracer is active (the engine's
    /// `QueryEngine::with_tracing`), the two phases are reported as
    /// [`Phase::CandidateGen`] and [`Phase::Counting`] spans.
    ///
    /// # Panics
    /// Panics if `k == 0` or `query` lies outside the labeled graph.
    pub fn rknn_in(&self, query: NodeId, k: usize, scratch: &mut Scratch) -> RknnOutcome {
        assert!(k >= 1, "RkNN queries require k >= 1");
        assert!(query.index() < self.num_nodes(), "query node {query} outside the labeled graph");
        let mut stats = QueryStats::default();

        // Phase 1: exact distance from the query to every occupied node
        // sharing a hub (= every point of the query's component). Folding
        // goes through a pooled map (not a dense per-node array) so the
        // per-query cost stays proportional to the touched label entries,
        // never to the total point count; `touched` records first-touch
        // order, keeping the verification sequence deterministic.
        let candidate_span = scratch.tracer().begin();
        let mut dmin = scratch.take_node_dist_map();
        let mut touched = scratch.take_node_dists();
        {
            let mut dec = LabelDecoder::from_parts(scratch.take_indices(), scratch.take_weights());
            let (hubs, hub_dists) = self.labeling.label(query, &mut dec);
            for (i, &h) in hubs.iter().enumerate() {
                stats.nodes_settled += 1;
                stats.label_scans += 1;
                let dh = hub_dists[i];
                let (dists, nodes) = self.table.bucket(h);
                stats.heap_pushes += dists.len() as u64;
                stats.bucket_scans += dists.len() as u64;
                for (j, &d) in dists.iter().enumerate() {
                    let cand = dh + d;
                    match dmin.entry(nodes[j]) {
                        Entry::Vacant(slot) => {
                            slot.insert(cand);
                            touched.push((nodes[j], cand));
                        }
                        Entry::Occupied(mut slot) => {
                            if cand < *slot.get() {
                                slot.insert(cand);
                            }
                        }
                    }
                }
            }
            let (ranks, weights) = dec.into_parts();
            scratch.put_indices(ranks);
            scratch.put_weights(weights);
        }
        let folded = stats.heap_pushes;
        scratch.tracer_mut().end(Phase::CandidateGen, candidate_span, folded);

        // Phase 2: verify candidates. A point collocated with the query
        // (distance zero) is trivially a reverse neighbor and not reported,
        // matching the expansion algorithms.
        let counting_span = scratch.tracer().begin();
        let mut result: Vec<PointId> = Vec::new();
        for &(n, _) in touched.iter() {
            let dq = dmin[&n];
            if dq == Weight::ZERO {
                continue;
            }
            stats.candidates += 1;
            stats.verifications += 1;
            let closer = self.count_strictly_closer(n, dq, k, scratch, &mut stats);
            if closer < k {
                result.push(self.table.point_of(n).expect("candidate nodes are occupied"));
            }
        }
        scratch.put_node_dist_map(dmin);
        scratch.put_node_dists(touched);
        let counted = stats.auxiliary_settled;
        scratch.tracer_mut().end(Phase::Counting, counting_span, counted);
        RknnOutcome::from_points(result, stats)
    }

    /// Counts distinct data points other than the one on `node` with exact
    /// distance strictly below `bound` from it, stopping at `limit`.
    ///
    /// A point qualifies iff *some* hub of `node` certifies a sum below the
    /// bound (the minimal sum is the exact distance, every other sum only
    /// overestimates — an overestimate below a bound implies the exact
    /// distance is too), so scanning each bucket prefix and deduplicating
    /// into a set is exact. The point collocated with the query ties at
    /// exactly `bound` (the labels produce identical, commuted sums for both
    /// directions of a pair) and is therefore never counted — ties do not
    /// disqualify, as in the paper.
    fn count_strictly_closer(
        &self,
        node: NodeId,
        bound: Weight,
        limit: usize,
        scratch: &mut Scratch,
        stats: &mut QueryStats,
    ) -> usize {
        let mut seen = scratch.take_node_set();
        let mut count = 0;
        let mut dec = LabelDecoder::from_parts(scratch.take_indices(), scratch.take_weights());
        let (hubs, hub_dists) = self.labeling.label(node, &mut dec);
        'hubs: for (i, &h) in hubs.iter().enumerate() {
            stats.label_scans += 1;
            let dh = hub_dists[i];
            if dh >= bound {
                continue; // every sum through this hub is >= bound
            }
            let (dists, nodes) = self.table.bucket(h);
            for (j, &d) in dists.iter().enumerate() {
                if dh + d >= bound {
                    break; // bucket ascends
                }
                stats.auxiliary_settled += 1;
                stats.bucket_scans += 1;
                let other = nodes[j];
                if other != node && seen.insert(other) {
                    count += 1;
                    if count >= limit {
                        break 'hubs;
                    }
                }
            }
        }
        let (ranks, weights) = dec.into_parts();
        scratch.put_indices(ranks);
        scratch.put_weights(weights);
        scratch.put_node_set(seen);
        count
    }
}

impl HubLabelRknn for HubLabelIndex {
    fn num_nodes(&self) -> usize {
        self.num_nodes()
    }

    fn num_points(&self) -> usize {
        self.num_points()
    }

    fn rknn_from_labels(&self, query: NodeId, k: usize, scratch: &mut Scratch) -> RknnOutcome {
        self.rknn_in(query, k, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_core::{knn, naive};
    use rnn_graph::{Graph, GraphBuilder, NodePointSet};

    /// Cycle of 6 unit-weight nodes, points on 1, 3, 4 — the instance the
    /// naive baseline's manual analysis uses.
    fn cycle() -> (Graph, NodePointSet) {
        let mut b = GraphBuilder::new(6);
        for i in 0..6 {
            b.add_edge(i, (i + 1) % 6, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let pts = NodePointSet::from_nodes(6, [NodeId::new(1), NodeId::new(3), NodeId::new(4)]);
        (g, pts)
    }

    fn path5() -> (Graph, NodePointSet) {
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_edge(i, i + 1, 2.0).unwrap();
        }
        let g = b.build().unwrap();
        let pts = NodePointSet::from_nodes(5, [NodeId::new(0), NodeId::new(4)]);
        (g, pts)
    }

    #[test]
    fn k_nearest_matches_the_expansion_primitive() {
        let (g, pts) = path5();
        let index = HubLabelIndex::build(&g, &pts);
        for node in 0..5 {
            for k in 0..=3 {
                let via_labels = index.k_nearest(NodeId::new(node), k);
                let via_expansion = knn::k_nearest(&g, &pts, NodeId::new(node), k).found;
                assert_eq!(via_labels, via_expansion, "node {node} k {k}");
            }
        }
    }

    #[test]
    fn k_nearest_breaks_distance_ties_by_point_id() {
        let (g, pts) = cycle();
        let index = HubLabelIndex::build(&g, &pts);
        // From node 0: p@1 at 1, p@4 at 2, p@3 at 3 — but from node 5:
        // p@4 at 1, p@1 at 2, p@3 at 2 (tie between points 0 and 1).
        let nn = index.k_nearest(NodeId::new(5), 2);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].0, pts.point_at(NodeId::new(4)).unwrap());
        assert_eq!(nn[1].0, pts.point_at(NodeId::new(1)).unwrap(), "tie by point id");
        assert_eq!(nn[1].1.value(), 2.0);
    }

    #[test]
    fn rknn_matches_the_naive_baseline_on_the_cycle() {
        let (g, pts) = cycle();
        let index = HubLabelIndex::build(&g, &pts);
        for q in 0..6 {
            for k in 1..=3 {
                let via_labels = index.rknn(NodeId::new(q), k);
                let reference = naive::naive_rknn(&g, &pts, NodeId::new(q), k);
                assert_eq!(via_labels.points, reference.points, "q={q} k={k}");
            }
        }
    }

    #[test]
    fn rknn_excludes_collocated_and_unreachable_points() {
        // Two components: 0-1-2 (points on 0, 2) and 3-4 (point on 4).
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(3, 4, 1.0).unwrap();
        let g = b.build().unwrap();
        let pts = NodePointSet::from_nodes(5, [NodeId::new(0), NodeId::new(2), NodeId::new(4)]);
        let index = HubLabelIndex::build(&g, &pts);
        let out = index.rknn(NodeId::new(0), 1);
        // The collocated point (node 0) and the other component's point
        // (node 4) are out; the point on node 2 ties with the point on node
        // 0 (both at distance 2) and ties never disqualify.
        assert_eq!(out.points, vec![pts.point_at(NodeId::new(2)).unwrap()]);
        assert_eq!(out.stats.candidates, 1, "only the reachable non-collocated point");
        let naive_out = naive::naive_rknn(&g, &pts, NodeId::new(0), 1);
        assert_eq!(out.points, naive_out.points);
    }

    #[test]
    fn rknn_stats_count_label_work() {
        let (g, pts) = cycle();
        let index = HubLabelIndex::build(&g, &pts);
        let out = index.rknn(NodeId::new(0), 1);
        assert!(out.stats.nodes_settled > 0, "query label entries were processed");
        assert!(out.stats.heap_pushes > 0, "candidate-phase bucket entries were folded");
        assert_eq!(out.stats.candidates, 3);
        assert_eq!(out.stats.verifications, 3);
        assert_eq!(out.stats.range_nn_queries, 0, "no range probes in label space");
        // The dedicated hub-label counters: the query's own label plus at
        // least one candidate-label entry were read, and bucket entries were
        // examined in both phases (so they exceed the candidate-phase folds
        // alone whenever a verification scanned anything).
        assert!(out.stats.label_scans >= out.stats.nodes_settled + out.stats.verifications);
        assert_eq!(
            out.stats.bucket_scans,
            out.stats.heap_pushes + out.stats.auxiliary_settled,
            "bucket scans = candidate folds + counting prefix entries"
        );
    }

    #[test]
    fn tracer_reports_candidate_gen_and_counting_phases() {
        let (g, pts) = cycle();
        let index = HubLabelIndex::build(&g, &pts);
        let mut scratch = Scratch::new();
        scratch.tracer_mut().start("hub-label", 0, 2, None);
        let out = index.rknn_in(NodeId::new(0), 2, &mut scratch);
        scratch.tracer_mut().finish();
        let trace = scratch.tracer_mut().take_completed().expect("finished trace");
        let gen = trace.phase(rnn_obs::Phase::CandidateGen);
        let count = trace.phase(rnn_obs::Phase::Counting);
        assert_eq!(gen.calls, 1, "one candidate-generation span per query");
        assert_eq!(gen.work, out.stats.heap_pushes);
        assert_eq!(count.calls, 1, "one counting span per query");
        assert_eq!(count.work, out.stats.auxiliary_settled);
        assert_eq!(trace.phase(rnn_obs::Phase::Expansion).calls, 0, "no traversal phases");
        // Untraced queries return identical outcomes.
        assert_eq!(index.rknn(NodeId::new(0), 2), out);
    }

    #[test]
    fn register_metrics_publishes_label_gauges() {
        let (g, pts) = cycle();
        let index = HubLabelIndex::build(&g, &pts);
        let registry = MetricsRegistry::new();
        index.register_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("rnn_label_nodes"), Some(6));
        assert_eq!(snap.gauge("rnn_label_points"), Some(3));
        let stats = index.labeling().stats();
        assert_eq!(snap.gauge("rnn_label_entries"), Some(stats.entries as u64));
        assert_eq!(snap.gauge("rnn_label_bytes"), Some(stats.label_bytes() as u64));
    }

    #[test]
    fn steady_state_rknn_reuses_scratch_buffers() {
        let (g, pts) = cycle();
        let index = HubLabelIndex::build(&g, &pts);
        let mut scratch = Scratch::new();
        let first = index.rknn_in(NodeId::new(2), 2, &mut scratch);
        let created = scratch.created();
        for _ in 0..20 {
            let again = index.rknn_in(NodeId::new(2), 2, &mut scratch);
            assert_eq!(again, first);
        }
        assert_eq!(scratch.created(), created, "steady state allocates no new buffers");
        assert!(scratch.reuses() >= 20);
    }

    #[test]
    fn compressed_tiers_answer_queries_identically() {
        let (g, pts) = cycle();
        let full = HubLabelIndex::build(&g, &pts);
        let mut scratch = Scratch::new();
        for precision in [LabelPrecision::Exact, LabelPrecision::F32] {
            let compact = full.compressed(precision);
            assert!(compact.labeling().is_compressed());
            assert_eq!(compact.num_points(), full.num_points());
            for q in 0..6 {
                for k in 1..=3 {
                    assert_eq!(
                        compact.rknn_in(NodeId::new(q), k, &mut scratch).points,
                        full.rknn(NodeId::new(q), k).points,
                        "{precision:?} q={q} k={k}"
                    );
                }
                assert_eq!(compact.k_nearest(NodeId::new(q), 2), full.k_nearest(NodeId::new(q), 2));
            }
        }
    }

    #[test]
    fn incremental_point_ops_match_fresh_index() {
        let (g, pts) = cycle();
        let mut index = HubLabelIndex::build(&g, &pts);
        let grown = pts.with_point_on(NodeId::new(0));
        let id = index.insert_point(NodeId::new(0));
        assert_eq!(id, PointId::new(0), "node 0 becomes the first dense id");
        assert_eq!(index, HubLabelIndex::build(&g, &grown));
        for q in 0..6 {
            assert_eq!(
                index.rknn(NodeId::new(q), 2).points,
                naive::naive_rknn(&g, &grown, NodeId::new(q), 2).points,
                "q={q}"
            );
        }
        assert_eq!(index.remove_point(NodeId::new(0)), Some(PointId::new(0)));
        assert_eq!(index, HubLabelIndex::build(&g, &pts));
        assert_eq!(index.remove_point(NodeId::new(0)), None);
    }

    #[test]
    fn from_labeling_shares_preprocessing_across_point_sets() {
        let (g, pts) = cycle();
        let labeling = crate::HubLabeling::build(&g);
        let a = HubLabelIndex::from_labeling(labeling.clone(), &pts);
        let other = NodePointSet::from_nodes(6, [NodeId::new(0), NodeId::new(5)]);
        let b = HubLabelIndex::from_labeling(labeling, &other);
        assert_eq!(a.num_points(), 3);
        assert_eq!(b.num_points(), 2);
        assert_eq!(a.labeling(), b.labeling());
        assert_eq!(
            b.rknn(NodeId::new(1), 1).points,
            naive::naive_rknn(&g, &other, NodeId::new(1), 1).points
        );
    }

    #[test]
    fn oracle_trait_reports_sizes_and_routes_queries() {
        let (g, pts) = cycle();
        let index = HubLabelIndex::build(&g, &pts);
        let oracle: &dyn HubLabelRknn = &index;
        assert_eq!(oracle.num_nodes(), 6);
        assert_eq!(oracle.num_points(), 3);
        let out = oracle.rknn_from_labels(NodeId::new(0), 2, &mut Scratch::new());
        assert_eq!(out, index.rknn(NodeId::new(0), 2));
    }

    #[test]
    #[should_panic]
    fn k_zero_panics() {
        let (g, pts) = cycle();
        let _ = HubLabelIndex::build(&g, &pts).rknn(NodeId::new(0), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_query_panics() {
        let (g, pts) = cycle();
        let _ = HubLabelIndex::build(&g, &pts).rknn(NodeId::new(6), 1);
    }
}

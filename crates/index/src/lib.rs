//! Hub-label index subsystem: RkNN served from a precomputed labeling.
//!
//! The paper's expansion algorithms pay a Dijkstra-style traversal on every
//! query. On large networks a *2-hop cover* (hub labeling) turns shortest
//! path distance into a sorted-list intersection, and — following ReHub
//! (Efentakis & Pfoser, *Extending Hub Labels for Reverse k-Nearest Neighbor
//! Queries on Large-Scale Networks*) — turns k-NN and reverse-k-NN over a
//! point set into scans of small per-hub inverted lists. This crate is that
//! trade: one-time preprocessing for near-allocation-free, traversal-free
//! query latency, complementing (not replacing) the paper-faithful
//! algorithms in `rnn-core`.
//!
//! Three layers:
//!
//! * [`HubLabeling`] — a degree-ordered **pruned landmark labeling** (PLL,
//!   Akiba/Iwata/Yoshida) built over any [`rnn_graph::Topology`]: one pruned
//!   Dijkstra per node, in descending-degree order, each settling only nodes
//!   whose distance is not already covered by earlier (higher-ranked) hubs.
//!   The result is a compact per-node sorted hub list with exact distances:
//!   `d(u, v) = min over common hubs h of d(u, h) + d(h, v)`.
//! * [`HubPointTable`] — the inverted view of a labeling restricted to a
//!   data point set: for every hub, the points it covers sorted by distance.
//!   This is what makes point queries *output-sensitive*: a k-NN or
//!   verification scan touches label entries, never adjacency lists.
//! * [`HubLabelIndex`] — labeling + point table, answering label-based
//!   distance, k-NN over [`rnn_graph::PointsOnNodes`], and the ReHub-style
//!   monochromatic RkNN query. It implements
//!   [`rnn_core::precomputed::HubLabelRknn`], so
//!   [`rnn_core::Algorithm::HubLabel`] runs through `run_rknn`,
//!   [`rnn_core::engine::QueryEngine`] batches, scratch reuse and
//!   [`rnn_core::QueryStats`] exactly like the built-in algorithms.
//!
//! Result semantics are identical to `rnn-core`'s: a point `p` with
//! `d(p, q) > 0` is reported iff fewer than `k` *other* points are strictly
//! closer to `p` than the query; ties never disqualify, and the labeling's
//! `d(u,h) + d(h,v)` sums are symmetric in `u`/`v` (float addition commutes),
//! so tie handling cannot drift between the two directions of a pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod labeling;
pub mod point_table;

pub use index::HubLabelIndex;
pub use labeling::{HubLabeling, LabelStats};
pub use point_table::HubPointTable;

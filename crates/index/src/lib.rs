//! Hub-label index subsystem: RkNN served from a precomputed labeling.
//!
//! The paper's expansion algorithms pay a Dijkstra-style traversal on every
//! query. On large networks a *2-hop cover* (hub labeling) turns shortest
//! path distance into a sorted-list intersection, and — following ReHub
//! (Efentakis & Pfoser, *Extending Hub Labels for Reverse k-Nearest Neighbor
//! Queries on Large-Scale Networks*) — turns k-NN and reverse-k-NN over a
//! point set into scans of small per-hub inverted lists. This crate is that
//! trade: one-time preprocessing for near-allocation-free, traversal-free
//! query latency, complementing (not replacing) the paper-faithful
//! algorithms in `rnn-core`.
//!
//! Three layers:
//!
//! * [`HubLabeling`] — a degree-ordered **pruned landmark labeling** (PLL,
//!   Akiba/Iwata/Yoshida) built over any [`rnn_graph::Topology`]: one pruned
//!   Dijkstra per node, in descending-degree order, each settling only nodes
//!   whose distance is not already covered by earlier (higher-ranked) hubs.
//!   Construction batches roots into rank levels whose searches run on
//!   scoped worker threads ([`HubLabeling::build_with_threads`]) with
//!   thread-count-independent, byte-identical output. The result is a
//!   compact per-node sorted hub list with exact distances:
//!   `d(u, v) = min over common hubs h of d(u, h) + d(h, v)` — storable
//!   full-width or compressed (delta-varint ranks, exact or `f32`
//!   distances; [`HubLabeling::compressed`], [`LabelPrecision`]) behind one
//!   decoder-based API ([`LabelDecoder`]).
//! * [`HubPointTable`] — the inverted view of a labeling restricted to a
//!   data point set: for every hub, the occupied nodes it covers sorted by
//!   distance. This is what makes point queries *output-sensitive*: a k-NN
//!   or verification scan touches label entries, never adjacency lists.
//!   Point insert/delete is incremental — sorted splices into the affected
//!   node's hub buckets instead of a rebuild.
//! * [`HubLabelIndex`] — labeling + point table, answering label-based
//!   distance, k-NN over [`rnn_graph::PointsOnNodes`], and the ReHub-style
//!   monochromatic RkNN query. It implements
//!   [`rnn_core::precomputed::HubLabelRknn`], so
//!   [`rnn_core::Algorithm::HubLabel`] runs through `run_rknn`,
//!   [`rnn_core::engine::QueryEngine`] batches, scratch reuse and
//!   [`rnn_core::QueryStats`] exactly like the built-in algorithms.
//!
//! Result semantics are identical to `rnn-core`'s: a point `p` with
//! `d(p, q) > 0` is reported iff fewer than `k` *other* points are strictly
//! closer to `p` than the query; ties never disqualify, and the labeling's
//! `d(u,h) + d(h,v)` sums are symmetric in `u`/`v` (float addition commutes),
//! so tie handling cannot drift between the two directions of a pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod labeling;
pub mod point_table;

pub use index::HubLabelIndex;
pub use labeling::{
    HubLabeling, LabelBuildProgress, LabelDecoder, LabelPrecision, LabelStats, MAX_LEVEL_WIDTH,
};
pub use point_table::HubPointTable;

//! The per-hub inverted point table.
//!
//! A [`super::HubLabeling`] answers node-to-node distances; point queries
//! (k-NN, RkNN verification) additionally need "which data points does hub
//! `h` cover, and how far away are they?". [`HubPointTable`] is that
//! inverted view: for every hub, the `(distance, node)` pairs of all
//! occupied nodes whose label contains the hub, sorted by ascending
//! distance (ties by node id, so every scan is deterministic).
//!
//! By the 2-hop cover property, for any node `v` and point `p` in the same
//! component there is a common hub `h` on a shortest path, so
//! `min over hubs h of v  (d(v, h) + bucket_h(p))` is the exact network
//! distance `d(v, p)` — the minimum is reached at that covering hub, and
//! every other term only overestimates. This is what lets the index answer
//! point queries by scanning a few sorted bucket prefixes instead of
//! expanding the graph.
//!
//! # Incremental maintenance
//!
//! Buckets key entries by **node**, not point id. Dense point ids are
//! assigned in ascending node order (the [`NodePointSet`] invariant —
//! asserted at build), so `(distance, node)` order coincides with
//! `(distance, point)` order, and — crucially — inserting or removing one
//! point renumbers every later point id *without* touching any bucket
//! entry. [`HubPointTable::insert_point`] / [`HubPointTable::remove_point`]
//! therefore only sorted-insert/remove into the buckets of the affected
//! node's own hubs (one binary search + splice per label entry) plus one
//! splice of the point directory, instead of rebuilding all
//! `O(total label entries)` of the table. The mapping back from a bucket
//! node to its current point id is a binary search over the sorted
//! directory ([`HubPointTable::point_of`]).
//!
//! [`NodePointSet`]: rnn_graph::NodePointSet

use crate::labeling::{HubLabeling, LabelDecoder};
use rnn_graph::{NodeId, PointId, PointsOnNodes, Weight};

/// One hub's sorted `(distance, node)` entries.
#[derive(Clone, Debug, Default, PartialEq)]
struct Bucket {
    /// Distance from the hub to the occupied node, ascending.
    dists: Vec<Weight>,
    /// The occupied node of each entry (ascending among equal distances).
    nodes: Vec<NodeId>,
}

impl Bucket {
    /// First index whose `(dist, node)` is `>= (dist, node)` — the sorted
    /// insertion position, and the exact position of an existing entry.
    fn position(&self, dist: Weight, node: NodeId) -> usize {
        let (mut lo, mut hi) = (0, self.dists.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if (self.dists[mid], self.nodes[mid]) < (dist, node) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn insert(&mut self, dist: Weight, node: NodeId) {
        let pos = self.position(dist, node);
        self.dists.insert(pos, dist);
        self.nodes.insert(pos, node);
    }

    fn remove(&mut self, dist: Weight, node: NodeId) {
        let pos = self.position(dist, node);
        debug_assert!(
            pos < self.nodes.len() && self.nodes[pos] == node && self.dists[pos] == dist,
            "bucket entry to remove exists"
        );
        self.dists.remove(pos);
        self.nodes.remove(pos);
    }
}

/// Per-hub sorted lists of the occupied nodes the hub covers.
#[derive(Clone, Debug, PartialEq)]
pub struct HubPointTable {
    /// One bucket per hub rank.
    buckets: Vec<Bucket>,
    /// The node each point resides on, indexed by point id. Strictly
    /// ascending — dense point ids follow node order.
    node_of_point: Vec<NodeId>,
    /// Total bucket entries, maintained across incremental updates.
    entries: usize,
}

impl HubPointTable {
    /// Inverts `labeling` over a point set: every label entry of an occupied
    /// node becomes one bucket entry of its hub.
    ///
    /// # Panics
    ///
    /// Panics if a point lies outside the labeled graph or if point ids are
    /// not assigned in ascending node order (the [`rnn_graph::NodePointSet`]
    /// invariant that incremental maintenance relies on).
    pub fn build<P: PointsOnNodes + ?Sized>(labeling: &HubLabeling, points: &P) -> Self {
        let num_hubs = labeling.num_nodes();
        let num_points = points.num_points();
        let mut node_of_point = Vec::with_capacity(num_points);
        let mut buckets = vec![Bucket::default(); num_hubs];
        let mut entries = 0;
        let mut dec = LabelDecoder::new();
        for p in 0..num_points {
            let point = PointId::new(p);
            let node = points.node_of(point);
            assert!(
                node.index() < num_hubs,
                "point {point} on node {node} outside the labeled graph"
            );
            assert!(
                node_of_point.last().is_none_or(|&prev| prev < node),
                "point ids must ascend with node ids (got {point} on {node})"
            );
            node_of_point.push(node);
            let (ranks, dists) = labeling.label(node, &mut dec);
            for (i, &rank) in ranks.iter().enumerate() {
                buckets[rank as usize].dists.push(dists[i]);
                buckets[rank as usize].nodes.push(node);
                entries += 1;
            }
        }
        // Occupied nodes were visited in ascending order, so each bucket is
        // in node order; one sort per bucket yields (dist, node) order.
        for bucket in &mut buckets {
            let mut pairs: Vec<(Weight, NodeId)> =
                bucket.dists.iter().copied().zip(bucket.nodes.iter().copied()).collect();
            pairs.sort_unstable();
            for (i, (d, n)) in pairs.into_iter().enumerate() {
                bucket.dists[i] = d;
                bucket.nodes[i] = n;
            }
        }
        HubPointTable { buckets, node_of_point, entries }
    }

    /// The bucket of hub `rank`: parallel slices of distances (ascending)
    /// and the occupied nodes at those distances. Map a node to its current
    /// point id with [`HubPointTable::point_of`].
    pub fn bucket(&self, rank: u32) -> (&[Weight], &[NodeId]) {
        let bucket = &self.buckets[rank as usize];
        (&bucket.dists, &bucket.nodes)
    }

    /// Number of data points the table currently covers.
    pub fn num_points(&self) -> usize {
        self.node_of_point.len()
    }

    /// The node `point` resides on.
    pub fn node_of(&self, point: PointId) -> NodeId {
        self.node_of_point[point.index()]
    }

    /// The point residing on `node`, if any — the inverse of
    /// [`HubPointTable::node_of`], by binary search over the sorted point
    /// directory.
    pub fn point_of(&self, node: NodeId) -> Option<PointId> {
        self.node_of_point.binary_search(&node).ok().map(PointId::new)
    }

    /// The occupied nodes in point-id order (strictly ascending).
    pub fn nodes(&self) -> &[NodeId] {
        &self.node_of_point
    }

    /// Total bucket entries (= sum of label sizes over occupied nodes).
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Adds a point on `node`, splicing one entry into each bucket of the
    /// node's hubs — `O(label size)` bucket updates instead of a full
    /// rebuild. Returns the new point's id; every point on a higher node
    /// implicitly shifts up by one, exactly as a fresh
    /// [`HubPointTable::build`] over the grown set would number them.
    ///
    /// # Panics
    ///
    /// Panics if `node` already holds a point or lies outside the labeled
    /// graph.
    pub fn insert_point(&mut self, labeling: &HubLabeling, node: NodeId) -> PointId {
        assert!(node.index() < self.buckets.len(), "node {node} outside the labeled graph");
        let slot = match self.node_of_point.binary_search(&node) {
            Err(slot) => slot,
            Ok(_) => panic!("node {node} already holds a point"),
        };
        self.node_of_point.insert(slot, node);
        let mut dec = LabelDecoder::new();
        let (ranks, dists) = labeling.label(node, &mut dec);
        for (i, &rank) in ranks.iter().enumerate() {
            self.buckets[rank as usize].insert(dists[i], node);
        }
        self.entries += ranks.len();
        PointId::new(slot)
    }

    /// Removes the point on `node`, splicing one entry out of each bucket
    /// of the node's hubs. Returns the removed point's id (every higher
    /// point shifts down by one), or `None` if the node holds no point.
    pub fn remove_point(&mut self, labeling: &HubLabeling, node: NodeId) -> Option<PointId> {
        let slot = self.node_of_point.binary_search(&node).ok()?;
        self.node_of_point.remove(slot);
        let mut dec = LabelDecoder::new();
        let (ranks, dists) = labeling.label(node, &mut dec);
        for (i, &rank) in ranks.iter().enumerate() {
            self.buckets[rank as usize].remove(dists[i], node);
        }
        self.entries -= ranks.len();
        Some(PointId::new(slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_graph::{Graph, GraphBuilder, NodePointSet};

    fn path5() -> (Graph, NodePointSet) {
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_edge(i, i + 1, 2.0).unwrap();
        }
        let g = b.build().unwrap();
        let pts = NodePointSet::from_nodes(5, [NodeId::new(0), NodeId::new(2), NodeId::new(4)]);
        (g, pts)
    }

    fn label_of(labeling: &HubLabeling, node: NodeId) -> (Vec<u32>, Vec<Weight>) {
        let mut dec = LabelDecoder::new();
        let (r, d) = labeling.label(node, &mut dec);
        (r.to_vec(), d.to_vec())
    }

    #[test]
    fn buckets_are_sorted_and_cover_every_label_entry() {
        let (g, pts) = path5();
        let labeling = HubLabeling::build(&g);
        let table = HubPointTable::build(&labeling, &pts);
        assert_eq!(table.num_points(), 3);

        let expected_entries: usize = pts.nodes().iter().map(|&n| labeling.label_len(n)).sum();
        assert_eq!(table.entries(), expected_entries);

        let mut seen = 0;
        for rank in 0..labeling.num_nodes() as u32 {
            let (dists, nodes) = table.bucket(rank);
            assert_eq!(dists.len(), nodes.len());
            seen += dists.len();
            assert!(dists.windows(2).all(|w| w[0] <= w[1]), "bucket {rank} distances ascend");
            for (i, &n) in nodes.iter().enumerate() {
                // Each entry mirrors one label entry of the occupied node.
                let (ranks, ldists) = label_of(&labeling, n);
                let pos = ranks.iter().position(|&r| r == rank).unwrap();
                assert_eq!(ldists[pos], dists[i]);
                // The node maps back to the point that resides on it.
                let p = table.point_of(n).unwrap();
                assert_eq!(table.node_of(p), n);
                assert_eq!(pts.point_at(n), Some(p));
            }
        }
        assert_eq!(seen, table.entries());
    }

    #[test]
    fn node_of_round_trips_and_distance_ties_order_by_node_id() {
        let (g, pts) = path5();
        let labeling = HubLabeling::build(&g);
        let table = HubPointTable::build(&labeling, &pts);
        for (p, n) in pts.iter() {
            assert_eq!(table.node_of(p), n);
            assert_eq!(table.point_of(n), Some(p));
        }
        assert_eq!(table.point_of(NodeId::new(1)), None);
        // Nodes 0 and 4 (points 0 and 2) are both at distance 4 from node
        // 2; whichever hub covers both must list them in node order — which
        // is point-id order, since dense ids follow node order.
        for rank in 0..labeling.num_nodes() as u32 {
            let (dists, nodes) = table.bucket(rank);
            for w in 0..dists.len().saturating_sub(1) {
                if dists[w] == dists[w + 1] {
                    assert!(nodes[w] < nodes[w + 1], "equal-distance tie order");
                }
            }
        }
    }

    #[test]
    fn empty_point_set_yields_empty_buckets() {
        let (g, _) = path5();
        let labeling = HubLabeling::build(&g);
        let table = HubPointTable::build(&labeling, &NodePointSet::empty(5));
        assert_eq!(table.num_points(), 0);
        assert_eq!(table.entries(), 0);
        for rank in 0..5 {
            assert!(table.bucket(rank).0.is_empty());
        }
    }

    #[test]
    fn insert_and_remove_match_fresh_builds_bucket_for_bucket() {
        let (g, pts) = path5();
        let labeling = HubLabeling::build(&g);
        let mut table = HubPointTable::build(&labeling, &pts);

        // Insert on node 1: identical to building over the grown set, and
        // the new point takes id 1 (between nodes 0 and 2).
        let added = pts.with_point_on(NodeId::new(1));
        let id = table.insert_point(&labeling, NodeId::new(1));
        assert_eq!(id, PointId::new(1));
        assert_eq!(table, HubPointTable::build(&labeling, &added));

        // Remove it again: back to the original table exactly.
        assert_eq!(table.remove_point(&labeling, NodeId::new(1)), Some(PointId::new(1)));
        assert_eq!(table, HubPointTable::build(&labeling, &pts));

        // Removing an unoccupied node is a no-op.
        assert_eq!(table.remove_point(&labeling, NodeId::new(3)), None);
        assert_eq!(table, HubPointTable::build(&labeling, &pts));

        // Drain everything; the empty table matches an empty fresh build.
        for &n in pts.nodes() {
            assert!(table.remove_point(&labeling, n).is_some());
        }
        assert_eq!(table.entries(), 0);
        assert_eq!(table, HubPointTable::build(&labeling, &NodePointSet::empty(5)));
    }

    #[test]
    #[should_panic(expected = "already holds a point")]
    fn inserting_on_an_occupied_node_panics() {
        let (g, pts) = path5();
        let labeling = HubLabeling::build(&g);
        let mut table = HubPointTable::build(&labeling, &pts);
        table.insert_point(&labeling, NodeId::new(0));
    }
}

//! The per-hub inverted point table.
//!
//! A [`super::HubLabeling`] answers node-to-node distances; point queries
//! (k-NN, RkNN verification) additionally need "which data points does hub
//! `h` cover, and how far away are they?". [`HubPointTable`] is that
//! inverted view: for every hub, the `(distance, point)` pairs of all data
//! points whose node's label contains the hub, sorted by ascending distance
//! (ties by point id, so every scan is deterministic).
//!
//! By the 2-hop cover property, for any node `v` and point `p` in the same
//! component there is a common hub `h` on a shortest path, so
//! `min over hubs h of v  (d(v, h) + bucket_h(p))` is the exact network
//! distance `d(v, p)` — the minimum is reached at that covering hub, and
//! every other term only overestimates. This is what lets the index answer
//! point queries by scanning a few sorted bucket prefixes instead of
//! expanding the graph.

use crate::labeling::HubLabeling;
use rnn_graph::{NodeId, PointId, PointsOnNodes, Weight};

/// Per-hub sorted lists of the data points the hub covers.
#[derive(Clone, Debug, PartialEq)]
pub struct HubPointTable {
    /// CSR offsets per hub rank; length `num_hubs + 1`.
    offsets: Vec<usize>,
    /// Distance from the hub to the point's node, ascending per bucket.
    dists: Vec<Weight>,
    /// The point of each entry (ascending point id among equal distances).
    points: Vec<PointId>,
    /// The node each point resides on, indexed by point id.
    node_of_point: Vec<NodeId>,
}

impl HubPointTable {
    /// Inverts `labeling` over a point set: every label entry of an occupied
    /// node becomes one bucket entry of its hub.
    pub fn build<P: PointsOnNodes + ?Sized>(labeling: &HubLabeling, points: &P) -> Self {
        let num_hubs = labeling.num_nodes();
        let num_points = points.num_points();
        let mut node_of_point = Vec::with_capacity(num_points);
        let mut entries: Vec<(u32, Weight, PointId)> = Vec::new();
        for p in 0..num_points {
            let point = PointId::new(p);
            let node = points.node_of(point);
            assert!(
                node.index() < num_hubs,
                "point {point} on node {node} outside the labeled graph"
            );
            node_of_point.push(node);
            let (ranks, dists) = labeling.label(node);
            for (i, &rank) in ranks.iter().enumerate() {
                entries.push((rank, dists[i], point));
            }
        }
        entries.sort_unstable();

        let mut offsets = Vec::with_capacity(num_hubs + 1);
        let mut dists = Vec::with_capacity(entries.len());
        let mut points_col = Vec::with_capacity(entries.len());
        offsets.push(0);
        let mut cursor = 0;
        for rank in 0..num_hubs as u32 {
            while cursor < entries.len() && entries[cursor].0 == rank {
                dists.push(entries[cursor].1);
                points_col.push(entries[cursor].2);
                cursor += 1;
            }
            offsets.push(cursor);
        }
        debug_assert_eq!(cursor, entries.len());
        HubPointTable { offsets, dists, points: points_col, node_of_point }
    }

    /// The bucket of hub `rank`: parallel slices of distances (ascending)
    /// and points.
    pub fn bucket(&self, rank: u32) -> (&[Weight], &[PointId]) {
        let (lo, hi) = (self.offsets[rank as usize], self.offsets[rank as usize + 1]);
        (&self.dists[lo..hi], &self.points[lo..hi])
    }

    /// Number of data points the table was built over.
    pub fn num_points(&self) -> usize {
        self.node_of_point.len()
    }

    /// The node `point` resides on.
    pub fn node_of(&self, point: PointId) -> NodeId {
        self.node_of_point[point.index()]
    }

    /// Total bucket entries (= sum of label sizes over occupied nodes).
    pub fn entries(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_graph::{Graph, GraphBuilder, NodePointSet};

    fn path5() -> (Graph, NodePointSet) {
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_edge(i, i + 1, 2.0).unwrap();
        }
        let g = b.build().unwrap();
        let pts = NodePointSet::from_nodes(5, [NodeId::new(0), NodeId::new(2), NodeId::new(4)]);
        (g, pts)
    }

    #[test]
    fn buckets_are_sorted_and_cover_every_label_entry() {
        let (g, pts) = path5();
        let labeling = HubLabeling::build(&g);
        let table = HubPointTable::build(&labeling, &pts);
        assert_eq!(table.num_points(), 3);

        let expected_entries: usize = pts.nodes().iter().map(|&n| labeling.label(n).0.len()).sum();
        assert_eq!(table.entries(), expected_entries);

        let mut seen = 0;
        for rank in 0..labeling.num_nodes() as u32 {
            let (dists, points) = table.bucket(rank);
            assert_eq!(dists.len(), points.len());
            seen += dists.len();
            assert!(dists.windows(2).all(|w| w[0] <= w[1]), "bucket {rank} distances ascend");
            for (i, &p) in points.iter().enumerate() {
                // Each entry mirrors one label entry of the point's node.
                let (ranks, ldists) = labeling.label(pts.node_of(p));
                let pos = ranks.iter().position(|&r| r == rank).unwrap();
                assert_eq!(ldists[pos], dists[i]);
            }
        }
        assert_eq!(seen, table.entries());
    }

    #[test]
    fn node_of_round_trips_and_distance_ties_order_by_point_id() {
        let (g, pts) = path5();
        let labeling = HubLabeling::build(&g);
        let table = HubPointTable::build(&labeling, &pts);
        for (p, n) in pts.iter() {
            assert_eq!(table.node_of(p), n);
        }
        // Points 0 (node 0) and 2 (node 4) are both at distance 4 from node
        // 2; whichever hub covers both must list them in point id order.
        for rank in 0..labeling.num_nodes() as u32 {
            let (dists, points) = table.bucket(rank);
            for w in 0..dists.len().saturating_sub(1) {
                if dists[w] == dists[w + 1] {
                    assert!(points[w] < points[w + 1], "equal-distance tie order");
                }
            }
        }
    }

    #[test]
    fn empty_point_set_yields_empty_buckets() {
        let (g, _) = path5();
        let labeling = HubLabeling::build(&g);
        let table = HubPointTable::build(&labeling, &NodePointSet::empty(5));
        assert_eq!(table.num_points(), 0);
        assert_eq!(table.entries(), 0);
        for rank in 0..5 {
            assert!(table.bucket(rank).0.is_empty());
        }
    }
}

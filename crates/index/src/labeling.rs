//! Degree-ordered pruned landmark labeling (PLL) over a [`Topology`].
//!
//! Every node `v` gets a sorted list of *hubs* `(h, d(v, h))` such that any
//! connected pair `(u, v)` shares at least one hub on a shortest `u`–`v`
//! path (the 2-hop cover property). Distances are then answered without
//! touching the graph:
//!
//! ```text
//! d(u, v) = min over common hubs h of  d(u, h) + d(h, v)
//! ```
//!
//! Construction processes nodes in descending-degree order (high-degree
//! nodes cover the most shortest paths) and runs one *pruned* Dijkstra per
//! node: when settling `u` at distance `d` from the current root, the
//! expansion is cut off if already-committed labels certify a distance
//! `<= d` — those paths are covered by higher-ranked hubs, so neither a
//! label nor further expansion through `u` is needed. Pruning is what keeps
//! labels small: on road-like graphs the average label is polylogarithmic in
//! practice.
//!
//! # Level-synchronous construction
//!
//! Roots are batched into *levels* of geometrically growing width (1, 2, 4,
//! …, capped at [`MAX_LEVEL_WIDTH`]), a fixed function of the node count.
//! Within a level every root's pruned Dijkstra sees only the labels
//! committed by strictly earlier levels, which makes the per-root searches
//! independent pure functions of the committed state: they can run on any
//! number of scoped worker threads and still produce the exact same entries.
//! A sequential commit pass then appends each root's entries in rank order,
//! so the resulting CSR is **byte-identical at every thread count** —
//! [`HubLabeling::build_with_threads`] with 1, 2 or 8 threads returns `==`
//! labelings. The small width cap keeps the early (high-impact) hubs nearly
//! sequential, so the loss of within-level pruning costs only a few percent
//! extra entries versus fully sequential PLL.
//!
//! # Label storage
//!
//! Hubs are stored as *ranks* (position in the construction order), so label
//! lists are naturally sorted by rank as they are appended and intersect by
//! a linear merge. Two physical layouts sit behind the same API:
//!
//! - **Full** (the default built by [`HubLabeling::build`]): plain `u32`
//!   ranks and `f64` [`Weight`] distances in CSR arrays; `label()` returns
//!   zero-copy borrowed slices.
//! - **Compact** ([`HubLabeling::compressed`]): delta-encoded LEB128 varint
//!   ranks, with distances either exact `f64` ([`LabelPrecision::Exact`]) or
//!   rounded `f32` ([`LabelPrecision::F32`]). `label()` decodes into a
//!   caller-provided [`LabelDecoder`], which query paths recycle from their
//!   [`rnn_core::scratch::Scratch`] arena so steady-state decoding is
//!   allocation-free.

use rnn_core::expansion::{ExpansionBuffers, NetworkExpansion};
use rnn_graph::{NodeId, Topology, Weight};
use rnn_obs::{Counter, MetricsRegistry};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on the number of roots per construction level.
///
/// Width grows geometrically from 1 so the highest-ranked hubs (whose labels
/// prune everything downstream) are committed almost one at a time, then
/// saturates here to expose enough parallelism on large graphs.
pub const MAX_LEVEL_WIDTH: usize = 512;

/// Distance storage tier for [`HubLabeling::compressed`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LabelPrecision {
    /// Keep full `f64` distances: compressed ranks, bit-exact distances.
    Exact,
    /// Round distances to `f32`: halves the distance array at the cost of
    /// ~1e-7 relative error per label entry.
    F32,
}

/// Physical layout of the per-node hub lists.
#[derive(Clone, Debug, PartialEq)]
enum LabelStore {
    /// Plain CSR arrays; `label()` borrows directly.
    Full {
        /// Hub lists, as ranks in the construction order, ascending per node.
        hub_ranks: Vec<u32>,
        /// Distance to the corresponding hub.
        hub_dists: Vec<Weight>,
    },
    /// Delta-encoded varint ranks with exact or `f32` distances.
    Compact {
        /// Byte ranges into `rank_bytes`, one per node; length `n + 1`.
        byte_offsets: Vec<usize>,
        /// LEB128 stream: first rank raw, then successive deltas (`>= 1`).
        rank_bytes: Vec<u8>,
        /// Distances, indexed by the entry offsets.
        dists: CompactDists,
    },
}

/// Distance array of a compact store.
#[derive(Clone, Debug, PartialEq)]
enum CompactDists {
    Exact(Vec<Weight>),
    F32(Vec<f32>),
}

/// Reusable decode buffer for [`HubLabeling::label`].
///
/// On the full layout it is untouched (the call returns borrowed slices);
/// on the compact layout the ranks — and, for the `f32` tier, the widened
/// distances — are decoded into it. Query paths keep one per worker and
/// rebuild it from pooled scratch vectors via [`LabelDecoder::from_parts`] /
/// [`LabelDecoder::into_parts`] so decoding allocates nothing in steady
/// state.
#[derive(Debug, Default)]
pub struct LabelDecoder {
    ranks: Vec<u32>,
    dists: Vec<Weight>,
}

impl LabelDecoder {
    /// An empty decoder. Decoding grows it; the full layout never does.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a decoder around existing (e.g. pooled) buffers. Contents are
    /// cleared on the next decode, capacity is kept.
    pub fn from_parts(ranks: Vec<u32>, dists: Vec<Weight>) -> Self {
        LabelDecoder { ranks, dists }
    }

    /// Takes the backing buffers apart, e.g. to return them to a scratch
    /// pool.
    pub fn into_parts(self) -> (Vec<u32>, Vec<Weight>) {
        (self.ranks, self.dists)
    }
}

/// Appends `v` to `buf` as a LEB128 varint (7 payload bits per byte).
fn write_varint(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint starting at `*pos`, advancing `*pos` past it.
fn read_varint(bytes: &[u8], pos: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        v |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// A pruned landmark labeling: per-node sorted hub lists with distances.
///
/// Immutable once built; shared by reference across query threads.
#[derive(Clone, Debug, PartialEq)]
pub struct HubLabeling {
    /// CSR entry offsets, length `num_nodes + 1`; shared by both layouts.
    offsets: Vec<usize>,
    /// The physical hub-list storage.
    store: LabelStore,
    /// The construction order: `node_of_rank[r]` is the node with rank `r`.
    node_of_rank: Vec<NodeId>,
    /// Inverse of `node_of_rank`.
    rank_of_node: Vec<u32>,
}

/// Wait-free build-progress counters for the label construction, so a
/// long-running build over a large graph is observable while it runs.
///
/// [`LabelBuildProgress::register`] wires the counters into a
/// [`MetricsRegistry`] under `rnn_label_build_roots_total` (roots whose
/// pruned Dijkstra has committed) and `rnn_label_build_entries_total` (label
/// entries committed); [`LabelBuildProgress::detached`] gives free-standing
/// counters for callers that only want to poll. Handles are cheap clones of
/// the same cells — pass the same instance to
/// [`HubLabeling::build_with_threads_observed`] and poll it from any thread.
#[derive(Clone)]
pub struct LabelBuildProgress {
    roots: Counter,
    entries: Counter,
}

impl LabelBuildProgress {
    /// Progress counters registered in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        LabelBuildProgress {
            roots: registry.counter("rnn_label_build_roots_total"),
            entries: registry.counter("rnn_label_build_entries_total"),
        }
    }

    /// Free-standing progress counters, attached to no registry.
    pub fn detached() -> Self {
        LabelBuildProgress { roots: Counter::detached(), entries: Counter::detached() }
    }

    /// Roots whose pruned Dijkstra has been committed so far.
    pub fn roots_done(&self) -> u64 {
        self.roots.value()
    }

    /// Label entries committed so far.
    pub fn entries_committed(&self) -> u64 {
        self.entries.value()
    }
}

impl std::fmt::Debug for LabelBuildProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LabelBuildProgress")
            .field("roots_done", &self.roots_done())
            .field("entries_committed", &self.entries_committed())
            .finish()
    }
}

/// Size statistics of a labeling, reported by the `repro` experiments.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LabelStats {
    /// Number of labeled nodes.
    pub nodes: usize,
    /// Total label entries over all nodes.
    pub entries: usize,
    /// Largest single label.
    pub max_label: usize,
    /// Actual bytes held by the label arrays of the current layout
    /// (ranks + distances + CSR offsets).
    pub label_bytes: usize,
}

impl LabelStats {
    /// Average label entries per node.
    pub fn avg_label(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        self.entries as f64 / self.nodes as f64
    }

    /// Bytes held by the label arrays under the labeling's actual layout:
    /// full-width CSR arrays, or the varint rank stream plus the exact/`f32`
    /// distance array plus both offset tables.
    pub fn label_bytes(&self) -> usize {
        self.label_bytes
    }
}

/// Per-worker state for the pruned per-root Dijkstras: the rank-indexed
/// root-distance table and the reusable expansion buffers.
struct RootScratch {
    /// Distances from the current root to its hubs, indexed by rank; only
    /// the entries of the root's committed label are populated at any time.
    root_dist: Vec<Weight>,
    bufs: ExpansionBuffers,
}

impl RootScratch {
    fn new(n: usize) -> Self {
        RootScratch { root_dist: vec![Weight::INFINITY; n], bufs: ExpansionBuffers::new() }
    }

    /// One pruned Dijkstra from `root` against the committed `labels`,
    /// returning the `(node, distance)` entries this root contributes, in
    /// settle order. A pure function of `(topo, labels, root)` — this is
    /// what makes the level-parallel build thread-count-deterministic.
    fn search<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        labels: &[Vec<(u32, Weight)>],
        root: NodeId,
    ) -> Vec<(NodeId, Weight)> {
        for &(h, d) in &labels[root.index()] {
            self.root_dist[h as usize] = d;
        }
        let mut out = Vec::new();
        let bufs = std::mem::replace(&mut self.bufs, ExpansionBuffers::new());
        let mut exp = NetworkExpansion::reusing(topo, bufs, std::iter::once((root, Weight::ZERO)));
        while let Some((u, d)) = exp.next_settled_unexpanded() {
            // Prune: if committed higher-ranked hubs already certify
            // d(root, u) <= d, this shortest path is covered — no label, and
            // no expansion through u (everything beyond is covered too).
            let covered =
                labels[u.index()].iter().any(|&(h, d2)| self.root_dist[h as usize] + d2 <= d);
            if covered {
                continue;
            }
            out.push((u, d));
            exp.expand_from(u, d);
        }
        self.bufs = exp.into_buffers();
        for &(h, _) in &labels[root.index()] {
            self.root_dist[h as usize] = Weight::INFINITY;
        }
        out
    }
}

/// Runs the pruned Dijkstras of one level's `roots`, each against the same
/// committed `labels`, on up to `threads` scoped workers. Results come back
/// in root order regardless of scheduling.
fn run_level<T: Topology + ?Sized>(
    topo: &T,
    labels: &[Vec<(u32, Weight)>],
    roots: &[NodeId],
    threads: usize,
) -> Vec<Vec<(NodeId, Weight)>> {
    let workers = threads.min(roots.len());
    if workers <= 1 {
        let mut scratch = RootScratch::new(labels.len());
        return roots.iter().map(|&root| scratch.search(topo, labels, root)).collect();
    }
    // The engine's worker pattern: scoped threads pull root indices off a
    // shared cursor and return (index, result) pairs merged into root order.
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Vec<(NodeId, Weight)>>> = (0..roots.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                s.spawn(move || {
                    let mut scratch = RootScratch::new(labels.len());
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= roots.len() {
                            break;
                        }
                        out.push((i, scratch.search(topo, labels, roots[i])));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("label construction worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    slots.into_iter().map(|slot| slot.expect("every root is searched exactly once")).collect()
}

impl HubLabeling {
    /// Builds the labeling sequentially (one worker). Identical output to
    /// [`HubLabeling::build_with_threads`] at any thread count.
    pub fn build<T: Topology + ?Sized>(topo: &T) -> Self {
        Self::build_with_threads(topo, 1)
    }

    /// Builds the labeling with the level-synchronous parallel algorithm
    /// described in the module docs, using up to `threads` worker threads
    /// per level.
    ///
    /// The construction order is descending degree, ties by ascending node
    /// id; levels are a fixed function of the node count. The result —
    /// including entry order inside every label — does not depend on
    /// `threads`.
    ///
    /// The cost model is the same as the algorithms': adjacency fetches go
    /// through [`Topology::visit_neighbors`], so building over a paged
    /// backend is accounted I/O like any traversal.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn build_with_threads<T: Topology + ?Sized>(topo: &T, threads: usize) -> Self {
        Self::build_with_threads_observed(topo, threads, &LabelBuildProgress::detached())
    }

    /// [`HubLabeling::build_with_threads`] reporting commit progress through
    /// `progress` (one bump per committed root / label entry), so dashboards
    /// can watch a long build advance. Progress reporting never changes the
    /// result.
    pub fn build_with_threads_observed<T: Topology + ?Sized>(
        topo: &T,
        threads: usize,
        progress: &LabelBuildProgress,
    ) -> Self {
        assert!(threads >= 1, "label construction needs at least one thread");
        let n = topo.num_nodes();

        // Construction order: descending degree, then ascending node id.
        let mut degree = vec![0u32; n];
        for (v, slot) in degree.iter_mut().enumerate() {
            let mut d = 0u32;
            topo.visit_neighbors(NodeId::new(v), &mut |_| d += 1);
            *slot = d;
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| degree[b as usize].cmp(&degree[a as usize]).then(a.cmp(&b)));
        let node_of_rank: Vec<NodeId> = order.iter().map(|&v| NodeId::new(v as usize)).collect();
        let mut rank_of_node = vec![0u32; n];
        for (rank, &v) in order.iter().enumerate() {
            rank_of_node[v as usize] = rank as u32;
        }

        // Per-node labels, grown level by level; entries end up in ascending
        // rank order because levels commit in rank order.
        let mut labels: Vec<Vec<(u32, Weight)>> = vec![Vec::new(); n];
        let mut level_start = 0usize;
        let mut width_cap = 1usize;
        while level_start < n {
            let width = width_cap.min(MAX_LEVEL_WIDTH).min(n - level_start);
            let roots = &node_of_rank[level_start..level_start + width];
            let results = run_level(topo, &labels, roots, threads);
            // Sequential commit pass, in rank order within the level.
            for (i, entries) in results.into_iter().enumerate() {
                let rank = (level_start + i) as u32;
                progress.entries.add(entries.len() as u64);
                for (node, d) in entries {
                    labels[node.index()].push((rank, d));
                }
            }
            progress.roots.add(width as u64);
            level_start += width;
            width_cap = width_cap.saturating_mul(2);
        }

        // Freeze into the full-width CSR.
        let mut offsets = Vec::with_capacity(n + 1);
        let entries: usize = labels.iter().map(Vec::len).sum();
        let mut hub_ranks = Vec::with_capacity(entries);
        let mut hub_dists = Vec::with_capacity(entries);
        offsets.push(0);
        for label in &labels {
            debug_assert!(label.windows(2).all(|w| w[0].0 < w[1].0), "ranks ascend");
            for &(h, d) in label {
                hub_ranks.push(h);
                hub_dists.push(d);
            }
            offsets.push(hub_ranks.len());
        }
        HubLabeling {
            offsets,
            store: LabelStore::Full { hub_ranks, hub_dists },
            node_of_rank,
            rank_of_node,
        }
    }

    /// Re-encodes this labeling into the compact layout: delta-encoded
    /// varint ranks, distances per `precision`. Semantically the same
    /// labeling — same nodes, hubs and entry order — behind the same API.
    pub fn compressed(&self, precision: LabelPrecision) -> HubLabeling {
        let n = self.num_nodes();
        let entries = self.offsets[n];
        let mut byte_offsets = Vec::with_capacity(n + 1);
        let mut rank_bytes = Vec::new();
        let mut exact = Vec::new();
        let mut narrow = Vec::new();
        match precision {
            LabelPrecision::Exact => exact.reserve(entries),
            LabelPrecision::F32 => narrow.reserve(entries),
        }
        let mut dec = LabelDecoder::new();
        byte_offsets.push(0);
        for v in 0..n {
            let (ranks, dists) = self.label(NodeId::new(v), &mut dec);
            let mut prev = 0u32;
            for (i, &r) in ranks.iter().enumerate() {
                write_varint(&mut rank_bytes, if i == 0 { r } else { r - prev });
                prev = r;
            }
            byte_offsets.push(rank_bytes.len());
            match precision {
                LabelPrecision::Exact => exact.extend_from_slice(dists),
                LabelPrecision::F32 => narrow.extend(dists.iter().map(|d| d.value() as f32)),
            }
        }
        let dists = match precision {
            LabelPrecision::Exact => CompactDists::Exact(exact),
            LabelPrecision::F32 => CompactDists::F32(narrow),
        };
        HubLabeling {
            offsets: self.offsets.clone(),
            store: LabelStore::Compact { byte_offsets, rank_bytes, dists },
            node_of_rank: self.node_of_rank.clone(),
            rank_of_node: self.rank_of_node.clone(),
        }
    }

    /// Whether this labeling uses the compact (varint-rank) layout.
    pub fn is_compressed(&self) -> bool {
        matches!(self.store, LabelStore::Compact { .. })
    }

    /// Number of labeled nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_of_rank.len()
    }

    /// Number of entries in the label of `node`.
    pub fn label_len(&self, node: NodeId) -> usize {
        self.offsets[node.index() + 1] - self.offsets[node.index()]
    }

    /// The label of `node`: parallel slices of hub ranks (ascending) and
    /// distances to them.
    ///
    /// On the full layout the slices borrow the CSR directly and `dec` is
    /// untouched; on the compact layout they are decoded into `dec`. Either
    /// way they are valid until the next `label()` call with the same
    /// decoder.
    pub fn label<'a>(
        &'a self,
        node: NodeId,
        dec: &'a mut LabelDecoder,
    ) -> (&'a [u32], &'a [Weight]) {
        let (lo, hi) = (self.offsets[node.index()], self.offsets[node.index() + 1]);
        match &self.store {
            LabelStore::Full { hub_ranks, hub_dists } => (&hub_ranks[lo..hi], &hub_dists[lo..hi]),
            LabelStore::Compact { byte_offsets, rank_bytes, dists } => {
                dec.ranks.clear();
                let mut pos = byte_offsets[node.index()];
                let end = byte_offsets[node.index() + 1];
                let mut prev = 0u32;
                while pos < end {
                    let delta = read_varint(rank_bytes, &mut pos);
                    prev = if dec.ranks.is_empty() { delta } else { prev + delta };
                    dec.ranks.push(prev);
                }
                debug_assert_eq!(dec.ranks.len(), hi - lo, "rank stream length matches CSR");
                match dists {
                    CompactDists::Exact(d) => (&dec.ranks, &d[lo..hi]),
                    CompactDists::F32(d) => {
                        dec.dists.clear();
                        dec.dists.extend(d[lo..hi].iter().map(|&x| Weight::new(f64::from(x))));
                        (&dec.ranks, &dec.dists)
                    }
                }
            }
        }
    }

    /// The node acting as the hub with construction rank `rank`.
    pub fn hub_node(&self, rank: u32) -> NodeId {
        self.node_of_rank[rank as usize]
    }

    /// The construction rank of `node` (0 = first / highest degree).
    pub fn rank_of(&self, node: NodeId) -> u32 {
        self.rank_of_node[node.index()]
    }

    /// The label-based shortest path distance between two nodes, or `None`
    /// if they share no hub (different connected components).
    ///
    /// Symmetric by construction: the same hub set and the same commutative
    /// sums are considered for `(u, v)` and `(v, u)`.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let mut dec_u = LabelDecoder::new();
        let mut dec_v = LabelDecoder::new();
        let (hu, du) = self.label(u, &mut dec_u);
        let (hv, dv) = self.label(v, &mut dec_v);
        let mut best: Option<Weight> = None;
        let (mut i, mut j) = (0, 0);
        while i < hu.len() && j < hv.len() {
            match hu[i].cmp(&hv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let through = du[i] + dv[j];
                    best = Some(best.map_or(through, |b| b.min(through)));
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Size statistics of the labeling under its current layout.
    pub fn stats(&self) -> LabelStats {
        let nodes = self.num_nodes();
        let entries = self.offsets[nodes];
        let max_label =
            (0..nodes).map(|v| self.offsets[v + 1] - self.offsets[v]).max().unwrap_or(0);
        let offset_bytes = self.offsets.len() * std::mem::size_of::<usize>();
        let label_bytes = match &self.store {
            LabelStore::Full { hub_ranks, hub_dists } => {
                offset_bytes
                    + hub_ranks.len() * std::mem::size_of::<u32>()
                    + hub_dists.len() * std::mem::size_of::<Weight>()
            }
            LabelStore::Compact { byte_offsets, rank_bytes, dists } => {
                let dist_bytes = match dists {
                    CompactDists::Exact(d) => d.len() * std::mem::size_of::<Weight>(),
                    CompactDists::F32(d) => d.len() * std::mem::size_of::<f32>(),
                };
                offset_bytes
                    + byte_offsets.len() * std::mem::size_of::<usize>()
                    + rank_bytes.len()
                    + dist_bytes
            }
        };
        LabelStats { nodes, entries, max_label, label_bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_core::expansion::network_distance;
    use rnn_graph::{Graph, GraphBuilder};

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(0, 2, 4.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.build().unwrap()
    }

    /// A denser exact-weight graph: 4x4 grid with 0.25-step weights.
    fn grid4() -> Graph {
        let mut b = GraphBuilder::new(16);
        for r in 0..4 {
            for c in 0..4 {
                let v = r * 4 + c;
                if c + 1 < 4 {
                    b.add_edge(v, v + 1, 0.25 * (1 + (v * 5 % 7)) as f64).unwrap();
                }
                if r + 1 < 4 {
                    b.add_edge(v, v + 4, 0.25 * (1 + (v * 3 % 5)) as f64).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    fn label_of(labeling: &HubLabeling, v: usize) -> (Vec<u32>, Vec<Weight>) {
        let mut dec = LabelDecoder::new();
        let (r, d) = labeling.label(NodeId::new(v), &mut dec);
        (r.to_vec(), d.to_vec())
    }

    #[test]
    fn build_progress_counts_roots_and_entries() {
        let g = grid4();
        let registry = MetricsRegistry::new();
        let progress = LabelBuildProgress::register(&registry);
        assert_eq!((progress.roots_done(), progress.entries_committed()), (0, 0));
        let observed = HubLabeling::build_with_threads_observed(&g, 2, &progress);
        assert_eq!(observed, HubLabeling::build(&g), "progress reporting changes nothing");
        assert_eq!(progress.roots_done(), 16, "every node's root search committed");
        assert_eq!(
            progress.entries_committed(),
            observed.stats().entries as u64,
            "committed entries equal the final labeling's size"
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rnn_label_build_roots_total"), Some(16));
        assert!(format!("{progress:?}").contains("roots_done"));
        // Detached progress counters work without a registry.
        let detached = LabelBuildProgress::detached();
        let _ = HubLabeling::build_with_threads_observed(&g, 1, &detached);
        assert_eq!(detached.roots_done(), 16);
    }

    #[test]
    fn distances_match_dijkstra_on_all_pairs() {
        for g in [diamond(), grid4()] {
            let labeling = HubLabeling::build(&g);
            for u in 0..g.num_nodes() {
                for v in 0..g.num_nodes() {
                    let via_labels = labeling.distance(NodeId::new(u), NodeId::new(v));
                    let via_dijkstra = network_distance(&g, NodeId::new(u), NodeId::new(v));
                    // Exact-weight graphs: every sum is exact, so the label
                    // distance equals the Dijkstra distance bit for bit.
                    assert_eq!(via_labels, via_dijkstra, "pair ({u}, {v})");
                }
            }
        }
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_the_diagonal() {
        let g = grid4();
        let labeling = HubLabeling::build(&g);
        for u in 0..16 {
            assert_eq!(labeling.distance(NodeId::new(u), NodeId::new(u)), Some(Weight::ZERO));
            for v in 0..16 {
                assert_eq!(
                    labeling.distance(NodeId::new(u), NodeId::new(v)),
                    labeling.distance(NodeId::new(v), NodeId::new(u)),
                );
            }
        }
    }

    #[test]
    fn disconnected_components_share_no_hub() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(3, 4, 1.0).unwrap();
        let g = b.build().unwrap();
        let labeling = HubLabeling::build(&g);
        assert_eq!(labeling.distance(NodeId::new(0), NodeId::new(4)), None);
        assert_eq!(labeling.distance(NodeId::new(2), NodeId::new(3)), None);
        assert_eq!(labeling.distance(NodeId::new(3), NodeId::new(4)).unwrap().value(), 1.0);
    }

    #[test]
    fn labels_are_rank_sorted_pruned_and_rooted() {
        let g = grid4();
        let labeling = HubLabeling::build(&g);
        let stats = labeling.stats();
        assert_eq!(stats.nodes, 16);
        assert!(stats.entries >= 16, "every node labels itself");
        // Pruning must beat the quadratic trivial labeling (all hubs
        // everywhere) by a wide margin even on this tiny grid.
        assert!(stats.entries < 16 * 16 / 2, "pruning keeps labels small, got {stats:?}");
        assert!(stats.max_label >= 1 && stats.max_label <= 16);
        assert!(stats.avg_label() >= 1.0);
        assert!(stats.label_bytes() > 0);
        for v in 0..16 {
            let node = NodeId::new(v);
            let (ranks, dists) = label_of(&labeling, v);
            assert!(!ranks.is_empty());
            assert!(ranks.windows(2).all(|w| w[0] < w[1]), "ranks strictly ascend");
            // Every node's label contains itself at distance zero.
            let own = ranks.iter().position(|&r| r == labeling.rank_of(node)).unwrap();
            assert_eq!(dists[own], Weight::ZERO);
            assert_eq!(labeling.hub_node(labeling.rank_of(node)), node);
            assert_eq!(ranks.len(), labeling.label_len(node));
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let g = grid4();
        assert_eq!(HubLabeling::build(&g), HubLabeling::build(&g));
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        for g in [diamond(), grid4()] {
            let sequential = HubLabeling::build_with_threads(&g, 1);
            for threads in [2, 8] {
                let parallel = HubLabeling::build_with_threads(&g, threads);
                assert_eq!(sequential, parallel, "threads = {threads}");
            }
        }
    }

    #[test]
    fn highest_degree_node_gets_rank_zero() {
        // Star graph: the center has degree 4, the leaves 1 — the center
        // must be the first hub and appear in every label.
        let mut b = GraphBuilder::new(5);
        for leaf in 1..5 {
            b.add_edge(0, leaf, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let labeling = HubLabeling::build(&g);
        assert_eq!(labeling.rank_of(NodeId::new(0)), 0);
        for v in 0..5 {
            let (ranks, _) = label_of(&labeling, v);
            assert_eq!(ranks[0], 0, "node {v} is covered by the center hub");
        }
        // Leaves are fully covered by the center: label = {center, self}.
        assert_eq!(labeling.stats().entries, 1 + 4 * 2);
    }

    #[test]
    fn compressed_exact_decodes_identically() {
        let g = grid4();
        let full = HubLabeling::build(&g);
        let compact = full.compressed(LabelPrecision::Exact);
        assert!(compact.is_compressed() && !full.is_compressed());
        for v in 0..16 {
            assert_eq!(label_of(&full, v), label_of(&compact, v), "node {v}");
        }
        // Same ranks, same distances — every distance query agrees bit for
        // bit with the full layout.
        for u in 0..16 {
            for v in 0..16 {
                assert_eq!(
                    full.distance(NodeId::new(u), NodeId::new(v)),
                    compact.distance(NodeId::new(u), NodeId::new(v)),
                );
            }
        }
    }

    #[test]
    fn compressed_f32_is_approximately_exact() {
        let g = grid4();
        let full = HubLabeling::build(&g);
        let compact = full.compressed(LabelPrecision::F32);
        for v in 0..16 {
            let (ranks, dists) = label_of(&full, v);
            let (cranks, cdists) = label_of(&compact, v);
            assert_eq!(ranks, cranks, "ranks are lossless");
            for (d, c) in dists.iter().zip(&cdists) {
                assert!(d.approx_eq(*c, 1e-6), "node {v}: {d:?} vs {c:?}");
            }
        }
    }

    #[test]
    fn compressed_layouts_shrink_label_bytes() {
        let g = grid4();
        let full = HubLabeling::build(&g);
        let exact = full.compressed(LabelPrecision::Exact);
        let narrow = full.compressed(LabelPrecision::F32);
        let (fb, eb, nb) =
            (full.stats().label_bytes(), exact.stats().label_bytes(), narrow.stats().label_bytes());
        // Entry payload shrinks: 12 bytes/entry -> ~9 (exact) -> ~5 (f32).
        // The per-node byte-offset table partially offsets that on this tiny
        // graph; the f32 tier must win outright even here.
        assert!(nb < eb && nb < fb, "f32 tier is the smallest: {fb} / {eb} / {nb}");
        assert_eq!(full.stats().entries, narrow.stats().entries);
    }

    #[test]
    fn varint_roundtrip() {
        let values = [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }
}

//! Degree-ordered pruned landmark labeling (PLL) over a [`Topology`].
//!
//! Every node `v` gets a sorted list of *hubs* `(h, d(v, h))` such that any
//! connected pair `(u, v)` shares at least one hub on a shortest `u`–`v`
//! path (the 2-hop cover property). Distances are then answered without
//! touching the graph:
//!
//! ```text
//! d(u, v) = min over common hubs h of  d(u, h) + d(h, v)
//! ```
//!
//! Construction processes nodes in descending-degree order (high-degree
//! nodes cover the most shortest paths) and runs one *pruned* Dijkstra per
//! node: when settling `u` at distance `d` from the current root, the
//! expansion is cut off if the already-built labels certify a distance
//! `<= d` — those paths are covered by higher-ranked hubs, so neither a
//! label nor further expansion through `u` is needed. Pruning is what keeps
//! labels small: on road-like graphs the average label is polylogarithmic in
//! practice.
//!
//! Hubs are stored as *ranks* (position in the construction order), so label
//! lists are naturally sorted by rank as they are appended and intersect by
//! a linear merge.

use rnn_core::expansion::{ExpansionBuffers, NetworkExpansion};
use rnn_graph::{NodeId, Topology, Weight};

/// A pruned landmark labeling: per-node sorted hub lists with distances.
///
/// Immutable once built; shared by reference across query threads.
#[derive(Clone, Debug, PartialEq)]
pub struct HubLabeling {
    /// CSR offsets into `hub_ranks` / `hub_dists`; length `num_nodes + 1`.
    offsets: Vec<usize>,
    /// Hub lists, as ranks in the construction order, ascending per node.
    hub_ranks: Vec<u32>,
    /// Distance to the corresponding hub.
    hub_dists: Vec<Weight>,
    /// The construction order: `node_of_rank[r]` is the node with rank `r`.
    node_of_rank: Vec<NodeId>,
    /// Inverse of `node_of_rank`.
    rank_of_node: Vec<u32>,
}

/// Size statistics of a labeling, reported by the `repro index` experiment.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LabelStats {
    /// Number of labeled nodes.
    pub nodes: usize,
    /// Total label entries over all nodes.
    pub entries: usize,
    /// Largest single label.
    pub max_label: usize,
}

impl LabelStats {
    /// Average label entries per node.
    pub fn avg_label(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        self.entries as f64 / self.nodes as f64
    }

    /// Approximate in-memory size of the label arrays (rank + distance per
    /// entry, one offset per node).
    pub fn bytes(&self) -> usize {
        self.entries * (std::mem::size_of::<u32>() + std::mem::size_of::<Weight>())
            + (self.nodes + 1) * std::mem::size_of::<usize>()
    }
}

impl HubLabeling {
    /// Builds the labeling with one pruned Dijkstra per node, in
    /// descending-degree order (ties by ascending node id, so construction
    /// is fully deterministic).
    ///
    /// The cost model is the same as the algorithms': adjacency fetches go
    /// through [`Topology::visit_neighbors`], so building over a paged
    /// backend is accounted I/O like any traversal.
    pub fn build<T: Topology + ?Sized>(topo: &T) -> Self {
        let n = topo.num_nodes();

        // Construction order: descending degree, then ascending node id.
        let mut degree = vec![0u32; n];
        for (v, slot) in degree.iter_mut().enumerate() {
            let mut d = 0u32;
            topo.visit_neighbors(NodeId::new(v), &mut |_| d += 1);
            *slot = d;
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| degree[b as usize].cmp(&degree[a as usize]).then(a.cmp(&b)));
        let node_of_rank: Vec<NodeId> = order.iter().map(|&v| NodeId::new(v as usize)).collect();
        let mut rank_of_node = vec![0u32; n];
        for (rank, &v) in order.iter().enumerate() {
            rank_of_node[v as usize] = rank as u32;
        }

        // Temporary per-node labels; entries are appended in ascending rank
        // because roots run in rank order.
        let mut labels: Vec<Vec<(u32, Weight)>> = vec![Vec::new(); n];
        // Distances from the current root to its hubs, indexed by rank; only
        // the entries of `labels[root]` are populated at any time.
        let mut root_dist = vec![Weight::INFINITY; n];
        let mut bufs = ExpansionBuffers::new();

        for (rank, &root) in node_of_rank.iter().enumerate() {
            for &(h, d) in &labels[root.index()] {
                root_dist[h as usize] = d;
            }
            let mut exp =
                NetworkExpansion::reusing(topo, bufs, std::iter::once((root, Weight::ZERO)));
            while let Some((u, d)) = exp.next_settled_unexpanded() {
                // Prune: if higher-ranked hubs already certify d(root, u)
                // <= d, this shortest path is covered — no label, and no
                // expansion through u (everything beyond is covered too).
                let covered =
                    labels[u.index()].iter().any(|&(h, d2)| root_dist[h as usize] + d2 <= d);
                if covered {
                    continue;
                }
                labels[u.index()].push((rank as u32, d));
                exp.expand_from(u, d);
            }
            bufs = exp.into_buffers();
            // `labels[root]` now also holds (rank, 0) — the root always
            // labels itself — so this reset clears exactly what was set.
            for &(h, _) in &labels[root.index()] {
                root_dist[h as usize] = Weight::INFINITY;
            }
        }

        // Freeze into CSR.
        let mut offsets = Vec::with_capacity(n + 1);
        let entries: usize = labels.iter().map(Vec::len).sum();
        let mut hub_ranks = Vec::with_capacity(entries);
        let mut hub_dists = Vec::with_capacity(entries);
        offsets.push(0);
        for label in &labels {
            debug_assert!(label.windows(2).all(|w| w[0].0 < w[1].0), "ranks ascend");
            for &(h, d) in label {
                hub_ranks.push(h);
                hub_dists.push(d);
            }
            offsets.push(hub_ranks.len());
        }
        HubLabeling { offsets, hub_ranks, hub_dists, node_of_rank, rank_of_node }
    }

    /// Number of labeled nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_of_rank.len()
    }

    /// The label of `node`: parallel slices of hub ranks (ascending) and
    /// distances to them.
    pub fn label(&self, node: NodeId) -> (&[u32], &[Weight]) {
        let (lo, hi) = (self.offsets[node.index()], self.offsets[node.index() + 1]);
        (&self.hub_ranks[lo..hi], &self.hub_dists[lo..hi])
    }

    /// The node acting as the hub with construction rank `rank`.
    pub fn hub_node(&self, rank: u32) -> NodeId {
        self.node_of_rank[rank as usize]
    }

    /// The construction rank of `node` (0 = first / highest degree).
    pub fn rank_of(&self, node: NodeId) -> u32 {
        self.rank_of_node[node.index()]
    }

    /// The label-based shortest path distance between two nodes, or `None`
    /// if they share no hub (different connected components).
    ///
    /// Symmetric by construction: the same hub set and the same commutative
    /// sums are considered for `(u, v)` and `(v, u)`.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let (hu, du) = self.label(u);
        let (hv, dv) = self.label(v);
        let mut best: Option<Weight> = None;
        let (mut i, mut j) = (0, 0);
        while i < hu.len() && j < hv.len() {
            match hu[i].cmp(&hv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let through = du[i] + dv[j];
                    best = Some(best.map_or(through, |b| b.min(through)));
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Size statistics of the labeling.
    pub fn stats(&self) -> LabelStats {
        let nodes = self.num_nodes();
        let max_label =
            (0..nodes).map(|v| self.offsets[v + 1] - self.offsets[v]).max().unwrap_or(0);
        LabelStats { nodes, entries: self.hub_ranks.len(), max_label }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_core::expansion::network_distance;
    use rnn_graph::{Graph, GraphBuilder};

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(0, 2, 4.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.build().unwrap()
    }

    /// A denser exact-weight graph: 4x4 grid with 0.25-step weights.
    fn grid4() -> Graph {
        let mut b = GraphBuilder::new(16);
        for r in 0..4 {
            for c in 0..4 {
                let v = r * 4 + c;
                if c + 1 < 4 {
                    b.add_edge(v, v + 1, 0.25 * (1 + (v * 5 % 7)) as f64).unwrap();
                }
                if r + 1 < 4 {
                    b.add_edge(v, v + 4, 0.25 * (1 + (v * 3 % 5)) as f64).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn distances_match_dijkstra_on_all_pairs() {
        for g in [diamond(), grid4()] {
            let labeling = HubLabeling::build(&g);
            for u in 0..g.num_nodes() {
                for v in 0..g.num_nodes() {
                    let via_labels = labeling.distance(NodeId::new(u), NodeId::new(v));
                    let via_dijkstra = network_distance(&g, NodeId::new(u), NodeId::new(v));
                    // Exact-weight graphs: every sum is exact, so the label
                    // distance equals the Dijkstra distance bit for bit.
                    assert_eq!(via_labels, via_dijkstra, "pair ({u}, {v})");
                }
            }
        }
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_the_diagonal() {
        let g = grid4();
        let labeling = HubLabeling::build(&g);
        for u in 0..16 {
            assert_eq!(labeling.distance(NodeId::new(u), NodeId::new(u)), Some(Weight::ZERO));
            for v in 0..16 {
                assert_eq!(
                    labeling.distance(NodeId::new(u), NodeId::new(v)),
                    labeling.distance(NodeId::new(v), NodeId::new(u)),
                );
            }
        }
    }

    #[test]
    fn disconnected_components_share_no_hub() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(3, 4, 1.0).unwrap();
        let g = b.build().unwrap();
        let labeling = HubLabeling::build(&g);
        assert_eq!(labeling.distance(NodeId::new(0), NodeId::new(4)), None);
        assert_eq!(labeling.distance(NodeId::new(2), NodeId::new(3)), None);
        assert_eq!(labeling.distance(NodeId::new(3), NodeId::new(4)).unwrap().value(), 1.0);
    }

    #[test]
    fn labels_are_rank_sorted_pruned_and_rooted() {
        let g = grid4();
        let labeling = HubLabeling::build(&g);
        let stats = labeling.stats();
        assert_eq!(stats.nodes, 16);
        assert!(stats.entries >= 16, "every node labels itself");
        // Pruning must beat the quadratic trivial labeling (all hubs
        // everywhere) by a wide margin even on this tiny grid.
        assert!(stats.entries < 16 * 16 / 2, "pruning keeps labels small, got {stats:?}");
        assert!(stats.max_label >= 1 && stats.max_label <= 16);
        assert!(stats.avg_label() >= 1.0);
        assert!(stats.bytes() > 0);
        for v in 0..16 {
            let node = NodeId::new(v);
            let (ranks, dists) = labeling.label(node);
            assert!(!ranks.is_empty());
            assert!(ranks.windows(2).all(|w| w[0] < w[1]), "ranks strictly ascend");
            // Every node's label contains itself at distance zero.
            let own = ranks.iter().position(|&r| r == labeling.rank_of(node)).unwrap();
            assert_eq!(dists[own], Weight::ZERO);
            assert_eq!(labeling.hub_node(labeling.rank_of(node)), node);
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let g = grid4();
        assert_eq!(HubLabeling::build(&g), HubLabeling::build(&g));
    }

    #[test]
    fn highest_degree_node_gets_rank_zero() {
        // Star graph: the center has degree 4, the leaves 1 — the center
        // must be the first hub and appear in every label.
        let mut b = GraphBuilder::new(5);
        for leaf in 1..5 {
            b.add_edge(0, leaf, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let labeling = HubLabeling::build(&g);
        assert_eq!(labeling.rank_of(NodeId::new(0)), 0);
        for v in 0..5 {
            let (ranks, _) = labeling.label(NodeId::new(v));
            assert_eq!(ranks[0], 0, "node {v} is covered by the center hub");
        }
        // Leaves are fully covered by the center: label = {center, self}.
        assert_eq!(labeling.stats().entries, 1 + 4 * 2);
    }
}

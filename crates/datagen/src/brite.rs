//! BRITE-like internet topologies.
//!
//! The paper generates P2P overlay graphs with the BRITE topology generator,
//! configured for an average degree of 4. BRITE's default router-level model
//! is Barabási–Albert preferential attachment, whose defining property for
//! the RNN experiments is *exponential expansion*: the number of nodes within
//! `h` hops grows exponentially with `h`, so an unpruned network expansion
//! quickly touches the entire graph. This generator reproduces exactly that:
//! each new node attaches to `m = 2` existing nodes chosen preferentially by
//! degree (average degree ≈ 4), with light random edge weights.

use crate::rng;
use rand::Rng;
use rnn_graph::{Graph, GraphBuilder};

/// Configuration of the BRITE-like generator.
#[derive(Clone, Debug, PartialEq)]
pub struct BriteConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Edges added per new node (BRITE's `m`; average degree is `2m`).
    pub edges_per_node: usize,
    /// Inclusive range of edge weights (e.g. latency); the paper effectively
    /// uses unit-ish weights in the P2P scenario.
    pub weight_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for BriteConfig {
    fn default() -> Self {
        BriteConfig {
            num_nodes: 10_000,
            edges_per_node: 2,
            // Light jitter around 1 (e.g. per-link latency). Keeping the
            // weights continuous avoids the massive distance ties a pure
            // hop-count metric would create, which would weaken the strict
            // Lemma-1 pruning for *every* algorithm; the paper's BRITE
            // topologies likewise carry non-uniform link costs.
            weight_range: (0.5, 1.5),
            seed: 7,
        }
    }
}

/// Generates a preferential-attachment topology with the given
/// configuration. The result is always connected.
pub fn brite_topology(config: &BriteConfig) -> Graph {
    let n = config.num_nodes;
    let m = config.edges_per_node.max(1);
    let mut rand = rng(config.seed);
    let mut builder = GraphBuilder::with_edge_capacity(n, n * m);
    if n == 0 {
        return builder.build().expect("empty graph");
    }

    // Repeated-endpoints list: node i appears once per incident edge, which
    // makes degree-proportional sampling O(1).
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);

    // Seed clique over the first m+1 nodes (or a single node for tiny n).
    let seed_size = (m + 1).min(n);
    for a in 0..seed_size {
        for b in (a + 1)..seed_size {
            builder
                .add_edge(a, b, sample_weight(&mut rand, config.weight_range))
                .expect("seed edges are valid");
            endpoints.push(a as u32);
            endpoints.push(b as u32);
        }
    }

    for v in seed_size..n {
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m.min(v) && guard < 50 * m {
            guard += 1;
            let target = if endpoints.is_empty() {
                rand.gen_range(0..v) as u32
            } else {
                endpoints[rand.gen_range(0..endpoints.len())]
            };
            if target as usize != v && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        if chosen.is_empty() {
            chosen.push(rand.gen_range(0..v) as u32);
        }
        for &t in &chosen {
            builder
                .add_edge(v, t as usize, sample_weight(&mut rand, config.weight_range))
                .expect("preferential edges are valid");
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }

    builder.build().expect("generated topology is valid")
}

fn sample_weight<R: Rng>(rand: &mut R, range: (f64, f64)) -> f64 {
    if range.0 >= range.1 {
        range.0
    } else {
        rand.gen_range(range.0..=range.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_graph::{is_connected, GraphStats};

    #[test]
    fn average_degree_is_close_to_two_m() {
        let g = brite_topology(&BriteConfig { num_nodes: 5_000, ..Default::default() });
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.num_nodes, 5_000);
        assert!(
            (stats.average_degree - 4.0).abs() < 0.3,
            "average degree {} should be about 4",
            stats.average_degree
        );
        assert!(is_connected(&g));
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = brite_topology(&BriteConfig { num_nodes: 5_000, ..Default::default() });
        let stats = GraphStats::compute(&g);
        // preferential attachment produces hubs far above the average degree
        assert!(
            stats.max_degree > 40,
            "max degree {} too small for a scale-free graph",
            stats.max_degree
        );
        assert!(stats.min_degree >= 1);
    }

    #[test]
    fn expansion_is_exponential() {
        // the number of nodes within h hops of a random node must blow up
        let g = brite_topology(&BriteConfig { num_nodes: 20_000, ..Default::default() });
        let mut frontier = vec![rnn_graph::NodeId::new(123)];
        let mut seen = vec![false; g.num_nodes()];
        seen[123] = true;
        let mut within = vec![1usize];
        for _ in 0..4 {
            let mut next = Vec::new();
            for &v in &frontier {
                for nb in g.neighbors(v) {
                    if !seen[nb.node.index()] {
                        seen[nb.node.index()] = true;
                        next.push(nb.node);
                    }
                }
            }
            within.push(within.last().unwrap() + next.len());
            frontier = next;
        }
        // after 4 hops a large fraction of a 20K-node graph is reached
        assert!(
            *within.last().unwrap() > g.num_nodes() / 20,
            "only {} nodes within 4 hops",
            within.last().unwrap()
        );
    }

    #[test]
    fn deterministic_for_a_seed_and_sensitive_to_it() {
        let a = brite_topology(&BriteConfig { num_nodes: 1_000, ..Default::default() });
        let b = brite_topology(&BriteConfig { num_nodes: 1_000, ..Default::default() });
        assert_eq!(a, b);
        let c = brite_topology(&BriteConfig { num_nodes: 1_000, seed: 8, ..Default::default() });
        assert_ne!(a, c);
    }

    #[test]
    fn weight_range_is_respected_and_small_graphs_work() {
        let g = brite_topology(&BriteConfig {
            num_nodes: 50,
            edges_per_node: 2,
            weight_range: (0.5, 2.5),
            seed: 3,
        });
        let stats = GraphStats::compute(&g);
        assert!(stats.min_weight >= 0.5 && stats.max_weight <= 2.5);
        let tiny = brite_topology(&BriteConfig { num_nodes: 1, ..Default::default() });
        assert_eq!(tiny.num_nodes(), 1);
        let empty = brite_topology(&BriteConfig { num_nodes: 0, ..Default::default() });
        assert_eq!(empty.num_nodes(), 0);
    }
}

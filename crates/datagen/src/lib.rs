//! Synthetic dataset and workload generators for the RNN experiments.
//!
//! The paper evaluates its algorithms on four families of networks:
//!
//! * the **DBLP coauthorship graph** (4,260 authors, 13,199 edges, unit
//!   weights, per-author publication counts used for ad hoc predicates);
//! * **BRITE internet topologies** (90K–360K nodes, average degree 4),
//!   whose expansions reach most of the graph within a few hops
//!   ("exponential expansion");
//! * the **San Francisco road map** (174,956 nodes / 223,001 edges, weights
//!   equal to the Euclidean length of each segment), a near-planar spatial
//!   network used for the unrestricted experiments;
//! * synthetic **grid maps** with controllable size and degree.
//!
//! None of those datasets can be redistributed here, so this crate generates
//! synthetic graphs with the same structural characteristics (see DESIGN.md
//! for the substitution argument): [`coauthor`], [`brite`], [`spatial`] and
//! [`grid`]. The [`points`] module places data points on nodes or edges at a
//! prescribed density `D = |P| / |V|` and [`workload`] samples query
//! workloads the way the paper does (50 queries drawn from the data points).
//!
//! All generators are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brite;
pub mod coauthor;
pub mod grid;
pub mod points;
pub mod spatial;
pub mod workload;

pub use brite::{brite_topology, BriteConfig};
pub use coauthor::{coauthorship_graph, CoauthorConfig, CoauthorGraph};
pub use grid::{grid_map, GridConfig};
pub use points::{place_points_on_edges, place_points_on_nodes};
pub use spatial::{spatial_road_network, SpatialConfig, SpatialNetwork};
pub use workload::{sample_edge_queries, sample_node_queries, sample_routes};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates the deterministic RNG used by every generator in this crate.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

//! Query workload sampling.
//!
//! "The diagrams display the average cost of workloads containing 50 queries.
//! Each query is randomly chosen from the set of data points, so that the
//! queries follow the data distribution." Continuous queries use routes that
//! are "random walks without repeated nodes".

use crate::rng;
use rand::seq::SliceRandom;
use rand::Rng;
use rnn_graph::{EdgePointSet, Graph, NodeId, NodePointSet, PointId, Route};

/// Samples `count` query nodes from the data points of a restricted network
/// (with replacement if there are fewer points than queries).
pub fn sample_node_queries(points: &NodePointSet, count: usize, seed: u64) -> Vec<NodeId> {
    let mut rand = rng(seed);
    let nodes = points.nodes();
    if nodes.is_empty() {
        return Vec::new();
    }
    (0..count).map(|_| nodes[rand.gen_range(0..nodes.len())]).collect()
}

/// Samples `count` query points from an unrestricted data set.
pub fn sample_edge_queries(points: &EdgePointSet, count: usize, seed: u64) -> Vec<PointId> {
    let mut rand = rng(seed);
    if points.is_empty() {
        return Vec::new();
    }
    (0..count).map(|_| PointId::new(rand.gen_range(0..points.num_points()))).collect()
}

/// Samples `count` routes of `length` nodes each as random walks without
/// repeated nodes, starting from random nodes. Start nodes whose walks get
/// stuck are retried with other starts.
pub fn sample_routes(graph: &Graph, length: usize, count: usize, seed: u64) -> Vec<Route> {
    let mut rand = rng(seed);
    let mut routes = Vec::with_capacity(count);
    if graph.num_nodes() == 0 {
        return routes;
    }
    let mut starts: Vec<usize> = (0..graph.num_nodes()).collect();
    starts.shuffle(&mut rand);
    let mut cursor = 0;
    while routes.len() < count && cursor < starts.len() {
        let start = NodeId::new(starts[cursor]);
        cursor += 1;
        let route = Route::random_walk(graph, start, length, |n| rand.gen_range(0..n));
        if let Some(r) = route {
            routes.push(r);
        }
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{grid_map, GridConfig};
    use crate::points::{place_points_on_edges, place_points_on_nodes};
    use rnn_graph::PointsOnNodes;

    fn graph() -> Graph {
        grid_map(&GridConfig { rows: 20, cols: 20, ..Default::default() })
    }

    #[test]
    fn node_queries_follow_the_data_distribution() {
        let g = graph();
        let pts = place_points_on_nodes(&g, 0.1, 2);
        let queries = sample_node_queries(&pts, 50, 3);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert!(pts.contains_node(*q), "queries must be data points");
        }
        // deterministic
        assert_eq!(queries, sample_node_queries(&pts, 50, 3));
        assert!(sample_node_queries(&NodePointSet::empty(10), 5, 1).is_empty());
    }

    #[test]
    fn edge_queries_reference_existing_points() {
        let g = graph();
        let pts = place_points_on_edges(&g, 0.05, 7);
        let queries = sample_edge_queries(&pts, 50, 11);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert!(q.index() < pts.num_points());
        }
    }

    #[test]
    fn routes_have_the_requested_length_and_are_simple_paths() {
        let g = graph();
        let routes = sample_routes(&g, 12, 10, 5);
        assert_eq!(routes.len(), 10);
        for r in &routes {
            assert_eq!(r.len(), 12);
            let mut nodes = r.nodes().to_vec();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(nodes.len(), 12, "route must not repeat nodes");
            assert!(Route::new(&g, r.nodes().to_vec()).is_ok(), "route must follow edges");
        }
    }

    #[test]
    fn empty_graph_yields_no_routes() {
        let empty = rnn_graph::GraphBuilder::new(0).build().unwrap();
        assert!(sample_routes(&empty, 3, 5, 1).is_empty());
    }
}

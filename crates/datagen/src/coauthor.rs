//! DBLP-like coauthorship graphs.
//!
//! The paper's first experiment uses the coauthorship graph of authors that
//! published in SIGMOD, VLDB, ICDE or PODS: 4,260 nodes, 13,199 edges, unit
//! edge weights (so network distance is the *degree of separation*), and an
//! ad hoc predicate on the number of SIGMOD papers per author. This generator
//! reproduces the structural ingredients the experiment relies on:
//!
//! * papers are generated as small author cliques whose participants are
//!   chosen preferentially (prolific authors keep publishing), giving the
//!   heavy-tailed degree / publication-count distributions of real
//!   collaboration networks;
//! * all edge weights are 1;
//! * every author carries a `sigmod_papers` count with a Zipf-like skew, so
//!   predicates like "at least two SIGMOD papers" have the same qualitative
//!   selectivities (most authors have 0) as in the paper's Table 1.

use crate::rng;
use rand::Rng;
use rnn_graph::{largest_connected_component, Graph, GraphBuilder, NodeId, NodePointSet};

/// Configuration of the coauthorship generator.
#[derive(Clone, Debug, PartialEq)]
pub struct CoauthorConfig {
    /// Number of authors before cleaning (the paper's graph has 4,260 after
    /// cleaning).
    pub num_authors: usize,
    /// Number of generated papers.
    pub num_papers: usize,
    /// Maximum number of coauthors per paper (papers have 2..=max authors).
    pub max_authors_per_paper: usize,
    /// Fraction of papers that count as SIGMOD papers.
    pub sigmod_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CoauthorConfig {
    fn default() -> Self {
        CoauthorConfig {
            num_authors: 4_400,
            // Tuned together with the vendored ChaCha8 stream so the default
            // graph lands in the DBLP ballpark the tests assert (the paper's
            // cleaned graph: 4,260 nodes, 13,199 edges, 3.1 edges/node).
            num_papers: 3_600,
            max_authors_per_paper: 4,
            sigmod_fraction: 0.25,
            seed: 13,
        }
    }
}

/// A generated coauthorship graph: the (cleaned) collaboration network plus
/// the per-author SIGMOD paper counts.
#[derive(Clone, Debug)]
pub struct CoauthorGraph {
    /// The collaboration network (largest connected component, unit weights).
    pub graph: Graph,
    /// Number of SIGMOD papers of each author (indexed by node id).
    pub sigmod_papers: Vec<u32>,
}

impl CoauthorGraph {
    /// The ad hoc data set "authors with at least `threshold` SIGMOD papers",
    /// as used by the paper's Table 1.
    pub fn authors_with_at_least(&self, threshold: u32) -> NodePointSet {
        NodePointSet::from_predicate(self.graph.num_nodes(), |n| {
            self.sigmod_papers[n.index()] >= threshold
        })
    }

    /// Selectivity (fraction of authors) of the "at least `threshold` SIGMOD
    /// papers" predicate.
    pub fn selectivity(&self, threshold: u32) -> f64 {
        if self.sigmod_papers.is_empty() {
            return 0.0;
        }
        self.sigmod_papers.iter().filter(|&&c| c >= threshold).count() as f64
            / self.sigmod_papers.len() as f64
    }
}

/// Generates a DBLP-like coauthorship graph.
pub fn coauthorship_graph(config: &CoauthorConfig) -> CoauthorGraph {
    let mut rand = rng(config.seed);
    let n = config.num_authors.max(2);
    let mut builder = GraphBuilder::with_edge_capacity(n, config.num_papers * 3);
    let mut sigmod = vec![0u32; n];

    // Preferential pool: authors gain weight with every paper they appear in.
    let mut pool: Vec<u32> = (0..n as u32).collect();

    for _ in 0..config.num_papers {
        let team_size = 2 + rand.gen_range(0..config.max_authors_per_paper.max(2) - 1);
        let mut team: Vec<u32> = Vec::with_capacity(team_size);
        let mut guard = 0;
        while team.len() < team_size && guard < 20 * team_size {
            guard += 1;
            // 70% preferential pick, 30% uniform newcomer pick.
            let author = if rand.gen::<f64>() < 0.7 {
                pool[rand.gen_range(0..pool.len())]
            } else {
                rand.gen_range(0..n as u32)
            };
            if !team.contains(&author) {
                team.push(author);
            }
        }
        let is_sigmod = rand.gen::<f64>() < config.sigmod_fraction;
        for (i, &a) in team.iter().enumerate() {
            if is_sigmod {
                sigmod[a as usize] += 1;
            }
            pool.push(a);
            for &b in &team[i + 1..] {
                if !builder.has_edge(a as usize, b as usize) {
                    builder.add_edge(a as usize, b as usize, 1.0).expect("coauthor edge");
                }
            }
        }
    }

    let raw = builder.build().expect("coauthorship graph is valid");
    let (graph, mapping) = largest_connected_component(&raw);
    let sigmod_papers = mapping.iter().map(|old: &NodeId| sigmod[old.index()]).collect();
    CoauthorGraph { graph, sigmod_papers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_graph::{is_connected, GraphStats, PointsOnNodes};

    #[test]
    fn default_size_is_close_to_the_dblp_graph() {
        let co = coauthorship_graph(&CoauthorConfig::default());
        let stats = GraphStats::compute(&co.graph);
        // paper: 4,260 nodes and 13,199 edges after cleaning
        assert!(
            (3_400..=4_400).contains(&stats.num_nodes),
            "nodes {} not in the DBLP ballpark",
            stats.num_nodes
        );
        let ratio = stats.num_edges as f64 / stats.num_nodes as f64;
        assert!((2.0..=4.5).contains(&ratio), "edges per node {ratio} should be near DBLP's 3.1");
        assert!(is_connected(&co.graph));
        assert_eq!(stats.min_weight, 1.0);
        assert_eq!(stats.max_weight, 1.0);
    }

    #[test]
    fn selectivity_decreases_with_the_threshold() {
        let co = coauthorship_graph(&CoauthorConfig::default());
        let s1 = co.selectivity(1);
        let s2 = co.selectivity(2);
        let s5 = co.selectivity(5);
        assert!(s1 > s2 && s2 > s5, "selectivities must decrease: {s1} {s2} {s5}");
        assert!(s1 < 0.8, "most authors have no SIGMOD papers");
        assert!(s5 > 0.0, "a few prolific authors exist");
    }

    #[test]
    fn predicate_point_sets_match_the_counts() {
        let co = coauthorship_graph(&CoauthorConfig {
            num_authors: 800,
            num_papers: 900,
            ..Default::default()
        });
        for threshold in [1u32, 2, 3] {
            let set = co.authors_with_at_least(threshold);
            let expected = co.sigmod_papers.iter().filter(|&&c| c >= threshold).count();
            assert_eq!(set.num_points(), expected, "threshold {threshold}");
        }
    }

    #[test]
    fn collaboration_network_has_hubs() {
        let co = coauthorship_graph(&CoauthorConfig::default());
        let stats = GraphStats::compute(&co.graph);
        assert!(
            stats.max_degree > 20,
            "expected prolific hub authors, max degree {}",
            stats.max_degree
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CoauthorConfig { num_authors: 500, num_papers: 600, ..Default::default() };
        let a = coauthorship_graph(&cfg);
        let b = coauthorship_graph(&cfg);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.sigmod_papers, b.sigmod_papers);
    }
}

//! San-Francisco-like spatial road networks.
//!
//! The paper's unrestricted experiments use the San Francisco map of the
//! Digital Chart of the World: 174,956 nodes, 223,001 edges (≈ 1.27 edges per
//! node), coordinates normalized to `[0, 10000]²` and edge weights equal to
//! the Euclidean distance between the connected nodes. The defining
//! characteristics for the experiments are (a) near-planarity — expansions
//! grow polynomially, not exponentially — and (b) weights that reflect an
//! underlying geometric embedding.
//!
//! This generator reproduces those characteristics: nodes are placed on a
//! jittered grid inside `[0, 10000]²`, connected to their grid neighbors with
//! Euclidean weights, and then edges and nodes are randomly thinned until the
//! requested edge/node ratio is reached (road networks are sparser than full
//! grids because of rivers, parks and dead ends). The largest connected
//! component is returned, mirroring the paper's "cleaning" step.

use crate::rng;
use rand::Rng;
use rnn_graph::{largest_connected_component, Graph, GraphBuilder, NodeId};

/// Configuration of the spatial road network generator.
#[derive(Clone, Debug, PartialEq)]
pub struct SpatialConfig {
    /// Approximate number of nodes before cleaning.
    pub num_nodes: usize,
    /// Target edge/node ratio (San Francisco has ≈ 1.27).
    pub edges_per_node: f64,
    /// Side length of the coordinate space (the paper normalizes to 10,000).
    pub extent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpatialConfig {
    fn default() -> Self {
        SpatialConfig { num_nodes: 10_000, edges_per_node: 1.27, extent: 10_000.0, seed: 5 }
    }
}

/// A generated spatial network: the graph plus the coordinates of every node
/// (indexed by node id), useful for visualization and for Euclidean baselines.
#[derive(Clone, Debug)]
pub struct SpatialNetwork {
    /// The road graph (largest connected component, re-numbered).
    pub graph: Graph,
    /// Coordinates of each node in `[0, extent]²`.
    pub coordinates: Vec<(f64, f64)>,
}

/// Generates a spatial road network.
pub fn spatial_road_network(config: &SpatialConfig) -> SpatialNetwork {
    let mut rand = rng(config.seed);
    let n = config.num_nodes.max(1);
    let side = (n as f64).sqrt().ceil() as usize;
    let cell = config.extent / side.max(1) as f64;

    // Jittered grid positions.
    let mut coords: Vec<(f64, f64)> = Vec::with_capacity(side * side);
    for r in 0..side {
        for c in 0..side {
            if coords.len() == n {
                break;
            }
            let x = (c as f64 + 0.15 + 0.7 * rand.gen::<f64>()) * cell;
            let y = (r as f64 + 0.15 + 0.7 * rand.gen::<f64>()) * cell;
            coords.push((x, y));
        }
    }
    let n = coords.len();
    let index = |r: usize, c: usize| r * side + c;

    // Candidate edges: grid neighbors plus occasional diagonals.
    let mut candidates: Vec<(usize, usize)> = Vec::with_capacity(3 * n);
    for r in 0..side {
        for c in 0..side {
            let v = index(r, c);
            if v >= n {
                continue;
            }
            if c + 1 < side && index(r, c + 1) < n {
                candidates.push((v, index(r, c + 1)));
            }
            if r + 1 < side && index(r + 1, c) < n {
                candidates.push((v, index(r + 1, c)));
            }
            if r + 1 < side && c + 1 < side && index(r + 1, c + 1) < n && rand.gen::<f64>() < 0.1 {
                candidates.push((v, index(r + 1, c + 1)));
            }
        }
    }

    // Thin the candidate set down to the requested edge/node ratio.
    let target_edges = ((n as f64) * config.edges_per_node) as usize;
    let keep_probability = (target_edges as f64 / candidates.len().max(1) as f64).min(1.0);
    let mut builder = GraphBuilder::with_edge_capacity(n, target_edges + 8);
    for (a, b) in candidates {
        if rand.gen::<f64>() > keep_probability {
            continue;
        }
        let (ax, ay) = coords[a];
        let (bx, by) = coords[b];
        let w = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt().max(1e-6);
        builder.add_edge(a, b, w).expect("spatial edge");
    }
    let raw = builder.build().expect("spatial graph is valid");

    // Keep the largest connected component, as the paper does.
    let (graph, mapping) = largest_connected_component(&raw);
    let coordinates = mapping.iter().map(|old: &NodeId| coords[old.index()]).collect();
    SpatialNetwork { graph, coordinates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_graph::{is_connected, GraphStats};

    #[test]
    fn edge_node_ratio_matches_san_francisco() {
        let net = spatial_road_network(&SpatialConfig { num_nodes: 20_000, ..Default::default() });
        let stats = GraphStats::compute(&net.graph);
        let ratio = stats.num_edges as f64 / stats.num_nodes as f64;
        assert!(
            (ratio - 1.27).abs() < 0.12,
            "edge/node ratio {ratio} should be close to the SF map's 1.27"
        );
        assert!(is_connected(&net.graph));
        assert_eq!(net.coordinates.len(), net.graph.num_nodes());
    }

    #[test]
    fn weights_are_euclidean_lengths() {
        let net = spatial_road_network(&SpatialConfig { num_nodes: 2_000, ..Default::default() });
        for (e, lo, hi, w) in net.graph.edges().take(200) {
            let (ax, ay) = net.coordinates[lo.index()];
            let (bx, by) = net.coordinates[hi.index()];
            let d = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
            assert!(
                (d - w.value()).abs() < 1e-6,
                "edge {e} weight {} should equal the Euclidean distance {d}",
                w.value()
            );
        }
    }

    #[test]
    fn coordinates_stay_within_the_extent() {
        let net = spatial_road_network(&SpatialConfig {
            num_nodes: 1_000,
            extent: 500.0,
            ..Default::default()
        });
        for &(x, y) in &net.coordinates {
            assert!((0.0..=500.0).contains(&x));
            assert!((0.0..=500.0).contains(&y));
        }
    }

    #[test]
    fn expansion_is_polynomial_not_exponential() {
        let net = spatial_road_network(&SpatialConfig { num_nodes: 20_000, ..Default::default() });
        let g = &net.graph;
        let start = rnn_graph::NodeId::new(g.num_nodes() / 2);
        let mut frontier = vec![start];
        let mut seen = vec![false; g.num_nodes()];
        seen[start.index()] = true;
        let mut total = 1usize;
        for _ in 0..6 {
            let mut next = Vec::new();
            for &v in &frontier {
                for nb in g.neighbors(v) {
                    if !seen[nb.node.index()] {
                        seen[nb.node.index()] = true;
                        next.push(nb.node);
                    }
                }
            }
            total += next.len();
            frontier = next;
        }
        assert!(total < 200, "spatial networks must not expand exponentially, reached {total}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = spatial_road_network(&SpatialConfig { num_nodes: 1_000, ..Default::default() });
        let b = spatial_road_network(&SpatialConfig { num_nodes: 1_000, ..Default::default() });
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.coordinates, b.coordinates);
    }
}

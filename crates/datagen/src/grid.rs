//! Synthetic grid maps (used by Fig. 20 of the paper).
//!
//! "The standard grid map has an average degree of 4. To generate maps with
//! higher degree, new edges are randomly added between nearby nodes." This
//! generator builds a `rows × cols` grid with mildly jittered weights and
//! then adds random short-range diagonal/skip edges until the requested
//! average degree is reached.

use crate::rng;
use rand::Rng;
use rnn_graph::{Graph, GraphBuilder};

/// Configuration of the grid map generator.
#[derive(Clone, Debug, PartialEq)]
pub struct GridConfig {
    /// Number of grid rows.
    pub rows: usize,
    /// Number of grid columns.
    pub cols: usize,
    /// Target average degree (>= 4; the plain grid gives ~4).
    pub average_degree: f64,
    /// Base edge weight; actual weights are jittered by ±20%.
    pub base_weight: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig { rows: 100, cols: 100, average_degree: 4.0, base_weight: 1.0, seed: 11 }
    }
}

impl GridConfig {
    /// A roughly square grid with the given number of nodes and degree.
    pub fn with_nodes(num_nodes: usize, average_degree: f64, seed: u64) -> Self {
        let side = (num_nodes as f64).sqrt().round().max(1.0) as usize;
        GridConfig {
            rows: side,
            cols: num_nodes.div_ceil(side),
            average_degree,
            base_weight: 1.0,
            seed,
        }
    }
}

/// Generates a grid map.
pub fn grid_map(config: &GridConfig) -> Graph {
    let rows = config.rows;
    let cols = config.cols;
    let n = rows * cols;
    let mut rand = rng(config.seed);
    let mut builder =
        GraphBuilder::with_edge_capacity(n, (n as f64 * config.average_degree / 2.0) as usize + 4);

    let index = |r: usize, c: usize| r * cols + c;
    let jitter =
        |rand: &mut rand_chacha::ChaCha8Rng| config.base_weight * (0.8 + 0.4 * rand.gen::<f64>());

    // Dedup set so that adding extra edges stays O(1) per attempt even for
    // paper-scale grids (hundreds of thousands of nodes).
    let mut present: std::collections::HashSet<(usize, usize)> =
        std::collections::HashSet::with_capacity(2 * n);
    let remember = |a: usize, b: usize, present: &mut std::collections::HashSet<(usize, usize)>| {
        present.insert(if a < b { (a, b) } else { (b, a) })
    };

    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                let w = jitter(&mut rand);
                builder.add_edge(index(r, c), index(r, c + 1), w).expect("grid edge");
                remember(index(r, c), index(r, c + 1), &mut present);
            }
            if r + 1 < rows {
                let w = jitter(&mut rand);
                builder.add_edge(index(r, c), index(r + 1, c), w).expect("grid edge");
                remember(index(r, c), index(r + 1, c), &mut present);
            }
        }
    }

    // Extra short-range edges until the requested degree is reached.
    let target_edges = (n as f64 * config.average_degree / 2.0) as usize;
    let mut guard = 0usize;
    while builder.num_edges() < target_edges && guard < 20 * target_edges && n > 1 {
        guard += 1;
        let r = rand.gen_range(0..rows);
        let c = rand.gen_range(0..cols);
        // pick a nearby node within a 2-cell window
        let dr = rand.gen_range(0..=2usize);
        let dc = rand.gen_range(0..=2usize);
        if dr == 0 && dc == 0 {
            continue;
        }
        let r2 = (r + dr).min(rows - 1);
        let c2 = (c + dc).min(cols - 1);
        let (a, b) = (index(r, c), index(r2, c2));
        if a == b || !remember(a, b, &mut present) {
            continue;
        }
        let w = config.base_weight
            * (((dr * dr + dc * dc) as f64).sqrt())
            * (0.9 + 0.2 * rand.gen::<f64>());
        builder.add_edge(a, b, w).expect("extra grid edge");
    }

    builder.build().expect("grid map is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_graph::{is_connected, GraphStats};

    #[test]
    fn plain_grid_has_degree_about_four() {
        let g = grid_map(&GridConfig { rows: 40, cols: 40, ..Default::default() });
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.num_nodes, 1600);
        assert!((stats.average_degree - 3.9).abs() < 0.3, "avg degree {}", stats.average_degree);
        assert!(is_connected(&g));
    }

    #[test]
    fn higher_degree_targets_are_met() {
        for target in [5.0, 6.0, 7.0] {
            let g = grid_map(&GridConfig {
                rows: 30,
                cols: 30,
                average_degree: target,
                ..Default::default()
            });
            let stats = GraphStats::compute(&g);
            assert!(
                (stats.average_degree - target).abs() < 0.4,
                "requested degree {target}, got {}",
                stats.average_degree
            );
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn with_nodes_constructor_hits_the_requested_cardinality() {
        let cfg = GridConfig::with_nodes(5000, 4.0, 1);
        let g = grid_map(&cfg);
        let n = g.num_nodes() as f64;
        assert!((n - 5000.0).abs() / 5000.0 < 0.05, "nodes {}", g.num_nodes());
    }

    #[test]
    fn no_exponential_expansion() {
        // grids expand polynomially: nodes within h hops grow like h^2
        let g = grid_map(&GridConfig { rows: 60, cols: 60, ..Default::default() });
        let start = rnn_graph::NodeId::new(30 * 60 + 30);
        let mut frontier = vec![start];
        let mut seen = vec![false; g.num_nodes()];
        seen[start.index()] = true;
        let mut total = 1usize;
        for _ in 0..5 {
            let mut next = Vec::new();
            for &v in &frontier {
                for nb in g.neighbors(v) {
                    if !seen[nb.node.index()] {
                        seen[nb.node.index()] = true;
                        next.push(nb.node);
                    }
                }
            }
            total += next.len();
            frontier = next;
        }
        assert!(total < 120, "a grid must not expand exponentially, reached {total}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a =
            grid_map(&GridConfig { rows: 10, cols: 10, average_degree: 5.0, ..Default::default() });
        let b =
            grid_map(&GridConfig { rows: 10, cols: 10, average_degree: 5.0, ..Default::default() });
        assert_eq!(a, b);
    }
}

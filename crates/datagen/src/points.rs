//! Data point placement.
//!
//! The experiments control the data density `D = |P| / |V|`: points are
//! located at random network nodes (restricted networks) or distributed
//! randomly on the edges (unrestricted networks). The paper caps `D` at 0.1
//! so that queries remain meaningful.

use crate::rng;
use rand::seq::index::sample;
use rand::Rng;
use rnn_graph::{EdgePointSet, EdgePointSetBuilder, Graph, NodeId, NodePointSet};

/// Places `⌊density · |V|⌋` data points on distinct random nodes.
pub fn place_points_on_nodes(graph: &Graph, density: f64, seed: u64) -> NodePointSet {
    let n = graph.num_nodes();
    let count = ((n as f64) * density).round() as usize;
    let count = count.min(n);
    if count == 0 {
        return NodePointSet::empty(n);
    }
    let mut rand = rng(seed);
    let chosen = sample(&mut rand, n, count);
    NodePointSet::from_nodes(n, chosen.into_iter().map(NodeId::new))
}

/// Places `⌊density · |V|⌋` data points at random positions on random edges
/// (the unrestricted setting). Offsets are drawn strictly inside the edge so
/// the instance can also be transformed to a restricted one.
pub fn place_points_on_edges(graph: &Graph, density: f64, seed: u64) -> EdgePointSet {
    let count = ((graph.num_nodes() as f64) * density).round() as usize;
    let mut rand = rng(seed);
    let mut builder = EdgePointSetBuilder::new(graph);
    if graph.num_edges() == 0 {
        return builder.build();
    }
    let mut guard = 0;
    while builder.len() < count && guard < 20 * count + 100 {
        guard += 1;
        let edge = rnn_graph::EdgeId::new(rand.gen_range(0..graph.num_edges()));
        let w = graph.edge_weight(edge).value();
        // strictly interior offset
        let offset = w * (0.05 + 0.9 * rand.gen::<f64>());
        if builder.add_point(edge, offset).is_err() {
            continue;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{grid_map, GridConfig};
    use rnn_graph::PointsOnNodes;

    fn graph() -> Graph {
        grid_map(&GridConfig { rows: 30, cols: 30, ..Default::default() })
    }

    #[test]
    fn node_placement_hits_the_requested_density() {
        let g = graph();
        for density in [0.0, 0.01, 0.05, 0.1] {
            let pts = place_points_on_nodes(&g, density, 3);
            let expected = ((g.num_nodes() as f64) * density).round() as usize;
            assert_eq!(pts.num_points(), expected, "density {density}");
            assert!((pts.density() - density).abs() < 2.0 / g.num_nodes() as f64);
        }
    }

    #[test]
    fn node_placement_is_deterministic_and_distinct() {
        let g = graph();
        let a = place_points_on_nodes(&g, 0.05, 9);
        let b = place_points_on_nodes(&g, 0.05, 9);
        assert_eq!(a, b);
        let c = place_points_on_nodes(&g, 0.05, 10);
        assert_ne!(a, c);
        // all nodes distinct by construction of NodePointSet
        assert_eq!(a.num_points(), a.nodes().len());
    }

    #[test]
    fn edge_placement_hits_the_requested_density_with_interior_offsets() {
        let g = graph();
        let pts = place_points_on_edges(&g, 0.05, 21);
        let expected = ((g.num_nodes() as f64) * 0.05).round() as usize;
        assert_eq!(pts.num_points(), expected);
        for (_, loc) in pts.iter() {
            let w = g.edge_weight(loc.edge).value();
            assert!(loc.offset.value() > 0.0 && loc.offset.value() < w);
        }
    }

    #[test]
    fn full_density_covers_every_node() {
        let g = graph();
        let pts = place_points_on_nodes(&g, 1.0, 4);
        assert_eq!(pts.num_points(), g.num_nodes());
    }

    #[test]
    fn zero_density_gives_empty_sets() {
        let g = graph();
        assert!(place_points_on_nodes(&g, 0.0, 1).is_empty());
        assert!(place_points_on_edges(&g, 0.0, 1).is_empty());
    }
}

//! The workspace's one LRU implementation.
//!
//! Both the buffer pool (pages keyed by [`crate::PageId`]) and `rnn-core`'s
//! result cache (outcomes keyed by `(algorithm, query, k)`) need the same
//! structure: a bounded map with O(1) lookup that evicts the least recently
//! used entry when full. [`Lru`] is that structure, extracted so it is written
//! — and unit-tested for its exact victim order — exactly once.
//!
//! Entries live in a slot vector linked into an intrusive doubly-linked
//! recency list by index (no per-entry allocation); a hash map points keys at
//! slots. `get`, `insert`, `pop_lru` and eviction are all O(1) expected.
//!
//! The eviction order is part of the contract: a new key fills a fresh slot
//! while the cache is below capacity and reuses the evicted victim's slot
//! afterwards, and both `get` and `insert` move the touched entry to the MRU
//! position. This is bit-compatible with the two hand-rolled lists it
//! replaced, so fault counts of existing experiments are unchanged.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

const NIL: usize = usize::MAX;

/// Mixes a 64-bit value so that sequential keys spread over the whole space
/// (the SplitMix64 finalizer). Shard selection in the striped buffer pool and
/// result cache uses this to map a key hash to `hash & (shards - 1)` without
/// the low bits of dense ids aliasing onto a single shard.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Normalizes a requested shard count for striping `capacity` entries over
/// independently locked [`Lru`]s: rounded up to a power of two (so a shard
/// is one mask of a mixed key hash), then halved until every shard gets at
/// least one entry — always at least 1. The one rule both the buffer pool
/// and the engine's result cache stripe by.
pub fn normalized_shards(capacity: usize, requested: usize) -> usize {
    let mut shards = requested.max(1).next_power_of_two();
    while shards > 1 && shards > capacity {
        shards /= 2;
    }
    shards
}

/// Splits `capacity` over [`normalized_shards`]`(capacity, requested)`
/// shards as evenly as the count allows: the first `capacity % shards`
/// shards get one extra entry.
pub fn split_capacity(capacity: usize, requested: usize) -> Vec<usize> {
    let shards = normalized_shards(capacity, requested);
    let base = capacity / shards;
    let extra = capacity % shards;
    (0..shards).map(|i| base + usize::from(i < extra)).collect()
}

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A bounded least-recently-used map from `K` to `V`.
///
/// Generic over the hash builder `S` so callers keep their preferred hasher
/// (`rnn-core` uses its `FastHasher` for small tuple keys; the buffer pool
/// uses the std default).
///
/// A capacity of zero is allowed and caches nothing: every `insert` is
/// dropped and every `get` misses. Callers that consider an empty cache a
/// configuration error (e.g. the result cache, where zero means "disabled")
/// enforce that themselves.
#[derive(Debug)]
pub struct Lru<K, V, S = std::collections::hash_map::RandomState> {
    capacity: usize,
    map: HashMap<K, usize, S>,
    slots: Vec<Slot<K, V>>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl<K: Eq + Hash + Clone, V, S: BuildHasher + Default> Lru<K, V, S> {
    /// Creates an empty LRU bounded at `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Lru {
            capacity,
            map: HashMap::with_hasher(S::default()),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }
}

impl<K: Eq + Hash + Clone, V, S: BuildHasher> Lru<K, V, S> {
    /// The bound this LRU evicts at.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident entries (never exceeds the capacity).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns `true` if `key` is resident, without touching recency.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Looks up `key` and marks the entry most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &i = self.map.get(key)?;
        self.touch(i);
        Some(&self.slots[i].value)
    }

    /// Looks up `key` *without* touching recency (for stats and tests).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&i| &self.slots[i].value)
    }

    /// Like [`Lru::get`], but returns a mutable reference (the entry is
    /// marked most recently used exactly as `get` does).
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let &i = self.map.get(key)?;
        self.touch(i);
        Some(&mut self.slots[i].value)
    }

    /// Like [`Lru::peek`], but returns a mutable reference — the recency
    /// order is *not* touched. Used by caches that update per-entry metadata
    /// (e.g. a prefetched flag) without promoting the entry.
    pub fn peek_mut(&mut self, key: &K) -> Option<&mut V> {
        let &i = self.map.get(key)?;
        Some(&mut self.slots[i].value)
    }

    /// Inserts (or refreshes) an entry, marking it most recently used.
    ///
    /// Returns the evicted `(key, value)` pair when the insert pushed the
    /// least recently used entry out; refreshing an existing key and inserts
    /// below capacity return `None`. With `capacity == 0` the entry is simply
    /// dropped (nothing was evicted to make room, so this also returns
    /// `None`).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.touch(i);
            return None;
        }
        if self.slots.len() < self.capacity {
            let i = self.slots.len();
            self.slots.push(Slot { key: key.clone(), value, prev: NIL, next: NIL });
            self.map.insert(key, i);
            self.push_front(i);
            return None;
        }
        // Evict the least recently used slot and reuse it for the new entry.
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "a full non-zero-capacity LRU has a tail");
        self.unlink(victim);
        let old_key = std::mem::replace(&mut self.slots[victim].key, key.clone());
        let old_value = std::mem::replace(&mut self.slots[victim].value, value);
        self.map.remove(&old_key);
        self.map.insert(key, victim);
        self.push_front(victim);
        Some((old_key, old_value))
    }

    /// Inserts an entry at the **least** recently used position — the cold
    /// end of the list, so it is the next victim unless it is touched first.
    ///
    /// This is how speculative (prefetched) pages are admitted: they must
    /// not displace the recency standing of demand-fetched entries. An
    /// existing key has its value replaced in place *without* touching
    /// recency; a full cache evicts its current victim to make room (the
    /// evicted pair is returned), and `capacity == 0` drops the entry.
    pub fn insert_cold(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            return None;
        }
        if self.slots.len() < self.capacity {
            let i = self.slots.len();
            self.slots.push(Slot { key: key.clone(), value, prev: NIL, next: NIL });
            self.map.insert(key, i);
            self.push_back(i);
            return None;
        }
        // Evict the current victim and reuse its slot at the cold end.
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "a full non-zero-capacity LRU has a tail");
        self.unlink(victim);
        let old_key = std::mem::replace(&mut self.slots[victim].key, key.clone());
        let old_value = std::mem::replace(&mut self.slots[victim].value, value);
        self.map.remove(&old_key);
        self.map.insert(key, victim);
        self.push_back(victim);
        Some((old_key, old_value))
    }

    /// Removes and returns the least recently used entry, or `None` when
    /// empty.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let victim = self.tail;
        self.unlink(victim);
        self.map.remove(&self.slots[victim].key);
        // The slot vector stays dense: move the last slot into the vacated
        // index and re-point its map entry and list neighbors.
        let removed = self.slots.swap_remove(victim);
        if victim < self.slots.len() {
            let moved_key = self.slots[victim].key.clone();
            self.map.insert(moved_key, victim);
            let (prev, next) = (self.slots[victim].prev, self.slots[victim].next);
            if prev != NIL {
                self.slots[prev].next = victim;
            } else {
                self.head = victim;
            }
            if next != NIL {
                self.slots[next].prev = victim;
            } else {
                self.tail = victim;
            }
        }
        Some((removed.key, removed.value))
    }

    /// Changes the bound this LRU evicts at, without touching the resident
    /// entries: after a shrink the cache may be over-full until the caller
    /// drains it with [`Lru::pop_lru`] (the buffer pool's `resize` does
    /// exactly that — and deliberately keeps the drained entries out of its
    /// eviction counters; see `BufferPool::resize`). A grow simply leaves
    /// headroom for future inserts.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Drops every entry (the capacity is unchanged).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// The resident keys from most to least recently used (the reverse of
    /// the victim order). For assertions and debugging; O(len).
    pub fn keys_mru_to_lru(&self) -> Vec<K> {
        let mut keys = Vec::with_capacity(self.slots.len());
        let mut i = self.head;
        while i != NIL {
            keys.push(self.slots[i].key.clone());
            i = self.slots[i].next;
        }
        keys
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[i].prev = NIL;
        self.slots[i].next = NIL;
    }

    fn push_back(&mut self, i: usize) {
        self.slots[i].next = NIL;
        self.slots[i].prev = self.tail;
        if self.tail != NIL {
            self.slots[self.tail].next = i;
        }
        self.tail = i;
        if self.head == NIL {
            self.head = i;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head == i {
            return;
        }
        self.unlink(i);
        self.push_front(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestLru = Lru<u32, String>;

    fn lru(capacity: usize) -> TestLru {
        Lru::new(capacity)
    }

    fn val(i: u32) -> String {
        format!("v{i}")
    }

    #[test]
    fn exact_victim_order_through_mixed_hits_and_inserts() {
        // The reference sequence the seed buffer-pool tests pinned down; the
        // generic LRU must reproduce it slot for slot.
        let mut c = lru(3);
        assert!(c.insert(0, val(0)).is_none()); // MRU first: [0]
        assert!(c.insert(1, val(1)).is_none()); // [1, 0]
        assert!(c.insert(2, val(2)).is_none()); // [2, 1, 0]
        assert_eq!(c.keys_mru_to_lru(), vec![2, 1, 0]);
        assert_eq!(c.get(&0), Some(&val(0))); // hit -> [0, 2, 1]
        assert_eq!(c.insert(3, val(3)), Some((1, val(1)))); // evicts 1 -> [3, 0, 2]
        assert_eq!(c.keys_mru_to_lru(), vec![3, 0, 2]);
        assert_eq!(c.get(&2), Some(&val(2))); // hit -> [2, 3, 0]
        assert_eq!(c.insert(1, val(1)), Some((0, val(0)))); // evicts 0
        assert_eq!(c.keys_mru_to_lru(), vec![1, 2, 3]);
        assert_eq!(c.get(&0), None, "0 was the LRU victim");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn refreshing_an_existing_key_updates_value_and_recency_without_evicting() {
        let mut c = lru(2);
        c.insert(0, val(0));
        c.insert(1, val(1));
        assert!(c.insert(0, "fresh".to_string()).is_none(), "refresh is not an eviction");
        assert_eq!(c.insert(2, val(2)), Some((1, val(1))), "1 became the LRU entry");
        assert_eq!(c.get(&0), Some(&"fresh".to_string()));
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn pop_lru_drains_in_reverse_recency_order() {
        let mut c = lru(4);
        for i in 0..4 {
            c.insert(i, val(i));
        }
        c.get(&0); // [0, 3, 2, 1]
        assert_eq!(c.pop_lru(), Some((1, val(1))));
        assert_eq!(c.pop_lru(), Some((2, val(2))));
        // The swap_remove compaction must keep links and map intact.
        assert_eq!(c.keys_mru_to_lru(), vec![0, 3]);
        assert_eq!(c.get(&3), Some(&val(3)));
        assert_eq!(c.pop_lru(), Some((0, val(0))), "the hit made 3 the MRU entry");
        assert_eq!(c.pop_lru(), Some((3, val(3))));
        assert_eq!(c.pop_lru(), None);
        assert!(c.is_empty());
        // The drained cache is fully reusable.
        c.insert(9, val(9));
        assert_eq!(c.keys_mru_to_lru(), vec![9]);
    }

    #[test]
    fn pop_lru_interleaved_with_inserts_keeps_the_slot_vector_consistent() {
        // Exercises the swap_remove fix-up when the victim is not the last
        // slot, repeatedly.
        let mut c = lru(8);
        for i in 0..8 {
            c.insert(i, val(i));
        }
        for round in 0..20u32 {
            let (k, v) = c.pop_lru().expect("non-empty");
            assert_eq!(v, val(k), "round {round}: value stayed attached to its key");
            c.insert(100 + round, val(100 + round));
            assert_eq!(c.len(), 8);
            // Every surviving key still resolves to its own value.
            let keys = c.keys_mru_to_lru();
            assert_eq!(keys.len(), 8);
            for k in keys {
                assert_eq!(c.peek(&k), Some(&val(k)), "round {round}");
            }
        }
    }

    #[test]
    fn capacity_one_keeps_only_the_latest() {
        let mut c = lru(1);
        for i in 0..5 {
            let evicted = c.insert(i, val(i));
            if i == 0 {
                assert!(evicted.is_none());
            } else {
                assert_eq!(evicted, Some((i - 1, val(i - 1))));
            }
            assert_eq!(c.len(), 1);
        }
        assert_eq!(c.get(&4), Some(&val(4)));
        assert_eq!(c.get(&3), None);
    }

    #[test]
    fn capacity_zero_caches_nothing() {
        let mut c = lru(0);
        assert!(c.insert(1, val(1)).is_none(), "nothing was evicted to make room");
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.pop_lru(), None);
        assert!(!c.contains(&1));
    }

    #[test]
    fn set_capacity_shrinks_and_grows_the_bound() {
        let mut c = lru(4);
        for i in 0..4 {
            c.insert(i, val(i));
        }
        // Shrink: entries stay resident until the caller drains; the next
        // pops still come out in exact LRU order.
        c.set_capacity(2);
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.len(), 4, "shrinking does not drop entries by itself");
        while c.len() > c.capacity() {
            c.pop_lru();
        }
        assert_eq!(c.keys_mru_to_lru(), vec![3, 2], "the LRU entries were drained first");
        // Grow: new headroom fills with fresh slots before evicting again.
        c.set_capacity(3);
        assert!(c.insert(7, val(7)).is_none(), "grown capacity absorbs the insert");
        assert_eq!(c.insert(8, val(8)), Some((2, val(2))), "then LRU eviction resumes");
        assert_eq!(c.keys_mru_to_lru(), vec![8, 7, 3]);
    }

    #[test]
    fn clear_resets_to_empty_and_stays_usable() {
        let mut c = lru(3);
        for i in 0..3 {
            c.insert(i, val(i));
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 3);
        assert_eq!(c.get(&0), None);
        c.insert(7, val(7));
        assert_eq!(c.keys_mru_to_lru(), vec![7]);
    }

    #[test]
    fn peek_and_contains_do_not_touch_recency() {
        let mut c = lru(2);
        c.insert(0, val(0));
        c.insert(1, val(1)); // [1, 0]
        assert_eq!(c.peek(&0), Some(&val(0)));
        assert!(c.contains(&0));
        // 0 is still the LRU entry: the peek must not have promoted it.
        assert_eq!(c.insert(2, val(2)), Some((0, val(0))));
    }

    #[test]
    fn get_mut_touches_recency_and_peek_mut_does_not() {
        let mut c = lru(2);
        c.insert(0, val(0));
        c.insert(1, val(1)); // [1, 0]
        *c.peek_mut(&0).unwrap() = "peeked".to_string();
        // 0 is still the LRU entry: peek_mut must not have promoted it.
        assert_eq!(c.keys_mru_to_lru(), vec![1, 0]);
        *c.get_mut(&0).unwrap() = "touched".to_string();
        assert_eq!(c.keys_mru_to_lru(), vec![0, 1], "get_mut promotes like get");
        assert_eq!(c.peek(&0), Some(&"touched".to_string()));
        assert_eq!(c.get_mut(&9), None);
        assert_eq!(c.peek_mut(&9), None);
    }

    #[test]
    fn insert_cold_lands_at_the_victim_end() {
        let mut c = lru(3);
        c.insert(0, val(0));
        c.insert(1, val(1)); // [1, 0]
        assert!(c.insert_cold(7, val(7)).is_none(), "below capacity: nothing evicted");
        assert_eq!(c.keys_mru_to_lru(), vec![1, 0, 7], "cold entry is the next victim");
        // A full cache evicts its current victim (the cold entry itself) to
        // admit the next cold insert at the tail.
        assert_eq!(c.insert_cold(8, val(8)), Some((7, val(7))));
        assert_eq!(c.keys_mru_to_lru(), vec![1, 0, 8]);
        // A touch rescues a cold entry like any other.
        assert_eq!(c.get(&8), Some(&val(8)));
        assert_eq!(c.insert(2, val(2)), Some((0, val(0))), "0 became the victim");
        // Refreshing an existing key in place does not move it.
        assert!(c.insert_cold(8, "fresh".to_string()).is_none());
        assert_eq!(c.keys_mru_to_lru(), vec![2, 8, 1]);
        assert_eq!(c.peek(&8), Some(&"fresh".to_string()));
        // Capacity zero drops cold inserts like ordinary ones.
        let mut z = lru(0);
        assert!(z.insert_cold(1, val(1)).is_none());
        assert!(z.is_empty());
    }

    #[test]
    fn insert_cold_into_an_empty_cache_links_head_and_tail() {
        let mut c = lru(2);
        assert!(c.insert_cold(5, val(5)).is_none());
        assert_eq!(c.keys_mru_to_lru(), vec![5]);
        assert_eq!(c.get(&5), Some(&val(5)));
        assert_eq!(c.pop_lru(), Some((5, val(5))));
        assert_eq!(c.pop_lru(), None);
    }

    #[test]
    fn matches_a_naive_reference_model_on_a_pseudorandom_trace() {
        // Cross-check get/insert/pop against an O(n) Vec-based model over a
        // deterministic mixed trace.
        let mut c: Lru<u32, u32> = Lru::new(5);
        let mut model: Vec<(u32, u32)> = Vec::new(); // MRU first
        let mut state = 0x9e3779b9u64;
        for step in 0..2000u32 {
            state = mix64(state.wrapping_add(step as u64));
            let key = (state % 13) as u32;
            match state % 5 {
                0 => {
                    let got = c.get(&key).copied();
                    let want = model.iter().position(|&(k, _)| k == key).map(|i| {
                        let e = model.remove(i);
                        model.insert(0, e);
                        e.1
                    });
                    assert_eq!(got, want, "step {step}: get({key})");
                }
                4 => {
                    assert_eq!(c.pop_lru(), model.pop(), "step {step}: pop_lru");
                }
                _ => {
                    let evicted = c.insert(key, step);
                    let expect_evicted = if let Some(i) = model.iter().position(|&(k, _)| k == key)
                    {
                        model.remove(i);
                        model.insert(0, (key, step));
                        None
                    } else {
                        model.insert(0, (key, step));
                        if model.len() > 5 {
                            model.pop()
                        } else {
                            None
                        }
                    };
                    assert_eq!(evicted, expect_evicted, "step {step}: insert({key})");
                }
            }
            assert_eq!(c.len(), model.len(), "step {step}");
            assert_eq!(
                c.keys_mru_to_lru(),
                model.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
                "step {step}: full recency order"
            );
        }
    }

    #[test]
    fn mix64_spreads_sequential_ids_across_low_bits() {
        // Shard selection uses `mix64(id) & (shards - 1)`; sequential page
        // ids must not all land on one shard.
        let shards = 8u64;
        let mut counts = [0usize; 8];
        for id in 0..8000u64 {
            counts[(mix64(id) & (shards - 1)) as usize] += 1;
        }
        for (s, &n) in counts.iter().enumerate() {
            assert!(n > 500, "shard {s} got only {n} of 8000 sequential ids");
        }
    }
}

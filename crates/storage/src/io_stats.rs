//! I/O accounting.
//!
//! The experiments in the paper report the number of page accesses that miss
//! the LRU buffer (charged at 10 ms each) separately from CPU time.
//! [`IoCounters`] is the shared, thread-safe counter bundle that the buffer
//! pool updates and the benchmark harness reads; [`IoStats`] is an immutable
//! snapshot.

use parking_lot::Mutex;
use std::sync::Arc;

/// An immutable snapshot of I/O activity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Logical page accesses (every adjacency-list fetch).
    pub accesses: u64,
    /// Accesses that missed the buffer and had to "read from disk".
    pub faults: u64,
    /// Pages evicted from the buffer to make room for a faulted page.
    pub evictions: u64,
}

impl IoStats {
    /// Buffer hit ratio in `[0, 1]`; `1.0` when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            return 1.0;
        }
        1.0 - (self.faults as f64 / self.accesses as f64)
    }

    /// The difference `self - earlier`, used to attribute I/O to a single
    /// query inside a longer workload.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            accesses: self.accesses - earlier.accesses,
            faults: self.faults - earlier.faults,
            evictions: self.evictions - earlier.evictions,
        }
    }

    /// Adds another snapshot to this one (used when aggregating workloads).
    pub fn accumulate(&mut self, other: &IoStats) {
        self.accesses += other.accesses;
        self.faults += other.faults;
        self.evictions += other.evictions;
    }
}

/// Shared, thread-safe I/O counters.
///
/// Cloning an `IoCounters` yields a handle to the *same* counters, so a
/// benchmark can keep one handle while the buffer pool updates another.
#[derive(Clone, Default, Debug)]
pub struct IoCounters {
    inner: Arc<Mutex<IoStats>>,
}

impl IoCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one logical access; `fault` tells whether it missed the
    /// buffer, `evicted` whether a page was evicted to serve it.
    pub fn record_access(&self, fault: bool, evicted: bool) {
        let mut s = self.inner.lock();
        s.accesses += 1;
        if fault {
            s.faults += 1;
        }
        if evicted {
            s.evictions += 1;
        }
    }

    /// Returns a snapshot of the current counters.
    pub fn snapshot(&self) -> IoStats {
        *self.inner.lock()
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        *self.inner.lock() = IoStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_accesses() {
        let c = IoCounters::new();
        c.record_access(true, false);
        c.record_access(false, false);
        c.record_access(true, true);
        let s = c.snapshot();
        assert_eq!(s, IoStats { accesses: 3, faults: 2, evictions: 1 });
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clones_share_state_and_reset_clears() {
        let c = IoCounters::new();
        let c2 = c.clone();
        c2.record_access(true, false);
        assert_eq!(c.snapshot().faults, 1);
        c.reset();
        assert_eq!(c2.snapshot(), IoStats::default());
        assert_eq!(c2.snapshot().hit_ratio(), 1.0);
    }

    #[test]
    fn since_and_accumulate() {
        let a = IoStats { accesses: 10, faults: 4, evictions: 2 };
        let b = IoStats { accesses: 7, faults: 1, evictions: 0 };
        let d = a.since(&b);
        assert_eq!(d, IoStats { accesses: 3, faults: 3, evictions: 2 });
        let mut acc = IoStats::default();
        acc.accumulate(&a);
        acc.accumulate(&b);
        assert_eq!(acc.accesses, 17);
        assert_eq!(acc.faults, 5);
    }

    #[test]
    fn hit_ratio_edge_cases() {
        assert_eq!(IoStats::default().hit_ratio(), 1.0, "no accesses counts as all hits");
        let all_faults = IoStats { accesses: 5, faults: 5, evictions: 0 };
        assert_eq!(all_faults.hit_ratio(), 0.0);
        let all_hits = IoStats { accesses: 5, faults: 0, evictions: 0 };
        assert_eq!(all_hits.hit_ratio(), 1.0);
    }

    #[test]
    fn per_query_attribution_with_since() {
        // The harness pattern: snapshot before each query, diff after.
        let c = IoCounters::new();
        c.record_access(true, false); // warmup access
        let before = c.snapshot();
        c.record_access(true, false);
        c.record_access(false, false);
        c.record_access(false, false);
        let query_io = c.snapshot().since(&before);
        assert_eq!(query_io, IoStats { accesses: 3, faults: 1, evictions: 0 });
    }

    #[test]
    fn concurrent_recording_loses_no_accesses() {
        use std::sync::Arc;
        let c = IoCounters::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        c.record_access(i % 2 == 0, i % 10 == 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.accesses, 2000);
        assert_eq!(s.faults, 1000);
        assert_eq!(s.evictions, 200);
        let _ = Arc::new(c); // counters remain usable behind an Arc
    }
}

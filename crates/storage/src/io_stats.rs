//! I/O accounting.
//!
//! The experiments in the paper report the number of page accesses that miss
//! the LRU buffer (charged at 10 ms each) separately from CPU time.
//! [`IoCounters`] is the shared, thread-safe counter bundle that the buffer
//! pool updates and the benchmark harness reads; [`IoStats`] is an immutable
//! snapshot.
//!
//! Counters are kept **per accessing thread** and merged on read: the global
//! snapshot is always the sum of the per-thread snapshots. This lets the
//! batched query engine attribute I/O to an individual query even while other
//! worker threads hammer the same shared buffer pool — each worker diffs its
//! *own* thread's counters around the query it is running.
//!
//! # Lock-freedom
//!
//! [`IoCounters::record_access`] runs on **every page access** of every
//! worker, so it must not serialize the pool. Each recording thread owns a
//! shard of relaxed atomic counters; the thread finds its shard through a
//! thread-local cache keyed by the counter handle's unique id, so the
//! steady-state record path is: one thread-local read, one id compare, three
//! relaxed `fetch_add`s — no lock, no shared cache line with other writers.
//!
//! [`IoCounters::snapshot`] is the poll path — the serving layer reads it on
//! every stats poll — and it never takes a lock either. Shards live in a
//! grow-only chunked slab ([`ShardSlab`]) whose published length a reader
//! walks directly, and the folded totals of retired threads sit in a cell of
//! plain atomics. The rare *structural* transitions — folding a retiring
//! thread's shard into the retired cell, or [`IoCounters::reset`] zeroing
//! everything — are sandwiched in a seqlock version window (the same
//! version/fence discipline as the server's published-metrics cells): a
//! reader that overlaps one simply rereads, so a snapshot can never see a
//! retiring thread's counts both in its shard and in the retired total (or in
//! neither).
//!
//! A mutex-protected registry still exists, but only for cold-path
//! bookkeeping: assigning a slab slot on a thread's first access, recycling
//! slots on [`IoCounters::retire_current_thread`], and
//! [`IoCounters::per_thread_snapshots`]. Only the owning thread ever *writes*
//! a live shard. Exact totals require quiescence (e.g. after a batch's
//! workers were joined), but a mid-run snapshot is still *internally
//! consistent* — the release/acquire ordering on the shard fields guarantees
//! `evictions <= faults <= accesses` at any moment.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::ops::AddAssign;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::ThreadId;

/// An immutable snapshot of I/O activity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Logical page accesses (every adjacency-list fetch).
    pub accesses: u64,
    /// Accesses that missed the buffer and had to "read from disk".
    pub faults: u64,
    /// Pages evicted from the buffer to make room for a faulted page.
    pub evictions: u64,
}

impl IoStats {
    /// Buffer hit ratio in `[0, 1]`; `1.0` when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            return 1.0;
        }
        1.0 - (self.faults as f64 / self.accesses as f64)
    }

    /// The difference `self - earlier`, used to attribute I/O to a single
    /// query inside a longer workload.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            accesses: self.accesses - earlier.accesses,
            faults: self.faults - earlier.faults,
            evictions: self.evictions - earlier.evictions,
        }
    }

    /// Sums an iterator of snapshots into one (e.g. merging the per-thread
    /// counters of a batch, or graph + materialized-table I/O).
    pub fn merged<'a, I: IntoIterator<Item = &'a IoStats>>(parts: I) -> IoStats {
        let mut total = IoStats::default();
        for p in parts {
            total += p;
        }
        total
    }
}

impl AddAssign<&IoStats> for IoStats {
    fn add_assign(&mut self, other: &IoStats) {
        self.accesses += other.accesses;
        self.faults += other.faults;
        self.evictions += other.evictions;
    }
}

impl AddAssign for IoStats {
    fn add_assign(&mut self, other: IoStats) {
        *self += &other;
    }
}

/// One recording thread's counter shard. Only the owning thread increments;
/// everyone else reads when merging.
///
/// Writes and reads are ordered so that a snapshot taken *during* recording
/// still satisfies `evictions <= faults <= accesses`: the writer bumps
/// `accesses` first and publishes `faults` / `evictions` with `Release`,
/// the reader loads in the opposite order with `Acquire`. Seeing the n-th
/// fault therefore guarantees seeing its preceding access (single writer,
/// release/acquire prefix) — a mid-run `hit_ratio()` can never go negative.
#[derive(Debug, Default)]
struct ThreadShard {
    accesses: AtomicU64,
    faults: AtomicU64,
    evictions: AtomicU64,
}

impl ThreadShard {
    fn record(&self, fault: bool, evicted: bool) {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        if fault {
            self.faults.fetch_add(1, Ordering::Release);
        }
        if evicted {
            self.evictions.fetch_add(1, Ordering::Release);
        }
    }

    fn snapshot(&self) -> IoStats {
        let evictions = self.evictions.load(Ordering::Acquire);
        let faults = self.faults.load(Ordering::Acquire);
        let accesses = self.accesses.load(Ordering::Relaxed);
        IoStats { accesses, faults, evictions }
    }

    /// Zeroing never races a [`IoCounters::snapshot`]: every `zero` call
    /// sits inside a seqlock update window (retirement, reset), so a
    /// concurrent snapshot rereads instead of observing a torn mix of old
    /// and new counts. A concurrent *recorder* racing `reset` is still
    /// inherently approximate — like the seed's mutex version, `reset` is a
    /// quiescent-point operation, and the buffer pool's `clear_and_reset` /
    /// `reset_stats` exclude its recorders via the shard locks.
    fn zero(&self) {
        self.evictions.store(0, Ordering::Relaxed);
        self.faults.store(0, Ordering::Relaxed);
        self.accesses.store(0, Ordering::Relaxed);
    }
}

/// Number of chunks in a [`ShardSlab`]: chunk `c` holds `8 << c` shards, so
/// 24 chunks cover ~134 million recording threads — growth is by chunk, and
/// no chunk is allocated before a slot in it is needed.
const SLAB_CHUNKS: usize = 24;

/// A grow-only slab of [`ThreadShard`]s that readers walk without locking.
///
/// Shards must stay at stable addresses while readers traverse them, so the
/// slab never reallocates: it appends geometrically sized chunks, each
/// materialized at most once through its [`OnceLock`]. `len` is the number
/// of slots ever handed out; it is bumped with a `Release` store *after* the
/// backing chunk is initialized, so a reader that `Acquire`-loads `len` can
/// dereference every slot below it. Slots of retired threads are zeroed and
/// recycled through the registry's free list — a freed slot contributes
/// nothing to a walk until a new thread claims it.
#[derive(Debug)]
struct ShardSlab {
    len: AtomicUsize,
    chunks: [OnceLock<Box<[ThreadShard]>>; SLAB_CHUNKS],
}

impl ShardSlab {
    fn new() -> Self {
        ShardSlab { len: AtomicUsize::new(0), chunks: std::array::from_fn(|_| OnceLock::new()) }
    }

    /// Maps a slot index to its (chunk, offset) pair: chunk `c` covers slots
    /// `[8 * (2^c - 1), 8 * (2^(c+1) - 1))`.
    fn chunk_of(slot: usize) -> (usize, usize) {
        let chunk = (slot / 8 + 1).ilog2() as usize;
        (chunk, slot - ((8 << chunk) - 8))
    }

    fn shard(&self, slot: usize) -> &ThreadShard {
        let (chunk, offset) = Self::chunk_of(slot);
        &self.chunks[chunk].get().expect("published slots live in initialized chunks")[offset]
    }

    /// Cold path (registry lock held): materialize the chunk holding `slot`
    /// (the next unused slot) and publish the grown length.
    fn grow_to(&self, slot: usize) {
        let (chunk, _) = Self::chunk_of(slot);
        self.chunks[chunk]
            .get_or_init(|| (0..8usize << chunk).map(|_| ThreadShard::default()).collect());
        self.len.store(slot + 1, Ordering::Release);
    }
}

/// The folded totals of retired threads, readable without a lock. Stores are
/// relaxed: every write happens inside the bundle's seqlock update window,
/// which is what keeps a concurrent reader from accepting a torn triple.
#[derive(Debug, Default)]
struct RetiredCell {
    accesses: AtomicU64,
    faults: AtomicU64,
    evictions: AtomicU64,
}

impl RetiredCell {
    fn load(&self) -> IoStats {
        IoStats {
            accesses: self.accesses.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn store(&self, stats: IoStats) {
        self.accesses.store(stats.accesses, Ordering::Relaxed);
        self.faults.store(stats.faults, Ordering::Relaxed);
        self.evictions.store(stats.evictions, Ordering::Relaxed);
    }
}

/// The cold-path registry: which slab slot each live recording thread owns,
/// plus the free list of recycled slots. The counters themselves live
/// outside the mutex (in the slab and the retired cell) so that reads never
/// take it.
///
/// Worker threads are expected to call [`IoCounters::retire_current_thread`]
/// before exiting (the query engine's batch workers do); that folds their
/// shard into the retired cell and recycles the slot, so neither the
/// registry nor the slab grows with the number of batches a long-lived
/// process has served.
#[derive(Debug, Default)]
struct Registry {
    free: Vec<usize>,
    threads: Vec<(ThreadId, usize)>,
}

impl Registry {
    fn position(&self, id: ThreadId) -> Option<usize> {
        self.threads.iter().position(|(t, _)| *t == id)
    }
}

#[derive(Debug)]
struct CountersInner {
    /// Unique per counter bundle (never reused), so the thread-local shard
    /// cache can key on it without any stale-pointer hazard.
    id: u64,
    /// Seqlock version for structural transitions (retire, reset). Even =
    /// stable; a writer makes it odd, moves counts, makes it even again.
    /// Writers are serialized by the registry mutex; readers never block,
    /// they reread on overlap.
    version: AtomicU64,
    retired: RetiredCell,
    slab: ShardSlab,
    registry: Mutex<Registry>,
}

impl CountersInner {
    /// Opens a structural update window (caller holds the registry mutex).
    /// The release fence pairs with the reader's acquire fence: any reader
    /// that observes a store made inside the window is guaranteed to observe
    /// the odd version on its re-check and reread.
    fn begin_update(&self) -> u64 {
        let version = self.version.load(Ordering::Relaxed);
        self.version.store(version + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        version + 2
    }

    fn end_update(&self, version: u64) {
        self.version.store(version, Ordering::Release);
    }
}

/// Source of the unique [`CountersInner::id`]s.
static NEXT_COUNTERS_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The calling thread's id, cached to keep the cold paths off the
    /// `thread::current()` handle-clone path.
    static CURRENT_THREAD_ID: ThreadId = std::thread::current().id();

    /// This thread's slab slot for each counter bundle it has recorded into:
    /// `(bundle id, bundle handle, slot)` triples, scanned linearly (a
    /// thread uses one or two bundles at a time). The weak handle exists
    /// only to detect dead bundles: entries whose bundle was dropped are
    /// pruned whenever a new bundle registers.
    static SHARD_CACHE: RefCell<Vec<(u64, Weak<CountersInner>, usize)>> =
        const { RefCell::new(Vec::new()) };
}

fn current_thread_id() -> ThreadId {
    CURRENT_THREAD_ID.with(|id| *id)
}

/// Shared, thread-safe I/O counters.
///
/// Cloning an `IoCounters` yields a handle to the *same* counters, so a
/// benchmark can keep one handle while the buffer pool updates another.
#[derive(Clone, Debug)]
pub struct IoCounters {
    inner: Arc<CountersInner>,
}

impl Default for IoCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl IoCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        IoCounters {
            inner: Arc::new(CountersInner {
                id: NEXT_COUNTERS_ID.fetch_add(1, Ordering::Relaxed),
                version: AtomicU64::new(0),
                retired: RetiredCell::default(),
                slab: ShardSlab::new(),
                registry: Mutex::new(Registry::default()),
            }),
        }
    }

    /// Records one logical access; `fault` tells whether it missed the
    /// buffer, `evicted` whether a page was evicted to serve it.
    ///
    /// Lock-free on the steady state: after a thread's first access the
    /// record path is a thread-local lookup plus relaxed `fetch_add`s on
    /// counters no other thread writes.
    pub fn record_access(&self, fault: bool, evicted: bool) {
        self.with_shard(|shard| shard.record(fault, evicted));
    }

    /// Runs `f` on the calling thread's shard, registering a slab slot on
    /// the first access (the only record path that ever takes the registry
    /// lock).
    fn with_shard<R>(&self, f: impl FnOnce(&ThreadShard) -> R) -> R {
        let slot = self.cached_slot().unwrap_or_else(|| self.register_current_thread());
        f(self.inner.slab.shard(slot))
    }

    /// The calling thread's slab slot for this bundle, if it has one.
    fn cached_slot(&self) -> Option<usize> {
        SHARD_CACHE.with(|cache| {
            cache.borrow().iter().find(|(id, _, _)| *id == self.inner.id).map(|&(_, _, slot)| slot)
        })
    }

    /// Cold path: assign the calling thread a slab slot (recycling a retired
    /// one if available) and remember it in the thread-local cache.
    fn register_current_thread(&self) -> usize {
        let id = current_thread_id();
        let slot = {
            let mut reg = self.inner.registry.lock();
            match reg.position(id) {
                Some(i) => reg.threads[i].1,
                None => {
                    let slot = reg.free.pop().unwrap_or_else(|| {
                        let next = self.inner.slab.len.load(Ordering::Relaxed);
                        self.inner.slab.grow_to(next);
                        next
                    });
                    reg.threads.push((id, slot));
                    slot
                }
            }
        };
        SHARD_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            // An entry whose counter bundle is gone can never be looked up
            // again (bundle ids are not reused): drop it so long-lived
            // threads recording into many short-lived bundles (tests,
            // benchmarks) do not grow the cache without bound.
            cache.retain(|(_, bundle, _)| bundle.strong_count() > 0);
            cache.push((self.inner.id, Arc::downgrade(&self.inner), slot));
        });
        slot
    }

    /// Returns the merged snapshot over every thread that recorded accesses,
    /// retired or live.
    ///
    /// Never takes a lock: the retired cell and the shard slab are read
    /// directly, and the seqlock version only forces a reread when the
    /// snapshot overlapped a thread retirement or an [`IoCounters::reset`] —
    /// so a poll never waits on recorders, and a retiring thread's counts
    /// are seen exactly once (in its shard before the fold, in the retired
    /// total after, never both or neither).
    pub fn snapshot(&self) -> IoStats {
        let inner = &*self.inner;
        loop {
            let v1 = inner.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let mut total = inner.retired.load();
            let len = inner.slab.len.load(Ordering::Acquire);
            for slot in 0..len {
                total += inner.slab.shard(slot).snapshot();
            }
            fence(Ordering::Acquire);
            if inner.version.load(Ordering::Relaxed) == v1 {
                return total;
            }
            std::hint::spin_loop();
        }
    }

    /// Returns the snapshot of the accesses recorded *by the calling thread*
    /// (since it last retired, if ever).
    ///
    /// Diffing this around a query (with [`IoStats::since`]) attributes I/O
    /// to that query even while other threads use the same buffer pool. Like
    /// the record path, this reads the thread's own shard without locking.
    pub fn snapshot_current_thread(&self) -> IoStats {
        if let Some(slot) = self.cached_slot() {
            return self.inner.slab.shard(slot).snapshot();
        }
        // Not cached on this thread: the thread never recorded (or retired),
        // so its view is empty — unless another handle on this same thread
        // registered it, which the cache covers (ids are per bundle, shared
        // by clones).
        let reg = self.inner.registry.lock();
        reg.position(current_thread_id())
            .map(|i| self.inner.slab.shard(reg.threads[i].1).snapshot())
            .unwrap_or_default()
    }

    /// Folds the calling thread's shard into the retired total and recycles
    /// its slab slot.
    ///
    /// Exiting worker threads (e.g. the query engine's batch workers) call
    /// this so the registry only ever tracks live threads — `ThreadId`s are
    /// never reused, so without retirement a long-lived process would
    /// accumulate one dead shard per worker per batch. No counts are lost:
    /// [`IoCounters::snapshot`] includes the retired total, and the fold
    /// happens inside a seqlock window so no concurrent snapshot can count
    /// the retiring shard twice (or miss it).
    pub fn retire_current_thread(&self) {
        let id = current_thread_id();
        {
            let mut reg = self.inner.registry.lock();
            if let Some(i) = reg.position(id) {
                let (_, slot) = reg.threads.swap_remove(i);
                let version = self.inner.begin_update();
                let shard = self.inner.slab.shard(slot);
                let mut retired = self.inner.retired.load();
                retired += shard.snapshot();
                self.inner.retired.store(retired);
                shard.zero();
                self.inner.end_update(version);
                reg.free.push(slot);
            }
        }
        // Drop the cache entry so a later access on this thread registers a
        // fresh slot ("the thread's live view starts over").
        SHARD_CACHE.with(|cache| {
            cache.borrow_mut().retain(|(cid, _, _)| *cid != self.inner.id);
        });
    }

    /// Live per-thread snapshots, in unspecified order. Their merge plus the
    /// retired total equals [`IoCounters::snapshot`].
    pub fn per_thread_snapshots(&self) -> Vec<IoStats> {
        let reg = self.inner.registry.lock();
        reg.threads.iter().map(|&(_, slot)| self.inner.slab.shard(slot).snapshot()).collect()
    }

    /// Resets all counters (every thread's, and the retired total) to zero.
    ///
    /// Registered threads stay registered with zeroed counts — their slab
    /// slots remain valid, so concurrent recorders keep counting into the
    /// same (now zeroed) shards. Concurrent *snapshots* reread around the
    /// reset (it runs inside a seqlock window) and therefore see either
    /// all-old or all-new counts, never a torn mix.
    pub fn reset(&self) {
        let reg = self.inner.registry.lock();
        let version = self.inner.begin_update();
        self.inner.retired.store(IoStats::default());
        let len = self.inner.slab.len.load(Ordering::Relaxed);
        for slot in 0..len {
            self.inner.slab.shard(slot).zero();
        }
        self.inner.end_update(version);
        drop(reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_accesses() {
        let c = IoCounters::new();
        c.record_access(true, false);
        c.record_access(false, false);
        c.record_access(true, true);
        let s = c.snapshot();
        assert_eq!(s, IoStats { accesses: 3, faults: 2, evictions: 1 });
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
        // single-threaded: the calling thread's view is the whole view
        assert_eq!(c.snapshot_current_thread(), s);
    }

    #[test]
    fn clones_share_state_and_reset_clears() {
        let c = IoCounters::new();
        let c2 = c.clone();
        c2.record_access(true, false);
        assert_eq!(c.snapshot().faults, 1);
        c.reset();
        assert_eq!(c2.snapshot(), IoStats::default());
        assert_eq!(c2.snapshot().hit_ratio(), 1.0);
        assert_eq!(c2.snapshot_current_thread(), IoStats::default());
        // Recording keeps working after a reset (the zeroed shard is reused).
        c.record_access(false, false);
        assert_eq!(c2.snapshot(), IoStats { accesses: 1, faults: 0, evictions: 0 });
    }

    #[test]
    fn since_and_add_assign() {
        let a = IoStats { accesses: 10, faults: 4, evictions: 2 };
        let b = IoStats { accesses: 7, faults: 1, evictions: 0 };
        let d = a.since(&b);
        assert_eq!(d, IoStats { accesses: 3, faults: 3, evictions: 2 });
        let mut acc = IoStats::default();
        acc += &a;
        acc += b; // by value
        assert_eq!(acc.accesses, 17);
        assert_eq!(acc.faults, 5);
        assert_eq!(IoStats::merged([&a, &b]), acc);
        assert_eq!(IoStats::merged([]), IoStats::default());
    }

    #[test]
    fn hit_ratio_edge_cases() {
        assert_eq!(IoStats::default().hit_ratio(), 1.0, "no accesses counts as all hits");
        let all_faults = IoStats { accesses: 5, faults: 5, evictions: 0 };
        assert_eq!(all_faults.hit_ratio(), 0.0);
        let all_hits = IoStats { accesses: 5, faults: 0, evictions: 0 };
        assert_eq!(all_hits.hit_ratio(), 1.0);
    }

    #[test]
    fn per_query_attribution_with_since() {
        // The harness pattern: snapshot before each query, diff after.
        let c = IoCounters::new();
        c.record_access(true, false); // warmup access
        let before = c.snapshot();
        c.record_access(true, false);
        c.record_access(false, false);
        c.record_access(false, false);
        let query_io = c.snapshot().since(&before);
        assert_eq!(query_io, IoStats { accesses: 3, faults: 1, evictions: 0 });
    }

    #[test]
    fn concurrent_recording_loses_no_accesses_and_merge_matches_total() {
        use std::sync::Arc;
        let c = IoCounters::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        c.record_access(i % 2 == 0, i % 10 == 0);
                    }
                    // every worker sees exactly its own 500 accesses
                    assert_eq!(c.snapshot_current_thread().accesses, 500);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.accesses, 2000);
        assert_eq!(s.faults, 1000);
        assert_eq!(s.evictions, 200);
        // the global snapshot is exactly the merge of the per-thread parts
        let parts = c.per_thread_snapshots();
        assert_eq!(parts.len(), 4, "one shard per recording thread");
        assert_eq!(IoStats::merged(parts.iter()), s);
        let _ = Arc::new(c); // counters remain usable behind an Arc
    }

    #[test]
    fn retiring_folds_counts_without_losing_them() {
        let c = IoCounters::new();
        c.record_access(true, false);
        // Worker threads record, retire, and exit; the live registry must not
        // accumulate their (never reused) ThreadIds.
        for round in 0..3 {
            let worker = {
                let c = c.clone();
                std::thread::spawn(move || {
                    c.record_access(true, false);
                    c.record_access(false, false);
                    c.retire_current_thread();
                    // After retiring, the thread's live view starts over.
                    assert_eq!(c.snapshot_current_thread(), IoStats::default());
                })
            };
            worker.join().unwrap();
            assert_eq!(
                c.per_thread_snapshots().len(),
                1,
                "round {round}: only the main thread stays in the live registry"
            );
        }
        let s = c.snapshot();
        assert_eq!(s.accesses, 7, "retired totals are preserved in the merged snapshot");
        assert_eq!(s.faults, 4);
        // Retiring a thread that never recorded is a no-op.
        c.retire_current_thread();
        c.retire_current_thread();
        assert_eq!(c.snapshot().accesses, 7);
        assert!(c.per_thread_snapshots().is_empty());
        // reset clears the retired total too.
        c.reset();
        assert_eq!(c.snapshot(), IoStats::default());
    }

    #[test]
    fn recording_after_retiring_registers_a_fresh_shard() {
        let c = IoCounters::new();
        c.record_access(true, false);
        c.retire_current_thread();
        assert!(c.per_thread_snapshots().is_empty());
        c.record_access(false, false);
        assert_eq!(
            c.snapshot_current_thread(),
            IoStats { accesses: 1, faults: 0, evictions: 0 },
            "the view after retirement starts over"
        );
        assert_eq!(c.per_thread_snapshots().len(), 1);
        assert_eq!(c.snapshot().accesses, 2, "the retired access is still in the total");
    }

    #[test]
    fn thread_attribution_is_exact_under_interleaving() {
        // Two threads interleave on the same counters; each thread's local
        // snapshot diff must see only its own accesses.
        let c = IoCounters::new();
        c.record_access(true, false); // main-thread noise
        let worker = {
            let c = c.clone();
            std::thread::spawn(move || {
                let before = c.snapshot_current_thread();
                assert_eq!(before, IoStats::default());
                c.record_access(true, false);
                c.record_access(false, false);
                c.snapshot_current_thread().since(&before)
            })
        };
        let local = worker.join().unwrap();
        assert_eq!(local, IoStats { accesses: 2, faults: 1, evictions: 0 });
        assert_eq!(c.snapshot().accesses, 3);
    }

    #[test]
    fn distinct_counter_bundles_do_not_mix_even_on_one_thread() {
        // The thread-local shard cache is keyed by bundle id: two bundles
        // recorded into by the same thread must stay independent.
        let a = IoCounters::new();
        let b = IoCounters::new();
        a.record_access(true, false);
        b.record_access(false, false);
        b.record_access(false, false);
        assert_eq!(a.snapshot(), IoStats { accesses: 1, faults: 1, evictions: 0 });
        assert_eq!(b.snapshot(), IoStats { accesses: 2, faults: 0, evictions: 0 });
        assert_eq!(a.snapshot_current_thread().accesses, 1);
        assert_eq!(b.snapshot_current_thread().accesses, 2);
    }

    #[test]
    fn dropped_bundles_are_pruned_from_the_thread_local_cache() {
        // Record into many short-lived bundles on one thread; each new
        // registration prunes entries whose bundle is gone, so the cache
        // stays bounded by the number of *live* bundles.
        let keep = IoCounters::new();
        keep.record_access(false, false);
        for _ in 0..100 {
            let c = IoCounters::new();
            c.record_access(true, false);
            drop(c);
        }
        let cached = SHARD_CACHE.with(|cache| cache.borrow().len());
        assert!(cached <= 2, "cache holds live bundles only, found {cached} entries");
        assert_eq!(keep.snapshot().accesses, 1, "the surviving bundle is unaffected");
    }

    #[test]
    fn slab_slot_math_partitions_the_index_space() {
        // Chunk c covers [8 * (2^c - 1), 8 * (2^(c+1) - 1)) — contiguous,
        // gap-free, and sized 8 << c.
        let mut expected_chunk = 0;
        let mut expected_offset = 0;
        for slot in 0..10_000 {
            let (chunk, offset) = ShardSlab::chunk_of(slot);
            assert_eq!((chunk, offset), (expected_chunk, expected_offset), "slot {slot}");
            expected_offset += 1;
            if expected_offset == 8 << expected_chunk {
                expected_chunk += 1;
                expected_offset = 0;
            }
        }
    }

    #[test]
    fn retired_slab_slots_are_recycled() {
        // Threads that retire hand their slot back; the slab must not grow
        // with the number of worker generations, only with the peak number
        // of concurrently live recording threads.
        let c = IoCounters::new();
        c.record_access(false, false); // main thread takes slot 0
        for _ in 0..50 {
            let worker = {
                let c = c.clone();
                std::thread::spawn(move || {
                    c.record_access(true, false);
                    c.retire_current_thread();
                })
            };
            worker.join().unwrap();
        }
        let slots = c.inner.slab.len.load(Ordering::Relaxed);
        assert!(slots <= 2, "50 retired generations must reuse one slot, grew to {slots}");
        let s = c.snapshot();
        assert_eq!(s.accesses, 51);
        assert_eq!(s.faults, 50);
    }

    #[test]
    fn snapshots_stay_consistent_under_concurrent_retirement() {
        // Pollers hammer snapshot() while recorder threads register, record,
        // and retire in a loop. Every snapshot must be internally consistent
        // (evictions <= faults <= accesses) and never lose or double-count a
        // retiring thread's folds; the final quiescent total is exact.
        use std::sync::atomic::AtomicBool;
        let c = IoCounters::new();
        let stop = Arc::new(AtomicBool::new(false));
        const ROUNDS: u64 = 200;
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let c = c.clone();
                scope.spawn(move || {
                    for i in 0..ROUNDS {
                        c.record_access(true, i % 4 == 0);
                        c.record_access(false, false);
                        // Retiring re-registers on the next access, cycling
                        // the slot through the free list every round.
                        c.retire_current_thread();
                    }
                });
            }
            let poller = {
                let c = c.clone();
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut polls = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let s = c.snapshot();
                        assert!(s.evictions <= s.faults, "torn snapshot: {s:?}");
                        assert!(s.faults <= s.accesses, "torn snapshot: {s:?}");
                        assert!(s.accesses <= 4 * ROUNDS, "over-counted snapshot: {s:?}");
                        polls += 1;
                    }
                    polls
                })
            };
            let flagger = {
                let c = c.clone();
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    // Stop the poller once both recorders' work is fully
                    // visible: 4 * ROUNDS accesses is the quiescent total.
                    while c.snapshot().accesses < 4 * ROUNDS {
                        std::thread::yield_now();
                    }
                    stop.store(true, Ordering::Relaxed);
                })
            };
            flagger.join().unwrap();
            assert!(poller.join().unwrap() > 0, "the poller must observe at least one snapshot");
        });
        let s = c.snapshot();
        assert_eq!(s.accesses, 4 * ROUNDS, "quiescent totals are exact");
        assert_eq!(s.faults, 2 * ROUNDS);
        assert_eq!(s.evictions, 2 * (ROUNDS / 4));
        assert!(c.per_thread_snapshots().is_empty(), "all recorders retired");
    }
}

//! I/O accounting.
//!
//! The experiments in the paper report the number of page accesses that miss
//! the LRU buffer (charged at 10 ms each) separately from CPU time.
//! [`IoCounters`] is the shared, thread-safe counter bundle that the buffer
//! pool updates and the benchmark harness reads; [`IoStats`] is an immutable
//! snapshot.
//!
//! Counters are kept **per accessing thread** and merged on read: the global
//! snapshot is always the sum of the per-thread snapshots. This lets the
//! batched query engine attribute I/O to an individual query even while other
//! worker threads hammer the same shared buffer pool — each worker diffs its
//! *own* thread's counters around the query it is running.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::ops::AddAssign;
use std::sync::Arc;
use std::thread::ThreadId;

/// An immutable snapshot of I/O activity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Logical page accesses (every adjacency-list fetch).
    pub accesses: u64,
    /// Accesses that missed the buffer and had to "read from disk".
    pub faults: u64,
    /// Pages evicted from the buffer to make room for a faulted page.
    pub evictions: u64,
}

impl IoStats {
    /// Buffer hit ratio in `[0, 1]`; `1.0` when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            return 1.0;
        }
        1.0 - (self.faults as f64 / self.accesses as f64)
    }

    /// The difference `self - earlier`, used to attribute I/O to a single
    /// query inside a longer workload.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            accesses: self.accesses - earlier.accesses,
            faults: self.faults - earlier.faults,
            evictions: self.evictions - earlier.evictions,
        }
    }

    /// Sums an iterator of snapshots into one (e.g. merging the per-thread
    /// counters of a batch, or graph + materialized-table I/O).
    pub fn merged<'a, I: IntoIterator<Item = &'a IoStats>>(parts: I) -> IoStats {
        let mut total = IoStats::default();
        for p in parts {
            total += p;
        }
        total
    }
}

impl AddAssign<&IoStats> for IoStats {
    fn add_assign(&mut self, other: &IoStats) {
        self.accesses += other.accesses;
        self.faults += other.faults;
        self.evictions += other.evictions;
    }
}

impl AddAssign for IoStats {
    fn add_assign(&mut self, other: IoStats) {
        *self += &other;
    }
}

/// The counters proper: one [`IoStats`] per live recording thread, plus the
/// folded totals of retired threads. The global view is the merge of all of
/// them.
///
/// Worker threads are expected to call [`IoCounters::retire_current_thread`]
/// before exiting (the query engine's batch workers do); that folds their
/// entry into `retired` so the map tracks only live threads and does not
/// grow with the number of batches a long-lived process has served.
#[derive(Debug, Default)]
struct PerThreadStats {
    retired: IoStats,
    threads: HashMap<ThreadId, IoStats>,
}

thread_local! {
    /// The calling thread's id, cached to keep `record_access` off the
    /// `thread::current()` handle-clone path.
    static CURRENT_THREAD_ID: ThreadId = std::thread::current().id();
}

fn current_thread_id() -> ThreadId {
    CURRENT_THREAD_ID.with(|id| *id)
}

/// Shared, thread-safe I/O counters.
///
/// Cloning an `IoCounters` yields a handle to the *same* counters, so a
/// benchmark can keep one handle while the buffer pool updates another.
#[derive(Clone, Default, Debug)]
pub struct IoCounters {
    inner: Arc<Mutex<PerThreadStats>>,
}

impl IoCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one logical access; `fault` tells whether it missed the
    /// buffer, `evicted` whether a page was evicted to serve it.
    pub fn record_access(&self, fault: bool, evicted: bool) {
        let id = current_thread_id(); // resolved outside the lock
        let mut inner = self.inner.lock();
        let s = inner.threads.entry(id).or_default();
        s.accesses += 1;
        if fault {
            s.faults += 1;
        }
        if evicted {
            s.evictions += 1;
        }
    }

    /// Returns the merged snapshot over every thread that recorded accesses,
    /// retired or live.
    pub fn snapshot(&self) -> IoStats {
        let inner = self.inner.lock();
        let mut total = IoStats::merged(inner.threads.values());
        total += &inner.retired;
        total
    }

    /// Returns the snapshot of the accesses recorded *by the calling thread*
    /// (since it last retired, if ever).
    ///
    /// Diffing this around a query (with [`IoStats::since`]) attributes I/O
    /// to that query even while other threads use the same buffer pool.
    pub fn snapshot_current_thread(&self) -> IoStats {
        self.inner.lock().threads.get(&current_thread_id()).copied().unwrap_or_default()
    }

    /// Folds the calling thread's entry into the retired total and removes
    /// it from the live map.
    ///
    /// Exiting worker threads (e.g. the query engine's batch workers) call
    /// this so the per-thread map only ever tracks live threads — `ThreadId`s
    /// are never reused, so without retirement a long-lived process would
    /// accumulate one dead entry per worker per batch. No counts are lost:
    /// [`IoCounters::snapshot`] includes the retired total.
    pub fn retire_current_thread(&self) {
        let id = current_thread_id();
        let mut inner = self.inner.lock();
        if let Some(s) = inner.threads.remove(&id) {
            inner.retired += s;
        }
    }

    /// Live per-thread snapshots, in unspecified order. Their merge plus the
    /// retired total equals [`IoCounters::snapshot`].
    pub fn per_thread_snapshots(&self) -> Vec<IoStats> {
        self.inner.lock().threads.values().copied().collect()
    }

    /// Resets all counters (every thread's, and the retired total) to zero.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.retired = IoStats::default();
        inner.threads.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_accesses() {
        let c = IoCounters::new();
        c.record_access(true, false);
        c.record_access(false, false);
        c.record_access(true, true);
        let s = c.snapshot();
        assert_eq!(s, IoStats { accesses: 3, faults: 2, evictions: 1 });
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
        // single-threaded: the calling thread's view is the whole view
        assert_eq!(c.snapshot_current_thread(), s);
    }

    #[test]
    fn clones_share_state_and_reset_clears() {
        let c = IoCounters::new();
        let c2 = c.clone();
        c2.record_access(true, false);
        assert_eq!(c.snapshot().faults, 1);
        c.reset();
        assert_eq!(c2.snapshot(), IoStats::default());
        assert_eq!(c2.snapshot().hit_ratio(), 1.0);
        assert_eq!(c2.snapshot_current_thread(), IoStats::default());
    }

    #[test]
    fn since_and_add_assign() {
        let a = IoStats { accesses: 10, faults: 4, evictions: 2 };
        let b = IoStats { accesses: 7, faults: 1, evictions: 0 };
        let d = a.since(&b);
        assert_eq!(d, IoStats { accesses: 3, faults: 3, evictions: 2 });
        let mut acc = IoStats::default();
        acc += &a;
        acc += b; // by value
        assert_eq!(acc.accesses, 17);
        assert_eq!(acc.faults, 5);
        assert_eq!(IoStats::merged([&a, &b]), acc);
        assert_eq!(IoStats::merged([]), IoStats::default());
    }

    #[test]
    fn hit_ratio_edge_cases() {
        assert_eq!(IoStats::default().hit_ratio(), 1.0, "no accesses counts as all hits");
        let all_faults = IoStats { accesses: 5, faults: 5, evictions: 0 };
        assert_eq!(all_faults.hit_ratio(), 0.0);
        let all_hits = IoStats { accesses: 5, faults: 0, evictions: 0 };
        assert_eq!(all_hits.hit_ratio(), 1.0);
    }

    #[test]
    fn per_query_attribution_with_since() {
        // The harness pattern: snapshot before each query, diff after.
        let c = IoCounters::new();
        c.record_access(true, false); // warmup access
        let before = c.snapshot();
        c.record_access(true, false);
        c.record_access(false, false);
        c.record_access(false, false);
        let query_io = c.snapshot().since(&before);
        assert_eq!(query_io, IoStats { accesses: 3, faults: 1, evictions: 0 });
    }

    #[test]
    fn concurrent_recording_loses_no_accesses_and_merge_matches_total() {
        use std::sync::Arc;
        let c = IoCounters::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        c.record_access(i % 2 == 0, i % 10 == 0);
                    }
                    // every worker sees exactly its own 500 accesses
                    assert_eq!(c.snapshot_current_thread().accesses, 500);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.accesses, 2000);
        assert_eq!(s.faults, 1000);
        assert_eq!(s.evictions, 200);
        // the global snapshot is exactly the merge of the per-thread parts
        let parts = c.per_thread_snapshots();
        assert_eq!(parts.len(), 4, "one shard per recording thread");
        assert_eq!(IoStats::merged(parts.iter()), s);
        let _ = Arc::new(c); // counters remain usable behind an Arc
    }

    #[test]
    fn retiring_folds_counts_without_losing_them() {
        let c = IoCounters::new();
        c.record_access(true, false);
        // Worker threads record, retire, and exit; the live map must not
        // accumulate their (never reused) ThreadIds.
        for round in 0..3 {
            let worker = {
                let c = c.clone();
                std::thread::spawn(move || {
                    c.record_access(true, false);
                    c.record_access(false, false);
                    c.retire_current_thread();
                    // After retiring, the thread's live view starts over.
                    assert_eq!(c.snapshot_current_thread(), IoStats::default());
                })
            };
            worker.join().unwrap();
            assert_eq!(
                c.per_thread_snapshots().len(),
                1,
                "round {round}: only the main thread stays in the live map"
            );
        }
        let s = c.snapshot();
        assert_eq!(s.accesses, 7, "retired totals are preserved in the merged snapshot");
        assert_eq!(s.faults, 4);
        // Retiring a thread that never recorded is a no-op.
        c.retire_current_thread();
        c.retire_current_thread();
        assert_eq!(c.snapshot().accesses, 7);
        assert!(c.per_thread_snapshots().is_empty());
        // reset clears the retired total too.
        c.reset();
        assert_eq!(c.snapshot(), IoStats::default());
    }

    #[test]
    fn thread_attribution_is_exact_under_interleaving() {
        // Two threads interleave on the same counters; each thread's local
        // snapshot diff must see only its own accesses.
        let c = IoCounters::new();
        c.record_access(true, false); // main-thread noise
        let worker = {
            let c = c.clone();
            std::thread::spawn(move || {
                let before = c.snapshot_current_thread();
                assert_eq!(before, IoStats::default());
                c.record_access(true, false);
                c.record_access(false, false);
                c.snapshot_current_thread().since(&before)
            })
        };
        let local = worker.join().unwrap();
        assert_eq!(local, IoStats { accesses: 2, faults: 1, evictions: 0 });
        assert_eq!(c.snapshot().accesses, 3);
    }
}

//! I/O accounting.
//!
//! The experiments in the paper report the number of page accesses that miss
//! the LRU buffer (charged at 10 ms each) separately from CPU time.
//! [`IoCounters`] is the shared, thread-safe counter bundle that the buffer
//! pool updates and the benchmark harness reads; [`IoStats`] is an immutable
//! snapshot.
//!
//! Counters are kept **per accessing thread** and merged on read: the global
//! snapshot is always the sum of the per-thread snapshots. This lets the
//! batched query engine attribute I/O to an individual query even while other
//! worker threads hammer the same shared buffer pool — each worker diffs its
//! *own* thread's counters around the query it is running.
//!
//! # Lock-freedom
//!
//! [`IoCounters::record_access`] runs on **every page access** of every
//! worker, so it must not serialize the pool. Each recording thread owns a
//! shard of relaxed atomic counters; the thread finds its shard through a
//! thread-local cache keyed by the counter handle's unique id, so the
//! steady-state record path is: one thread-local read, one id compare, three
//! relaxed `fetch_add`s — no lock, no shared cache line with other writers.
//! A mutex-protected registry of shards exists only for the cold paths:
//! registering a thread's shard on its first access, and merging shards on
//! [`IoCounters::snapshot`] / [`IoCounters::reset`] /
//! [`IoCounters::retire_current_thread`]. Only the owning thread ever
//! *writes* a shard; readers merge the shards' atomics directly. Exact
//! totals require quiescence (e.g. after a batch's workers were joined),
//! but a mid-run snapshot is still *internally consistent* — the
//! release/acquire ordering on the shard fields guarantees
//! `evictions <= faults <= accesses` at any moment.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::ops::AddAssign;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

/// An immutable snapshot of I/O activity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Logical page accesses (every adjacency-list fetch).
    pub accesses: u64,
    /// Accesses that missed the buffer and had to "read from disk".
    pub faults: u64,
    /// Pages evicted from the buffer to make room for a faulted page.
    pub evictions: u64,
}

impl IoStats {
    /// Buffer hit ratio in `[0, 1]`; `1.0` when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            return 1.0;
        }
        1.0 - (self.faults as f64 / self.accesses as f64)
    }

    /// The difference `self - earlier`, used to attribute I/O to a single
    /// query inside a longer workload.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            accesses: self.accesses - earlier.accesses,
            faults: self.faults - earlier.faults,
            evictions: self.evictions - earlier.evictions,
        }
    }

    /// Sums an iterator of snapshots into one (e.g. merging the per-thread
    /// counters of a batch, or graph + materialized-table I/O).
    pub fn merged<'a, I: IntoIterator<Item = &'a IoStats>>(parts: I) -> IoStats {
        let mut total = IoStats::default();
        for p in parts {
            total += p;
        }
        total
    }
}

impl AddAssign<&IoStats> for IoStats {
    fn add_assign(&mut self, other: &IoStats) {
        self.accesses += other.accesses;
        self.faults += other.faults;
        self.evictions += other.evictions;
    }
}

impl AddAssign for IoStats {
    fn add_assign(&mut self, other: IoStats) {
        *self += &other;
    }
}

/// One recording thread's counter shard. Only the owning thread increments;
/// everyone else reads when merging.
///
/// Writes and reads are ordered so that a snapshot taken *during* recording
/// still satisfies `evictions <= faults <= accesses`: the writer bumps
/// `accesses` first and publishes `faults` / `evictions` with `Release`,
/// the reader loads in the opposite order with `Acquire`. Seeing the n-th
/// fault therefore guarantees seeing its preceding access (single writer,
/// release/acquire prefix) — a mid-run `hit_ratio()` can never go negative.
#[derive(Debug, Default)]
struct ThreadShard {
    accesses: AtomicU64,
    faults: AtomicU64,
    evictions: AtomicU64,
}

impl ThreadShard {
    fn record(&self, fault: bool, evicted: bool) {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        if fault {
            self.faults.fetch_add(1, Ordering::Release);
        }
        if evicted {
            self.evictions.fetch_add(1, Ordering::Release);
        }
    }

    fn snapshot(&self) -> IoStats {
        let evictions = self.evictions.load(Ordering::Acquire);
        let faults = self.faults.load(Ordering::Acquire);
        let accesses = self.accesses.load(Ordering::Relaxed);
        IoStats { accesses, faults, evictions }
    }

    /// A reset that races concurrent readers or the owning recorder is
    /// inherently approximate — a reader interleaving with the three stores
    /// can see a torn mix of old and new counts, and no store ordering can
    /// prevent that (it is a temporal race, not a visibility one). Like the
    /// seed's mutex version, `reset` is a quiescent-point operation: callers
    /// reset between measurements, and the buffer pool's `clear_and_reset`
    /// / `reset_stats` exclude its recorders via the shard locks.
    fn zero(&self) {
        self.evictions.store(0, Ordering::Relaxed);
        self.faults.store(0, Ordering::Relaxed);
        self.accesses.store(0, Ordering::Relaxed);
    }
}

/// The cold-path registry: one shard per live recording thread, plus the
/// folded totals of retired threads. The global view is the merge of all of
/// them.
///
/// Worker threads are expected to call [`IoCounters::retire_current_thread`]
/// before exiting (the query engine's batch workers do); that folds their
/// shard into `retired` so the registry tracks only live threads and does not
/// grow with the number of batches a long-lived process has served.
#[derive(Debug, Default)]
struct Registry {
    retired: IoStats,
    threads: Vec<(ThreadId, Arc<ThreadShard>)>,
}

impl Registry {
    fn position(&self, id: ThreadId) -> Option<usize> {
        self.threads.iter().position(|(t, _)| *t == id)
    }
}

#[derive(Debug)]
struct CountersInner {
    /// Unique per counter bundle (never reused), so the thread-local shard
    /// cache can key on it without any stale-pointer hazard.
    id: u64,
    registry: Mutex<Registry>,
}

/// Source of the unique [`CountersInner::id`]s.
static NEXT_COUNTERS_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The calling thread's id, cached to keep the cold paths off the
    /// `thread::current()` handle-clone path.
    static CURRENT_THREAD_ID: ThreadId = std::thread::current().id();

    /// This thread's shard for each counter bundle it has recorded into:
    /// `(bundle id, shard)` pairs, scanned linearly (a thread uses one or two
    /// bundles at a time). Entries whose bundle was dropped are pruned
    /// whenever a new bundle registers.
    static SHARD_CACHE: RefCell<Vec<(u64, Arc<ThreadShard>)>> = const { RefCell::new(Vec::new()) };
}

fn current_thread_id() -> ThreadId {
    CURRENT_THREAD_ID.with(|id| *id)
}

/// Shared, thread-safe I/O counters.
///
/// Cloning an `IoCounters` yields a handle to the *same* counters, so a
/// benchmark can keep one handle while the buffer pool updates another.
#[derive(Clone, Debug)]
pub struct IoCounters {
    inner: Arc<CountersInner>,
}

impl Default for IoCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl IoCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        IoCounters {
            inner: Arc::new(CountersInner {
                id: NEXT_COUNTERS_ID.fetch_add(1, Ordering::Relaxed),
                registry: Mutex::new(Registry::default()),
            }),
        }
    }

    /// Records one logical access; `fault` tells whether it missed the
    /// buffer, `evicted` whether a page was evicted to serve it.
    ///
    /// Lock-free on the steady state: after a thread's first access the
    /// record path is a thread-local lookup plus relaxed `fetch_add`s on
    /// counters no other thread writes.
    pub fn record_access(&self, fault: bool, evicted: bool) {
        self.with_shard(|shard| shard.record(fault, evicted));
    }

    /// Runs `f` on the calling thread's shard, registering one on the first
    /// access (the only path that ever takes the registry lock).
    ///
    /// On the steady-state path `f` runs under the cache's shared borrow —
    /// no `Arc` clone, no lock; `f` must not (and does not) re-enter the
    /// cache.
    fn with_shard<R>(&self, f: impl FnOnce(&ThreadShard) -> R) -> R {
        SHARD_CACHE.with(|cache| {
            {
                let cache = cache.borrow();
                if let Some((_, shard)) = cache.iter().find(|(id, _)| *id == self.inner.id) {
                    return f(shard);
                }
            }
            let shard = self.register_current_thread(cache);
            f(&shard)
        })
    }

    /// Cold path: get-or-create the calling thread's shard in the registry
    /// and remember it in the thread-local cache.
    fn register_current_thread(
        &self,
        cache: &RefCell<Vec<(u64, Arc<ThreadShard>)>>,
    ) -> Arc<ThreadShard> {
        let id = current_thread_id();
        let shard = {
            let mut reg = self.inner.registry.lock();
            match reg.position(id) {
                Some(i) => Arc::clone(&reg.threads[i].1),
                None => {
                    let shard = Arc::new(ThreadShard::default());
                    reg.threads.push((id, Arc::clone(&shard)));
                    shard
                }
            }
        };
        let mut cache = cache.borrow_mut();
        // A shard whose counter bundle is gone is held only by this cache
        // (the registry's strong reference died with the bundle): drop it so
        // long-lived threads recording into many short-lived bundles (tests,
        // benchmarks) do not grow the cache without bound.
        cache.retain(|(_, s)| Arc::strong_count(s) > 1);
        cache.push((self.inner.id, Arc::clone(&shard)));
        shard
    }

    /// Returns the merged snapshot over every thread that recorded accesses,
    /// retired or live.
    pub fn snapshot(&self) -> IoStats {
        let reg = self.inner.registry.lock();
        let mut total = reg.retired;
        for (_, shard) in &reg.threads {
            total += shard.snapshot();
        }
        total
    }

    /// Returns the snapshot of the accesses recorded *by the calling thread*
    /// (since it last retired, if ever).
    ///
    /// Diffing this around a query (with [`IoStats::since`]) attributes I/O
    /// to that query even while other threads use the same buffer pool. Like
    /// the record path, this reads the thread's own shard without locking.
    pub fn snapshot_current_thread(&self) -> IoStats {
        let cached = SHARD_CACHE.with(|cache| {
            cache
                .borrow()
                .iter()
                .find(|(id, _)| *id == self.inner.id)
                .map(|(_, shard)| shard.snapshot())
        });
        if let Some(snapshot) = cached {
            return snapshot;
        }
        // Not cached on this thread: the thread never recorded (or retired),
        // so its view is empty — unless another handle on this same thread
        // registered it, which the cache covers (ids are per bundle, shared
        // by clones).
        let reg = self.inner.registry.lock();
        reg.position(current_thread_id()).map(|i| reg.threads[i].1.snapshot()).unwrap_or_default()
    }

    /// Folds the calling thread's shard into the retired total and removes
    /// it from the live registry.
    ///
    /// Exiting worker threads (e.g. the query engine's batch workers) call
    /// this so the registry only ever tracks live threads — `ThreadId`s are
    /// never reused, so without retirement a long-lived process would
    /// accumulate one dead shard per worker per batch. No counts are lost:
    /// [`IoCounters::snapshot`] includes the retired total.
    pub fn retire_current_thread(&self) {
        let id = current_thread_id();
        {
            let mut reg = self.inner.registry.lock();
            if let Some(i) = reg.position(id) {
                let (_, shard) = reg.threads.swap_remove(i);
                let folded = shard.snapshot();
                reg.retired += folded;
            }
        }
        // Drop the cache entry so a later access on this thread registers a
        // fresh shard ("the thread's live view starts over").
        SHARD_CACHE.with(|cache| {
            cache.borrow_mut().retain(|(cid, _)| *cid != self.inner.id);
        });
    }

    /// Live per-thread snapshots, in unspecified order. Their merge plus the
    /// retired total equals [`IoCounters::snapshot`].
    pub fn per_thread_snapshots(&self) -> Vec<IoStats> {
        self.inner.registry.lock().threads.iter().map(|(_, s)| s.snapshot()).collect()
    }

    /// Resets all counters (every thread's, and the retired total) to zero.
    ///
    /// Registered threads stay registered with zeroed counts — their
    /// thread-local shard handles remain valid, so concurrent recorders keep
    /// counting into the same (now zeroed) shards.
    pub fn reset(&self) {
        let mut reg = self.inner.registry.lock();
        reg.retired = IoStats::default();
        for (_, shard) in &reg.threads {
            shard.zero();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_accesses() {
        let c = IoCounters::new();
        c.record_access(true, false);
        c.record_access(false, false);
        c.record_access(true, true);
        let s = c.snapshot();
        assert_eq!(s, IoStats { accesses: 3, faults: 2, evictions: 1 });
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
        // single-threaded: the calling thread's view is the whole view
        assert_eq!(c.snapshot_current_thread(), s);
    }

    #[test]
    fn clones_share_state_and_reset_clears() {
        let c = IoCounters::new();
        let c2 = c.clone();
        c2.record_access(true, false);
        assert_eq!(c.snapshot().faults, 1);
        c.reset();
        assert_eq!(c2.snapshot(), IoStats::default());
        assert_eq!(c2.snapshot().hit_ratio(), 1.0);
        assert_eq!(c2.snapshot_current_thread(), IoStats::default());
        // Recording keeps working after a reset (the zeroed shard is reused).
        c.record_access(false, false);
        assert_eq!(c2.snapshot(), IoStats { accesses: 1, faults: 0, evictions: 0 });
    }

    #[test]
    fn since_and_add_assign() {
        let a = IoStats { accesses: 10, faults: 4, evictions: 2 };
        let b = IoStats { accesses: 7, faults: 1, evictions: 0 };
        let d = a.since(&b);
        assert_eq!(d, IoStats { accesses: 3, faults: 3, evictions: 2 });
        let mut acc = IoStats::default();
        acc += &a;
        acc += b; // by value
        assert_eq!(acc.accesses, 17);
        assert_eq!(acc.faults, 5);
        assert_eq!(IoStats::merged([&a, &b]), acc);
        assert_eq!(IoStats::merged([]), IoStats::default());
    }

    #[test]
    fn hit_ratio_edge_cases() {
        assert_eq!(IoStats::default().hit_ratio(), 1.0, "no accesses counts as all hits");
        let all_faults = IoStats { accesses: 5, faults: 5, evictions: 0 };
        assert_eq!(all_faults.hit_ratio(), 0.0);
        let all_hits = IoStats { accesses: 5, faults: 0, evictions: 0 };
        assert_eq!(all_hits.hit_ratio(), 1.0);
    }

    #[test]
    fn per_query_attribution_with_since() {
        // The harness pattern: snapshot before each query, diff after.
        let c = IoCounters::new();
        c.record_access(true, false); // warmup access
        let before = c.snapshot();
        c.record_access(true, false);
        c.record_access(false, false);
        c.record_access(false, false);
        let query_io = c.snapshot().since(&before);
        assert_eq!(query_io, IoStats { accesses: 3, faults: 1, evictions: 0 });
    }

    #[test]
    fn concurrent_recording_loses_no_accesses_and_merge_matches_total() {
        use std::sync::Arc;
        let c = IoCounters::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        c.record_access(i % 2 == 0, i % 10 == 0);
                    }
                    // every worker sees exactly its own 500 accesses
                    assert_eq!(c.snapshot_current_thread().accesses, 500);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.accesses, 2000);
        assert_eq!(s.faults, 1000);
        assert_eq!(s.evictions, 200);
        // the global snapshot is exactly the merge of the per-thread parts
        let parts = c.per_thread_snapshots();
        assert_eq!(parts.len(), 4, "one shard per recording thread");
        assert_eq!(IoStats::merged(parts.iter()), s);
        let _ = Arc::new(c); // counters remain usable behind an Arc
    }

    #[test]
    fn retiring_folds_counts_without_losing_them() {
        let c = IoCounters::new();
        c.record_access(true, false);
        // Worker threads record, retire, and exit; the live registry must not
        // accumulate their (never reused) ThreadIds.
        for round in 0..3 {
            let worker = {
                let c = c.clone();
                std::thread::spawn(move || {
                    c.record_access(true, false);
                    c.record_access(false, false);
                    c.retire_current_thread();
                    // After retiring, the thread's live view starts over.
                    assert_eq!(c.snapshot_current_thread(), IoStats::default());
                })
            };
            worker.join().unwrap();
            assert_eq!(
                c.per_thread_snapshots().len(),
                1,
                "round {round}: only the main thread stays in the live registry"
            );
        }
        let s = c.snapshot();
        assert_eq!(s.accesses, 7, "retired totals are preserved in the merged snapshot");
        assert_eq!(s.faults, 4);
        // Retiring a thread that never recorded is a no-op.
        c.retire_current_thread();
        c.retire_current_thread();
        assert_eq!(c.snapshot().accesses, 7);
        assert!(c.per_thread_snapshots().is_empty());
        // reset clears the retired total too.
        c.reset();
        assert_eq!(c.snapshot(), IoStats::default());
    }

    #[test]
    fn recording_after_retiring_registers_a_fresh_shard() {
        let c = IoCounters::new();
        c.record_access(true, false);
        c.retire_current_thread();
        assert!(c.per_thread_snapshots().is_empty());
        c.record_access(false, false);
        assert_eq!(
            c.snapshot_current_thread(),
            IoStats { accesses: 1, faults: 0, evictions: 0 },
            "the view after retirement starts over"
        );
        assert_eq!(c.per_thread_snapshots().len(), 1);
        assert_eq!(c.snapshot().accesses, 2, "the retired access is still in the total");
    }

    #[test]
    fn thread_attribution_is_exact_under_interleaving() {
        // Two threads interleave on the same counters; each thread's local
        // snapshot diff must see only its own accesses.
        let c = IoCounters::new();
        c.record_access(true, false); // main-thread noise
        let worker = {
            let c = c.clone();
            std::thread::spawn(move || {
                let before = c.snapshot_current_thread();
                assert_eq!(before, IoStats::default());
                c.record_access(true, false);
                c.record_access(false, false);
                c.snapshot_current_thread().since(&before)
            })
        };
        let local = worker.join().unwrap();
        assert_eq!(local, IoStats { accesses: 2, faults: 1, evictions: 0 });
        assert_eq!(c.snapshot().accesses, 3);
    }

    #[test]
    fn distinct_counter_bundles_do_not_mix_even_on_one_thread() {
        // The thread-local shard cache is keyed by bundle id: two bundles
        // recorded into by the same thread must stay independent.
        let a = IoCounters::new();
        let b = IoCounters::new();
        a.record_access(true, false);
        b.record_access(false, false);
        b.record_access(false, false);
        assert_eq!(a.snapshot(), IoStats { accesses: 1, faults: 1, evictions: 0 });
        assert_eq!(b.snapshot(), IoStats { accesses: 2, faults: 0, evictions: 0 });
        assert_eq!(a.snapshot_current_thread().accesses, 1);
        assert_eq!(b.snapshot_current_thread().accesses, 2);
    }

    #[test]
    fn dropped_bundles_are_pruned_from_the_thread_local_cache() {
        // Record into many short-lived bundles on one thread; each new
        // registration prunes entries whose bundle is gone, so the cache
        // stays bounded by the number of *live* bundles.
        let keep = IoCounters::new();
        keep.record_access(false, false);
        for _ in 0..100 {
            let c = IoCounters::new();
            c.record_access(true, false);
            drop(c);
        }
        let cached = SHARD_CACHE.with(|cache| cache.borrow().len());
        assert!(cached <= 2, "cache holds live bundles only, found {cached} entries");
        assert_eq!(keep.snapshot().accesses, 1, "the surviving bundle is unaffected");
    }
}

//! The node-id index of the storage scheme.
//!
//! The paper builds "an index on node id; for each node id in the index,
//! there is a pointer to the corresponding list and the data point that it
//! contains (if any)". [`NodeIndex`] is that structure: it maps every node to
//! the disk page(s) holding its adjacency record. (Data-point membership is
//! kept in the separate [`rnn_graph::NodePointSet`] /
//! [`rnn_graph::EdgePointSet`] structures because several data sets — e.g. a
//! bichromatic pair, or different ad hoc predicates — can coexist over one
//! stored network.)
//!
//! The index is small (a few bytes per node) and is assumed to be memory
//! resident; the paper's I/O accounting likewise only counts adjacency-page
//! accesses.

use crate::page::PageId;
use rnn_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Location of one node's adjacency record(s).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeIndexEntry {
    /// First page holding (part of) the node's adjacency list.
    pub first_page: PageId,
    /// Number of consecutive pages the list spans (1 for all but very
    /// high-degree hub nodes).
    pub span: u16,
}

impl NodeIndexEntry {
    /// Iterates over the pages holding this node's record.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        let first = self.first_page.index();
        (first..first + self.span as usize).map(PageId::new)
    }
}

/// Maps every node to the page(s) storing its adjacency record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeIndex {
    entries: Vec<NodeIndexEntry>,
}

impl NodeIndex {
    /// Creates an index from per-node entries (indexed by node id).
    pub fn new(entries: Vec<NodeIndexEntry>) -> Self {
        NodeIndex { entries }
    }

    /// Number of nodes covered by the index.
    pub fn num_nodes(&self) -> usize {
        self.entries.len()
    }

    /// Returns the entry of `node`.
    #[inline]
    pub fn entry(&self, node: NodeId) -> NodeIndexEntry {
        self.entries[node.index()]
    }

    /// Iterates over all entries in node id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeIndexEntry)> + '_ {
        self.entries.iter().enumerate().map(|(i, &e)| (NodeId::new(i), e))
    }

    /// Approximate in-memory size of the index in bytes.
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<NodeIndexEntry>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_lookup_and_iteration() {
        let idx = NodeIndex::new(vec![
            NodeIndexEntry { first_page: PageId(0), span: 1 },
            NodeIndexEntry { first_page: PageId(0), span: 1 },
            NodeIndexEntry { first_page: PageId(1), span: 2 },
        ]);
        assert_eq!(idx.num_nodes(), 3);
        assert_eq!(idx.entry(NodeId::new(0)).first_page, PageId(0));
        let pages: Vec<_> = idx.entry(NodeId::new(2)).pages().collect();
        assert_eq!(pages, vec![PageId(1), PageId(2)]);
        assert_eq!(idx.iter().count(), 3);
        assert!(idx.size_bytes() >= 3 * std::mem::size_of::<NodeIndexEntry>());
    }

    #[test]
    fn single_span_pages_iterator_yields_one_page() {
        let e = NodeIndexEntry { first_page: PageId(7), span: 1 };
        assert_eq!(e.pages().collect::<Vec<_>>(), vec![PageId(7)]);
    }
}

//! Page stores: where pages live when they are not in the buffer.
//!
//! [`MemoryDisk`] keeps all pages in memory and is the default for
//! experiments (the paper's I/O cost is *simulated* by charging a fixed
//! penalty per buffer fault, so the pages themselves need not touch a real
//! device). [`FileDisk`] persists pages to a real file for users who want an
//! actual on-disk adjacency file.

use crate::error::StorageError;
use crate::page::{Page, PageId, PAGE_SIZE};
use bytes::Bytes;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Abstract page store.
///
/// `Sync` is a supertrait so a [`crate::PagedGraph`] built on any store can
/// be shared across query worker threads.
pub trait PageStore: Sync {
    /// Number of pages in the store.
    fn num_pages(&self) -> usize;

    /// Reads page `page` from the store.
    fn read_page(&self, page: PageId) -> Result<Page, StorageError>;
}

/// An in-memory simulated disk.
#[derive(Clone, Debug, Default)]
pub struct MemoryDisk {
    pages: Vec<Page>,
}

impl MemoryDisk {
    /// Creates a store from already-built pages.
    pub fn new(pages: Vec<Page>) -> Self {
        MemoryDisk { pages }
    }

    /// Total bytes used by the encoded pages (without padding).
    pub fn used_bytes(&self) -> usize {
        self.pages.iter().map(|p| p.used_bytes()).sum()
    }

    /// Total bytes the store would occupy on disk (pages are fixed size).
    pub fn disk_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }
}

impl PageStore for MemoryDisk {
    fn num_pages(&self) -> usize {
        self.pages.len()
    }

    fn read_page(&self, page: PageId) -> Result<Page, StorageError> {
        self.pages
            .get(page.index())
            .cloned()
            .ok_or(StorageError::PageOutOfBounds { page, num_pages: self.pages.len() })
    }
}

/// A file-backed page store. Every page occupies exactly [`PAGE_SIZE`] bytes
/// on disk; the first 8 bytes of each slot store the used length.
#[derive(Debug)]
pub struct FileDisk {
    file: Mutex<File>,
    num_pages: usize,
}

impl FileDisk {
    /// Writes `pages` to `path` (truncating any existing file) and opens the
    /// resulting store.
    pub fn create<P: AsRef<Path>>(path: P, pages: &[Page]) -> Result<Self, StorageError> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let mut slot = vec![0u8; PAGE_SIZE + 8];
        for page in pages {
            let used = page.used_bytes();
            slot[..8].copy_from_slice(&(used as u64).to_le_bytes());
            slot[8..8 + used].copy_from_slice(page.as_bytes());
            slot[8 + used..].fill(0);
            file.write_all(&slot)?;
        }
        file.flush()?;
        Ok(FileDisk { file: Mutex::new(file), num_pages: pages.len() })
    }

    /// Opens an existing page file previously written by
    /// [`FileDisk::create`].
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StorageError> {
        let file = OpenOptions::new().read(true).open(path)?;
        let len = file.metadata()?.len() as usize;
        let slot = PAGE_SIZE + 8;
        if !len.is_multiple_of(slot) {
            return Err(StorageError::Io(format!(
                "page file length {len} is not a multiple of the slot size {slot}"
            )));
        }
        Ok(FileDisk { file: Mutex::new(file), num_pages: len / slot })
    }
}

impl PageStore for FileDisk {
    fn num_pages(&self) -> usize {
        self.num_pages
    }

    fn read_page(&self, page: PageId) -> Result<Page, StorageError> {
        if page.index() >= self.num_pages {
            return Err(StorageError::PageOutOfBounds { page, num_pages: self.num_pages });
        }
        let mut file = self.file.lock();
        let slot = (PAGE_SIZE + 8) as u64;
        file.seek(SeekFrom::Start(page.index() as u64 * slot))?;
        let mut header = [0u8; 8];
        file.read_exact(&mut header)?;
        let used = u64::from_le_bytes(header) as usize;
        if used > PAGE_SIZE {
            return Err(StorageError::CorruptPage {
                page,
                message: format!("recorded length {used} exceeds the page size"),
            });
        }
        let mut buf = vec![0u8; used];
        file.read_exact(&mut buf)?;
        Page::from_bytes(Bytes::from(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{PageBuilder, PageEntry};
    use rnn_graph::{EdgeId, NodeId, Weight};

    fn sample_pages() -> Vec<Page> {
        let mut pages = Vec::new();
        for i in 0..3u32 {
            let mut b = PageBuilder::new();
            b.push_record(
                NodeId(i),
                &[PageEntry {
                    neighbor: NodeId(i + 1),
                    edge: EdgeId(i),
                    weight: Weight::new(1.0 + i as f64),
                }],
            )
            .unwrap();
            pages.push(b.build());
        }
        pages
    }

    #[test]
    fn memory_disk_round_trips_pages() {
        let pages = sample_pages();
        let disk = MemoryDisk::new(pages.clone());
        assert_eq!(disk.num_pages(), 3);
        assert_eq!(disk.used_bytes(), 3 * 24);
        assert_eq!(disk.disk_bytes(), 3 * PAGE_SIZE);
        for (i, expected) in pages.iter().enumerate() {
            let got = disk.read_page(PageId::new(i)).unwrap();
            assert_eq!(&got, expected);
        }
        assert!(matches!(
            disk.read_page(PageId::new(9)),
            Err(StorageError::PageOutOfBounds { .. })
        ));
    }

    #[test]
    fn file_disk_round_trips_pages() {
        let dir = std::env::temp_dir().join(format!("rnn_storage_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");

        let pages = sample_pages();
        let disk = FileDisk::create(&path, &pages).unwrap();
        assert_eq!(disk.num_pages(), 3);
        for (i, expected) in pages.iter().enumerate() {
            let got = disk.read_page(PageId::new(i)).unwrap();
            assert_eq!(
                got.records(PageId::new(i)).unwrap(),
                expected.records(PageId::new(i)).unwrap()
            );
        }
        assert!(disk.read_page(PageId::new(3)).is_err());

        // reopen and read again
        drop(disk);
        let reopened = FileDisk::open(&path).unwrap();
        assert_eq!(reopened.num_pages(), 3);
        let got = reopened.read_page(PageId::new(1)).unwrap();
        assert_eq!(got.records(PageId::new(1)).unwrap().len(), 1);

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn file_disk_rejects_malformed_files() {
        let dir = std::env::temp_dir().join(format!("rnn_storage_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        assert!(FileDisk::open(&path).is_err());
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }
}

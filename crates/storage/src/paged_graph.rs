//! The disk-page backed graph view.
//!
//! [`PagedGraph`] combines a page store, the node-id index and an LRU buffer
//! into a [`Topology`] implementation. Query algorithms written against the
//! `Topology` trait run unchanged on a `PagedGraph`; the only difference from
//! the in-memory [`rnn_graph::Graph`] is that every adjacency fetch goes
//! through the buffer and is accounted for in [`IoStats`]. This is the
//! component the paper's experiments measure.

use crate::buffer::{BufferPool, BufferPoolConfig, BufferPoolStats};
use crate::disk::{MemoryDisk, PageStore};
use crate::error::StorageError;
use crate::io_stats::{IoCounters, IoStats};
use crate::layout::{LayoutStrategy, PageLayout};
use crate::node_index::NodeIndex;
use crate::page::{PageEntry, PageId};
use crate::policy::EvictionPolicy;
use rnn_graph::{Graph, Neighbor, NodeId, Topology};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

thread_local! {
    /// Scratch buffer reused across adjacency fetches to avoid per-call
    /// allocation (the decoded entries are copied into `Neighbor` values
    /// before the closure is invoked). Thread-local so the serving path
    /// shares no mutable state between worker threads — the old shared
    /// `Mutex<Vec<_>>` was a lock on every fetch of every worker.
    static FETCH_SCRATCH: RefCell<Vec<PageEntry>> = const { RefCell::new(Vec::new()) };

    /// Scratch for translating prefetch-hint nodes to page ids. Separate
    /// from `FETCH_SCRATCH` because hints arrive between fetches on the
    /// same thread.
    static HINT_SCRATCH: RefCell<Vec<PageId>> = const { RefCell::new(Vec::new()) };
}

/// A graph stored on simulated disk pages and read through a striped,
/// policy-driven page buffer.
pub struct PagedGraph<S: PageStore = MemoryDisk> {
    buffer: BufferPool<S>,
    index: NodeIndex,
    num_nodes: usize,
    /// Whether expansion loops should send frontier prefetch hints
    /// ([`Topology::wants_prefetch_hints`]). Off by default: hints are an
    /// opt-in speculation knob, and the paper's accounting is exactly
    /// reproduced with them off.
    prefetch: AtomicBool,
}

impl PagedGraph<MemoryDisk> {
    /// Builds a paged graph from an in-memory graph using the default
    /// BFS-locality layout and the paper's 256-page single-shard buffer.
    pub fn build(graph: &Graph) -> Result<Self, StorageError> {
        Self::build_with_config(
            graph,
            LayoutStrategy::BfsLocality,
            BufferPoolConfig::paper_default(),
            IoCounters::new(),
        )
    }

    /// Builds a paged graph with a single-shard buffer of `buffer_pages`
    /// pages — the paper's configuration, with the exact single-LRU victim
    /// order. Use [`PagedGraph::build_with_config`] to shard the buffer for
    /// concurrent serving.
    pub fn build_with(
        graph: &Graph,
        strategy: LayoutStrategy,
        buffer_pages: usize,
        counters: IoCounters,
    ) -> Result<Self, StorageError> {
        Self::build_with_config(graph, strategy, BufferPoolConfig::new(buffer_pages), counters)
    }

    /// Builds a paged graph with full control over layout strategy, buffer
    /// capacity/sharding and the I/O counters to report into.
    pub fn build_with_config(
        graph: &Graph,
        strategy: LayoutStrategy,
        config: BufferPoolConfig,
        counters: IoCounters,
    ) -> Result<Self, StorageError> {
        let layout = PageLayout::build(graph, strategy)?;
        let disk = MemoryDisk::new(layout.pages);
        let buffer = BufferPool::with_config(disk, config, counters);
        Ok(PagedGraph {
            buffer,
            index: layout.index,
            num_nodes: graph.num_nodes(),
            prefetch: AtomicBool::new(false),
        })
    }
}

impl<S: PageStore> PagedGraph<S> {
    /// Assembles a paged graph from pre-built parts (e.g. a [`crate::FileDisk`]
    /// store opened from an existing page file).
    pub fn from_parts(buffer: BufferPool<S>, index: NodeIndex, num_nodes: usize) -> Self {
        PagedGraph { buffer, index, num_nodes, prefetch: AtomicBool::new(false) }
    }

    /// Builder-style [`PagedGraph::set_prefetch`].
    pub fn with_prefetch(self, enabled: bool) -> Self {
        self.set_prefetch(enabled);
        self
    }

    /// Enables or disables expansion-frontier prefetch hints at runtime.
    ///
    /// When enabled, [`Topology::wants_prefetch_hints`] returns `true` and
    /// hinted nodes' pages are speculatively faulted in through
    /// [`BufferPool::prefetch`] — never changing results or demand
    /// accounting, only the pool's separate `prefetch_*` counters.
    pub fn set_prefetch(&self, enabled: bool) {
        self.prefetch.store(enabled, Ordering::Relaxed);
    }

    /// Whether prefetch hints are currently enabled.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch.load(Ordering::Relaxed)
    }

    /// The underlying buffer pool.
    pub fn buffer(&self) -> &BufferPool<S> {
        &self.buffer
    }

    /// The shared I/O counters of the underlying buffer.
    pub fn counters(&self) -> &IoCounters {
        self.buffer.counters()
    }

    /// A snapshot of the I/O activity so far (merged over all accessing
    /// threads).
    pub fn io_stats(&self) -> IoStats {
        self.buffer.counters().snapshot()
    }

    /// The buffer pool's own per-shard counter breakdown plus merged total.
    pub fn pool_stats(&self) -> BufferPoolStats {
        self.buffer.io_stats()
    }

    /// Resets the I/O accounting — both the shared per-thread counters and
    /// the pool's per-shard breakdown, so the two views stay in agreement —
    /// while the buffer content is left untouched.
    pub fn reset_io(&self) {
        self.buffer.reset_stats();
    }

    /// Drops all buffered pages and resets both the pool's per-shard
    /// counters and the shared per-thread [`IoCounters`] in one atomic step
    /// ([`BufferPool::clear_and_reset`]), simulating a cold start. Used
    /// between workload repetitions in the experiments.
    pub fn cold_start(&self) {
        self.buffer.clear_and_reset();
    }

    /// Number of pages of the underlying store.
    pub fn num_pages(&self) -> usize {
        self.buffer.store().num_pages()
    }

    /// Buffer capacity in pages.
    pub fn buffer_capacity(&self) -> usize {
        self.buffer.capacity()
    }

    /// The node-id index.
    pub fn node_index(&self) -> &NodeIndex {
        &self.index
    }

    /// Fetches the adjacency list of `node`, going through the buffer.
    fn fetch_neighbors(
        &self,
        node: NodeId,
        visit: &mut dyn FnMut(Neighbor),
    ) -> Result<(), StorageError> {
        let entry = self.index.entry(node);
        // Take the thread-local scratch buffer so it is *not* borrowed while
        // the visitor runs: visitors may recursively fetch other adjacency
        // lists (e.g. nested verification expansions), which then just use a
        // fresh buffer.
        let mut scratch = FETCH_SCRATCH.with(|cell| std::mem::take(&mut *cell.borrow_mut()));
        scratch.clear();
        let mut result = Ok(());
        if entry.span > 1 {
            // A multi-page record (high-degree hub node): fetch the whole
            // span in one batched call — one lock round per owning shard
            // instead of one per page, with identical accounting.
            let ids: Vec<PageId> = entry.pages().collect();
            match self.buffer.fetch_many(&ids) {
                Ok(pages) => {
                    for (page_id, page) in ids.into_iter().zip(pages) {
                        if let Err(e) = page.entries_of(page_id, node, &mut scratch) {
                            result = Err(e);
                            break;
                        }
                    }
                }
                Err(e) => result = Err(e),
            }
        } else {
            for page_id in entry.pages() {
                match self.buffer.fetch(page_id) {
                    Ok(page) => {
                        if let Err(e) = page.entries_of(page_id, node, &mut scratch) {
                            result = Err(e);
                            break;
                        }
                    }
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
        }
        if result.is_ok() {
            for e in scratch.iter() {
                visit(Neighbor { node: e.neighbor, weight: e.weight, edge: e.edge });
            }
        }
        // Return the (possibly grown) scratch buffer for reuse on this
        // thread.
        FETCH_SCRATCH.with(|cell| {
            let mut slot = cell.borrow_mut();
            if slot.capacity() < scratch.capacity() {
                *slot = scratch;
            }
        });
        result
    }
}

impl<S: PageStore> Topology for PagedGraph<S> {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn visit_neighbors(&self, node: NodeId, visit: &mut dyn FnMut(Neighbor)) {
        self.fetch_neighbors(node, visit)
            .expect("pages built by PageLayout are well formed and in bounds");
    }

    fn wants_prefetch_hints(&self) -> bool {
        self.prefetch_enabled()
    }

    fn prefetch_hint(&self, nodes: &[NodeId]) {
        if nodes.is_empty() || !self.prefetch_enabled() {
            return;
        }
        // Translate hinted nodes to the pages holding their adjacency lists
        // and fault them in speculatively. Best effort by contract: demand
        // accounting and results are untouched ([`BufferPool::prefetch`]
        // only moves `prefetch_*` counters).
        let mut scratch = HINT_SCRATCH.with(|cell| std::mem::take(&mut *cell.borrow_mut()));
        scratch.clear();
        for &node in nodes {
            if node.index() < self.num_nodes {
                scratch.extend(self.index.entry(node).pages());
            }
        }
        self.buffer.prefetch(&scratch);
        HINT_SCRATCH.with(|cell| {
            let mut slot = cell.borrow_mut();
            if slot.capacity() < scratch.capacity() {
                *slot = scratch;
            }
        });
    }
}

/// Runtime tuning and introspection of a paged storage backend.
///
/// The serving layer (`rnn-server`) keeps its storage backend behind this
/// object-safe trait so configuration knobs — eviction policy, frontier
/// prefetch — can be applied without knowing the concrete [`PageStore`]
/// type, mirroring how query algorithms only see [`Topology`]. All methods
/// take `&self`: the handle is shared with live query traffic and every
/// operation is safe to apply while queries run (policy switches drain and
/// re-admit resident pages without changing demand counters).
pub trait StorageControl: Send + Sync {
    /// The eviction policy currently driving the page buffer.
    fn policy(&self) -> EvictionPolicy;

    /// Switches the buffer's eviction policy at runtime, preserving resident
    /// pages and all accounting ([`BufferPool::set_policy`]).
    fn set_policy(&self, policy: EvictionPolicy);

    /// Whether expansion-frontier prefetch hints are enabled.
    fn prefetch_enabled(&self) -> bool;

    /// Enables or disables expansion-frontier prefetch hints.
    fn set_prefetch(&self, enabled: bool);

    /// Per-shard counter breakdown plus merged totals of the page buffer.
    fn pool_stats(&self) -> BufferPoolStats;

    /// Buffer capacity in pages (summed over shards).
    fn buffer_capacity(&self) -> usize;

    /// Number of independently locked buffer shards.
    fn num_shards(&self) -> usize;

    /// Number of pages currently resident in the buffer.
    fn resident_pages(&self) -> usize;

    /// Attaches a flight recorder to the backend's control plane: resize,
    /// policy-switch and clear operations then append structured events
    /// ([`rnn_obs::EventKind::PoolResize`] and friends) so runtime tuning
    /// shows up on the serving layer's event timeline. The default
    /// implementation ignores the sink (for backends with no control-plane
    /// events to report).
    fn set_event_sink(&self, events: std::sync::Arc<rnn_obs::FlightRecorder>) {
        let _ = events;
    }
}

impl<S: PageStore + Send> StorageControl for PagedGraph<S> {
    fn policy(&self) -> EvictionPolicy {
        self.buffer.policy()
    }

    fn set_policy(&self, policy: EvictionPolicy) {
        self.buffer.set_policy(policy);
    }

    fn prefetch_enabled(&self) -> bool {
        PagedGraph::prefetch_enabled(self)
    }

    fn set_prefetch(&self, enabled: bool) {
        PagedGraph::set_prefetch(self, enabled);
    }

    fn pool_stats(&self) -> BufferPoolStats {
        PagedGraph::pool_stats(self)
    }

    fn buffer_capacity(&self) -> usize {
        PagedGraph::buffer_capacity(self)
    }

    fn num_shards(&self) -> usize {
        self.buffer.num_shards()
    }

    fn resident_pages(&self) -> usize {
        self.buffer.resident_pages()
    }

    fn set_event_sink(&self, events: std::sync::Arc<rnn_obs::FlightRecorder>) {
        self.buffer.set_event_sink(events);
    }
}

impl<S: PageStore> std::fmt::Debug for PagedGraph<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedGraph")
            .field("num_nodes", &self.num_nodes)
            .field("num_pages", &self.num_pages())
            .field("buffer_capacity", &self.buffer_capacity())
            .field("policy", &self.buffer.policy())
            .field("prefetch", &self.prefetch_enabled())
            .field("io", &self.io_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::FileDisk;
    use rnn_graph::GraphBuilder;

    fn grid_graph(side: usize) -> Graph {
        let mut b = GraphBuilder::new(side * side);
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    b.add_edge(v, v + 1, 1.0 + ((v % 3) as f64)).unwrap();
                }
                if r + 1 < side {
                    b.add_edge(v, v + side, 2.0).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn paged_graph_reports_same_adjacency_as_in_memory_graph() {
        let g = grid_graph(10);
        let pg = PagedGraph::build(&g).unwrap();
        assert_eq!(Topology::num_nodes(&pg), g.num_nodes());
        for v in g.node_ids() {
            let expected = g.neighbors_vec(v);
            let got = pg.neighbors_vec(v);
            assert_eq!(got, expected, "node {v}");
        }
    }

    #[test]
    fn io_is_counted_and_resettable() {
        let g = grid_graph(10);
        let pg =
            PagedGraph::build_with(&g, LayoutStrategy::BfsLocality, 4, IoCounters::new()).unwrap();
        for v in g.node_ids() {
            pg.neighbors_vec(v);
        }
        let s = pg.io_stats();
        assert_eq!(s.accesses, 100);
        assert!(s.faults >= pg.num_pages() as u64);
        pg.reset_io();
        assert_eq!(pg.io_stats(), IoStats::default());
        // reset_io keeps the two accounting views in agreement: the pool's
        // per-shard breakdown is zeroed too (pages stay resident).
        assert_eq!(pg.pool_stats().total, crate::ShardStats::default());
        assert!(pg.buffer().resident_pages() > 0, "reset_io leaves pages resident");
        pg.cold_start();
        pg.neighbors_vec(NodeId::new(0));
        assert_eq!(pg.io_stats().faults, 1);
        assert_eq!(pg.pool_stats().total.faults, 1);
    }

    #[test]
    fn bfs_layout_produces_fewer_faults_than_shuffled_on_small_buffer() {
        let g = grid_graph(24); // 576 nodes
        let run = |strategy| {
            let pg = PagedGraph::build_with(&g, strategy, 2, IoCounters::new()).unwrap();
            // A BFS-like scan around each node mimics the locality of network
            // expansion queries.
            for v in g.node_ids() {
                pg.neighbors_vec(v);
            }
            pg.io_stats().faults
        };
        let bfs = run(LayoutStrategy::BfsLocality);
        let shuffled = run(LayoutStrategy::Shuffled(3));
        assert!(
            bfs < shuffled,
            "BFS locality should fault less ({bfs}) than a shuffled layout ({shuffled})"
        );
    }

    #[test]
    fn buffer_capacity_zero_faults_every_access() {
        let g = grid_graph(6);
        let pg =
            PagedGraph::build_with(&g, LayoutStrategy::NodeOrder, 0, IoCounters::new()).unwrap();
        for _ in 0..3 {
            pg.neighbors_vec(NodeId::new(5));
        }
        let s = pg.io_stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.faults, 3);
        assert_eq!(pg.buffer_capacity(), 0);
    }

    #[test]
    fn warm_buffer_second_pass_is_fault_free() {
        // With a buffer large enough for the whole file, the second scan hits
        // on every access — the premise behind the buffer-size experiment
        // (Fig. 21): accesses keep growing, faults do not.
        let g = grid_graph(10);
        let pg = PagedGraph::build_with(&g, LayoutStrategy::BfsLocality, 1024, IoCounters::new())
            .unwrap();
        for v in g.node_ids() {
            pg.neighbors_vec(v);
        }
        let cold = pg.io_stats();
        assert!(cold.faults > 0);
        for v in g.node_ids() {
            pg.neighbors_vec(v);
        }
        let warm = pg.io_stats();
        assert_eq!(warm.accesses, 2 * cold.accesses);
        assert_eq!(warm.faults, cold.faults, "warm pass must not fault");
        assert_eq!(warm.evictions, 0);
    }

    #[test]
    fn sharded_buffers_serve_identical_adjacency_with_per_shard_accounting() {
        let g = grid_graph(12);
        let pg = PagedGraph::build_with_config(
            &g,
            LayoutStrategy::BfsLocality,
            crate::BufferPoolConfig::new(8).with_shards(4),
            IoCounters::new(),
        )
        .unwrap();
        assert_eq!(pg.buffer().num_shards(), 4);
        for v in g.node_ids() {
            assert_eq!(pg.neighbors_vec(v), g.neighbors_vec(v), "node {v}");
        }
        let pool = pg.pool_stats();
        assert_eq!(pool.per_shard.len(), 4);
        assert_eq!(
            pool.total.as_io_stats(),
            pg.io_stats(),
            "pool-side totals match the thread-attributed counters"
        );
        pg.cold_start();
        assert_eq!(pg.io_stats(), IoStats::default());
        assert_eq!(pg.pool_stats().total, crate::ShardStats::default());
    }

    #[test]
    fn prefetch_hints_warm_the_buffer_without_demand_accounting() {
        let g = grid_graph(10);
        let pg = PagedGraph::build_with(&g, LayoutStrategy::BfsLocality, 16, IoCounters::new())
            .unwrap()
            .with_prefetch(true);
        assert!(Topology::wants_prefetch_hints(&pg));

        let node = NodeId::new(42);
        Topology::prefetch_hint(&pg, &[node]);
        let after_hint = pg.pool_stats().total;
        assert!(after_hint.prefetch_issued >= 1);
        assert_eq!(after_hint.accesses(), 0, "hints must not count as demand accesses");
        assert_eq!(after_hint.faults, 0, "hints must not count as demand faults");
        assert_eq!(pg.io_stats(), IoStats::default());

        // The demand fetch now hits the prefetched page: no fault, and the
        // speculation is credited as useful.
        assert_eq!(pg.neighbors_vec(node), g.neighbors_vec(node));
        let warm = pg.pool_stats().total;
        assert_eq!(warm.faults, 0, "prefetched page serves the demand fetch");
        assert!(warm.prefetch_useful >= 1);
    }

    #[test]
    fn prefetch_hints_are_a_no_op_when_disabled_or_out_of_range() {
        let g = grid_graph(6);
        let pg =
            PagedGraph::build_with(&g, LayoutStrategy::BfsLocality, 8, IoCounters::new()).unwrap();
        assert!(!Topology::wants_prefetch_hints(&pg));
        Topology::prefetch_hint(&pg, &[NodeId::new(0)]);
        assert_eq!(pg.pool_stats().total.prefetch_issued, 0, "disabled hints do nothing");

        pg.set_prefetch(true);
        // Out-of-range nodes are silently skipped; in-range ones still land.
        Topology::prefetch_hint(&pg, &[NodeId::new(1_000_000), NodeId::new(3)]);
        assert!(pg.pool_stats().total.prefetch_issued >= 1);
        assert_eq!(pg.io_stats(), IoStats::default());
    }

    #[test]
    fn storage_control_tunes_policy_and_prefetch_through_dyn_handle() {
        let g = grid_graph(8);
        let pg =
            PagedGraph::build_with(&g, LayoutStrategy::BfsLocality, 8, IoCounters::new()).unwrap();
        for v in g.node_ids() {
            pg.neighbors_vec(v);
        }
        let ctl: &dyn StorageControl = &pg;
        assert_eq!(ctl.policy(), EvictionPolicy::Lru);
        assert!(!ctl.prefetch_enabled());
        assert_eq!(ctl.buffer_capacity(), 8);
        assert_eq!(ctl.num_shards(), 1);
        assert!(ctl.resident_pages() > 0);

        let before = ctl.pool_stats().total;
        ctl.set_policy(EvictionPolicy::TwoQ);
        ctl.set_prefetch(true);
        assert_eq!(ctl.policy(), EvictionPolicy::TwoQ);
        assert!(ctl.prefetch_enabled());
        // The switch preserves residency and accounting, and queries still
        // return in-memory-identical results.
        assert_eq!(ctl.pool_stats().total, before);
        for v in g.node_ids() {
            assert_eq!(pg.neighbors_vec(v), g.neighbors_vec(v), "node {v}");
        }
        let dbg = format!("{pg:?}");
        assert!(dbg.contains("2q") || dbg.contains("TwoQ"), "Debug shows the policy: {dbg}");
    }

    #[test]
    fn multi_page_adjacency_spans_are_fetched_batched_and_identical() {
        // A star graph: the hub's adjacency list overflows one 4 KB page, so
        // its index entry spans several pages and `fetch_neighbors` takes the
        // `fetch_many` path.
        let leaves = 700;
        let mut b = GraphBuilder::new(leaves + 1);
        for l in 0..leaves {
            b.add_edge(0, l + 1, 1.0 + (l % 7) as f64).unwrap();
        }
        let g = b.build().unwrap();
        let pg =
            PagedGraph::build_with(&g, LayoutStrategy::BfsLocality, 64, IoCounters::new()).unwrap();
        let hub = NodeId::new(0);
        assert!(
            pg.node_index().entry(hub).span > 1,
            "the hub adjacency list must span multiple pages for this test"
        );
        assert_eq!(pg.neighbors_vec(hub), g.neighbors_vec(hub));
        // The paper's cost model counts one access per page of the list,
        // batched or not.
        assert_eq!(pg.io_stats().accesses, u64::from(pg.node_index().entry(hub).span));
    }

    #[test]
    fn from_parts_with_file_disk() {
        let g = grid_graph(5);
        let layout = PageLayout::build(&g, LayoutStrategy::BfsLocality).unwrap();
        let dir = std::env::temp_dir().join(format!("rnn_paged_graph_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.pages");
        let disk = FileDisk::create(&path, &layout.pages).unwrap();
        let pool = BufferPool::new(disk, 8, IoCounters::new());
        let pg = PagedGraph::from_parts(pool, layout.index, g.num_nodes());

        for v in g.node_ids() {
            assert_eq!(pg.neighbors_vec(v), g.neighbors_vec(v));
        }
        assert!(pg.io_stats().accesses > 0);
        assert!(format!("{pg:?}").contains("PagedGraph"));
        assert_eq!(pg.node_index().num_nodes(), g.num_nodes());

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }
}

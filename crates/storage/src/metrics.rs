//! Registry glue: publishing the storage layer's counters through
//! [`rnn_obs::MetricsRegistry`].
//!
//! The storage layer already keeps two consistent-snapshot counter bundles —
//! the thread-attributed [`IoCounters`] and the per-shard
//! [`BufferPool::io_stats`] — and both are *poll* APIs: nothing here touches
//! the page-access hot path. Each registration installs a snapshot **source**
//! ([`MetricsRegistry::register_source`]), so every
//! [`MetricsRegistry::snapshot`] re-polls the live counters and the emitted
//! triple always comes from **one** underlying snapshot call. That preserves
//! the storage layer's own consistency guarantee in the exported numbers:
//! within a single metrics snapshot, `evictions <= faults <= accesses` for
//! the I/O counters and `hits + faults == accesses` for every buffer shard.
//!
//! Metric names carry the pool label inline (`{pool="graph"}`), matching the
//! exporter's Prometheus-style text format, so several pools (e.g. the graph
//! pool and the materialized-table pool of a bichromatic setup) can register
//! into one registry without clashing.

use crate::buffer::BufferPool;
use crate::disk::PageStore;
use crate::io_stats::IoCounters;
use rnn_obs::MetricsRegistry;
use std::sync::Arc;

/// Registers shared [`IoCounters`] as a snapshot source named
/// `io-counters/<pool>`.
///
/// Emits, per snapshot, from one [`IoCounters::snapshot`] call:
///
/// * `rnn_io_accesses_total{pool="<pool>"}` — logical page accesses;
/// * `rnn_io_faults_total{pool="<pool>"}` — buffer misses;
/// * `rnn_io_evictions_total{pool="<pool>"}` — pages evicted.
///
/// `IoCounters` is a shared handle, so the registry keeps a clone; counts
/// recorded by any thread after registration show up in later snapshots.
pub fn register_io_counters(registry: &MetricsRegistry, pool: &str, counters: &IoCounters) {
    let accesses = format!("rnn_io_accesses_total{{pool=\"{pool}\"}}");
    let faults = format!("rnn_io_faults_total{{pool=\"{pool}\"}}");
    let evictions = format!("rnn_io_evictions_total{{pool=\"{pool}\"}}");
    let counters = counters.clone();
    registry.register_source(&format!("io-counters/{pool}"), move |set| {
        let s = counters.snapshot();
        set.counter(&accesses, s.accesses);
        set.counter(&faults, s.faults);
        set.counter(&evictions, s.evictions);
    });
}

/// Registers a [`BufferPool`] as a snapshot source named
/// `buffer-pool/<pool>`.
///
/// Emits, per snapshot, gauges for the pool's shape —
/// `rnn_buffer_pool_capacity_pages`, `rnn_buffer_pool_shards`,
/// `rnn_buffer_pool_resident_pages`, plus `rnn_buffer_pool_policy` (the
/// [`crate::EvictionPolicy::code`] of the active eviction policy) — then
/// hit/fault/eviction and `prefetch_{issued,useful,wasted}` counters for the
/// pool total, and per shard the same counters plus a
/// `rnn_buffer_pool_shard_hit_rate_permille` gauge (demand hits per 1000
/// demand accesses; 0 when the shard is untouched)
/// (`rnn_buffer_pool_shard_hits_total{pool="<pool>",shard="0"}`, …). All
/// counters of one snapshot come from a single [`BufferPool::io_stats`]
/// call, which holds every shard lock, so the per-shard breakdown always
/// sums to the emitted total.
///
/// The pool is held behind an [`Arc`] because the registry's sources are
/// `'static`: the registration keeps the pool alive for as long as the
/// registry polls it.
pub fn register_buffer_pool<S>(registry: &MetricsRegistry, pool: &str, buffer: &Arc<BufferPool<S>>)
where
    S: PageStore + Send + Sync + 'static,
{
    let label = pool.to_string();
    let buffer = Arc::clone(buffer);
    registry.register_source(&format!("buffer-pool/{pool}"), move |set| {
        let p = &label;
        set.gauge(
            &format!("rnn_buffer_pool_capacity_pages{{pool=\"{p}\"}}"),
            buffer.capacity() as u64,
        );
        set.gauge(&format!("rnn_buffer_pool_shards{{pool=\"{p}\"}}"), buffer.num_shards() as u64);
        set.gauge(&format!("rnn_buffer_pool_policy{{pool=\"{p}\"}}"), buffer.policy().code());
        let stats = buffer.io_stats();
        // `resident_pages` re-locks the shards, but the gauge is advisory
        // (it may lag `stats` by concurrent fetches); the counters below all
        // come from the one consistent `stats` snapshot.
        set.gauge(
            &format!("rnn_buffer_pool_resident_pages{{pool=\"{p}\"}}"),
            buffer.resident_pages() as u64,
        );
        set.counter(&format!("rnn_buffer_pool_hits_total{{pool=\"{p}\"}}"), stats.total.hits);
        set.counter(&format!("rnn_buffer_pool_faults_total{{pool=\"{p}\"}}"), stats.total.faults);
        set.counter(
            &format!("rnn_buffer_pool_evictions_total{{pool=\"{p}\"}}"),
            stats.total.evictions,
        );
        set.counter(
            &format!("rnn_buffer_pool_prefetch_issued_total{{pool=\"{p}\"}}"),
            stats.total.prefetch_issued,
        );
        set.counter(
            &format!("rnn_buffer_pool_prefetch_useful_total{{pool=\"{p}\"}}"),
            stats.total.prefetch_useful,
        );
        set.counter(
            &format!("rnn_buffer_pool_prefetch_wasted_total{{pool=\"{p}\"}}"),
            stats.total.prefetch_wasted,
        );
        for (i, shard) in stats.per_shard.iter().enumerate() {
            set.counter(
                &format!("rnn_buffer_pool_shard_hits_total{{pool=\"{p}\",shard=\"{i}\"}}"),
                shard.hits,
            );
            set.counter(
                &format!("rnn_buffer_pool_shard_faults_total{{pool=\"{p}\",shard=\"{i}\"}}"),
                shard.faults,
            );
            set.counter(
                &format!("rnn_buffer_pool_shard_evictions_total{{pool=\"{p}\",shard=\"{i}\"}}"),
                shard.evictions,
            );
            set.counter(
                &format!(
                    "rnn_buffer_pool_shard_prefetch_issued_total{{pool=\"{p}\",shard=\"{i}\"}}"
                ),
                shard.prefetch_issued,
            );
            set.counter(
                &format!(
                    "rnn_buffer_pool_shard_prefetch_useful_total{{pool=\"{p}\",shard=\"{i}\"}}"
                ),
                shard.prefetch_useful,
            );
            set.counter(
                &format!(
                    "rnn_buffer_pool_shard_prefetch_wasted_total{{pool=\"{p}\",shard=\"{i}\"}}"
                ),
                shard.prefetch_wasted,
            );
            set.gauge(
                &format!("rnn_buffer_pool_shard_hit_rate_permille{{pool=\"{p}\",shard=\"{i}\"}}"),
                shard.hit_rate_permille(),
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemoryDisk;
    use crate::page::{PageBuilder, PageEntry, PageId};
    use rnn_graph::{EdgeId, NodeId, Weight};

    fn disk(pages: usize) -> MemoryDisk {
        let pages = (0..pages)
            .map(|i| {
                let mut b = PageBuilder::new();
                b.push_record(
                    NodeId(i as u32),
                    &[PageEntry { neighbor: NodeId(0), edge: EdgeId(0), weight: Weight::new(1.0) }],
                )
                .unwrap();
                b.build()
            })
            .collect();
        MemoryDisk::new(pages)
    }

    #[test]
    fn io_counters_source_reflects_live_counts() {
        let registry = MetricsRegistry::new();
        let counters = IoCounters::new();
        register_io_counters(&registry, "graph", &counters);

        let snap = registry.snapshot();
        assert_eq!(snap.counter("rnn_io_accesses_total{pool=\"graph\"}"), Some(0));

        counters.record_access(true, false);
        counters.record_access(false, false);
        counters.record_access(true, true);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rnn_io_accesses_total{pool=\"graph\"}"), Some(3));
        assert_eq!(snap.counter("rnn_io_faults_total{pool=\"graph\"}"), Some(2));
        assert_eq!(snap.counter("rnn_io_evictions_total{pool=\"graph\"}"), Some(1));
    }

    #[test]
    fn two_pools_register_without_clashing() {
        let registry = MetricsRegistry::new();
        let a = IoCounters::new();
        let b = IoCounters::new();
        register_io_counters(&registry, "graph", &a);
        register_io_counters(&registry, "knn-table", &b);
        a.record_access(true, false);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rnn_io_accesses_total{pool=\"graph\"}"), Some(1));
        assert_eq!(snap.counter("rnn_io_accesses_total{pool=\"knn-table\"}"), Some(0));
    }

    #[test]
    fn buffer_pool_source_emits_shape_totals_and_shards() {
        let registry = MetricsRegistry::new();
        let pool = Arc::new(BufferPool::with_config(
            disk(8),
            crate::buffer::BufferPoolConfig::new(4).with_shards(2),
            IoCounters::new(),
        ));
        register_buffer_pool(&registry, "graph", &pool);

        pool.prefetch(&[PageId::new(0)]);
        for id in [0, 1, 0, 2, 3, 4, 5, 6, 7, 0] {
            pool.fetch(PageId::new(id)).unwrap();
        }
        let snap = registry.snapshot();
        let c = |name: &str| snap.counter(name).unwrap_or_else(|| panic!("missing {name}"));
        let g = |name: &str| snap.gauge(name).unwrap_or_else(|| panic!("missing {name}"));
        assert_eq!(g("rnn_buffer_pool_capacity_pages{pool=\"graph\"}"), 4);
        assert_eq!(g("rnn_buffer_pool_shards{pool=\"graph\"}"), 2);
        assert!(g("rnn_buffer_pool_resident_pages{pool=\"graph\"}") <= 4);
        assert_eq!(g("rnn_buffer_pool_policy{pool=\"graph\"}"), crate::EvictionPolicy::Lru.code());
        assert_eq!(c("rnn_buffer_pool_prefetch_issued_total{pool=\"graph\"}"), 1);
        assert_eq!(
            c("rnn_buffer_pool_prefetch_useful_total{pool=\"graph\"}"),
            1,
            "the prefetched page 0 served its first demand access"
        );

        let hits = c("rnn_buffer_pool_hits_total{pool=\"graph\"}");
        let faults = c("rnn_buffer_pool_faults_total{pool=\"graph\"}");
        let evictions = c("rnn_buffer_pool_evictions_total{pool=\"graph\"}");
        assert_eq!(hits + faults, 10, "every fetch is a hit or a fault");
        assert!(evictions <= faults);

        // The per-shard breakdown sums to the emitted totals (all read from
        // one io_stats snapshot), and the derived hit-rate gauge agrees with
        // the counters it derives from.
        let mut shard_hits = 0;
        let mut shard_faults = 0;
        let mut shard_evictions = 0;
        for i in 0..2 {
            let h = c(&format!("rnn_buffer_pool_shard_hits_total{{pool=\"graph\",shard=\"{i}\"}}"));
            let f =
                c(&format!("rnn_buffer_pool_shard_faults_total{{pool=\"graph\",shard=\"{i}\"}}"));
            shard_hits += h;
            shard_faults += f;
            shard_evictions += c(&format!(
                "rnn_buffer_pool_shard_evictions_total{{pool=\"graph\",shard=\"{i}\"}}"
            ));
            let rate = g(&format!(
                "rnn_buffer_pool_shard_hit_rate_permille{{pool=\"graph\",shard=\"{i}\"}}"
            ));
            let expected = (h * 1000).checked_div(h + f).unwrap_or(0);
            assert_eq!(rate, expected, "shard {i} hit-rate gauge");
        }
        assert_eq!(shard_hits, hits);
        assert_eq!(shard_faults, faults);
        assert_eq!(shard_evictions, evictions);
    }

    #[test]
    fn snapshots_keep_io_invariants_under_concurrent_recording() {
        // Pollers snapshot the registry while recorders hammer the counters;
        // every emitted triple must satisfy evictions <= faults <= accesses
        // because each collection reads one IoCounters snapshot.
        let registry = MetricsRegistry::new();
        let counters = IoCounters::new();
        register_io_counters(&registry, "graph", &counters);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let counters = counters.clone();
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        counters.record_access(i % 2 == 0, i % 8 == 0);
                    }
                    counters.retire_current_thread();
                });
            }
            let registry = registry.clone();
            scope.spawn(move || {
                for _ in 0..200 {
                    let snap = registry.snapshot();
                    let accesses = snap.counter("rnn_io_accesses_total{pool=\"graph\"}").unwrap();
                    let faults = snap.counter("rnn_io_faults_total{pool=\"graph\"}").unwrap();
                    let evictions = snap.counter("rnn_io_evictions_total{pool=\"graph\"}").unwrap();
                    assert!(evictions <= faults, "torn: {evictions} > {faults}");
                    assert!(faults <= accesses, "torn: {faults} > {accesses}");
                }
            });
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rnn_io_accesses_total{pool=\"graph\"}"), Some(4_000));
    }
}

//! Grouping of adjacency lists into disk pages.
//!
//! "In order to minimize the I/O cost in the presence of a buffer, a disk
//! page stores lists of neighboring nodes, grouped together" (Section 3.1,
//! following Chan & Zhang). [`LayoutStrategy::BfsLocality`] reproduces that
//! grouping: nodes are packed into pages in breadth-first order, so a node
//! and its neighbors usually live in the same or an adjacent page and the
//! local expansions of the query algorithms hit the buffer. The id-order and
//! shuffled layouts are provided for ablation studies (the paper's grouping
//! claim is exactly that BFS locality reduces faults).

use crate::error::StorageError;
use crate::node_index::{NodeIndex, NodeIndexEntry};
use crate::page::{Page, PageBuilder, PageEntry, PageId, PageRecord};
use rnn_graph::{Graph, NodeId, Topology};
use std::collections::VecDeque;

/// How adjacency lists are assigned to pages.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum LayoutStrategy {
    /// Pack nodes in breadth-first order starting from node 0 (and from the
    /// lowest-id unvisited node of every further component). This is the
    /// locality-preserving grouping the paper uses.
    #[default]
    BfsLocality,
    /// Pack nodes in ascending node-id order.
    NodeOrder,
    /// Pack nodes in a deterministic pseudo-random order derived from the
    /// given seed. Destroys locality on purpose (worst-case ablation).
    Shuffled(u64),
}

/// The result of laying a graph out on pages.
#[derive(Clone, Debug)]
pub struct PageLayout {
    /// The encoded pages, in page id order.
    pub pages: Vec<Page>,
    /// The node-id index pointing into `pages`.
    pub index: NodeIndex,
    /// The node order that was used for packing (useful for diagnostics).
    pub packing_order: Vec<NodeId>,
}

impl PageLayout {
    /// Lays out `graph` on pages using `strategy`.
    pub fn build(graph: &Graph, strategy: LayoutStrategy) -> Result<Self, StorageError> {
        let order = packing_order(graph, strategy);
        Self::build_with_order(graph, order)
    }

    /// Lays out `graph` with an explicit node packing order (every node must
    /// appear exactly once).
    pub fn build_with_order(graph: &Graph, order: Vec<NodeId>) -> Result<Self, StorageError> {
        debug_assert_eq!(order.len(), graph.num_nodes());
        let max_entries = PageRecord::max_entries_per_page();

        let mut pages: Vec<Page> = Vec::new();
        let mut entries_index: Vec<NodeIndexEntry> =
            vec![NodeIndexEntry { first_page: PageId(0), span: 0 }; graph.num_nodes()];
        let mut current = PageBuilder::new();
        let mut scratch: Vec<PageEntry> = Vec::new();

        for &node in &order {
            scratch.clear();
            graph.visit_neighbors(node, &mut |n| {
                scratch.push(PageEntry { neighbor: n.node, edge: n.edge, weight: n.weight });
            });

            if scratch.len() <= max_entries {
                if !current.fits(scratch.len()) {
                    pages.push(std::mem::replace(&mut current, PageBuilder::new()).build());
                }
                let page_id = PageId::new(pages.len());
                current.push_record(node, &scratch)?;
                entries_index[node.index()] = NodeIndexEntry { first_page: page_id, span: 1 };
            } else {
                // Hub node: flush the current page and emit dedicated,
                // consecutive continuation pages.
                if !current.is_empty() {
                    pages.push(std::mem::replace(&mut current, PageBuilder::new()).build());
                }
                let first_page = PageId::new(pages.len());
                let mut span = 0u16;
                for chunk in scratch.chunks(max_entries) {
                    let mut b = PageBuilder::new();
                    b.push_record(node, chunk)?;
                    pages.push(b.build());
                    span += 1;
                }
                entries_index[node.index()] = NodeIndexEntry { first_page, span };
            }
        }
        if !current.is_empty() {
            pages.push(current.build());
        }

        Ok(PageLayout { pages, index: NodeIndex::new(entries_index), packing_order: order })
    }

    /// Number of pages produced.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }
}

/// Computes the node packing order for a strategy.
pub fn packing_order(graph: &Graph, strategy: LayoutStrategy) -> Vec<NodeId> {
    match strategy {
        LayoutStrategy::NodeOrder => graph.node_ids().collect(),
        LayoutStrategy::BfsLocality => bfs_order(graph),
        LayoutStrategy::Shuffled(seed) => {
            let mut order: Vec<NodeId> = graph.node_ids().collect();
            // Fisher-Yates with a SplitMix64 stream; deterministic for a seed.
            let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
            let mut next = move || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            for i in (1..order.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            order
        }
    }
}

fn bfs_order(graph: &Graph) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push_back(NodeId::new(start));
        while let Some(v) = queue.pop_front() {
            order.push(v);
            graph.visit_neighbors(v, &mut |nb| {
                if !visited[nb.node.index()] {
                    visited[nb.node.index()] = true;
                    queue.push_back(nb.node);
                }
            });
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_graph::GraphBuilder;

    fn grid_graph(side: usize) -> Graph {
        let mut b = GraphBuilder::new(side * side);
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    b.add_edge(v, v + 1, 1.0).unwrap();
                }
                if r + 1 < side {
                    b.add_edge(v, v + side, 1.0).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    fn star_graph(leaves: usize) -> Graph {
        let mut b = GraphBuilder::new(leaves + 1);
        for i in 1..=leaves {
            b.add_edge(0, i, 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn every_node_has_an_index_entry_and_its_record_is_complete() {
        let g = grid_graph(8);
        for strategy in
            [LayoutStrategy::BfsLocality, LayoutStrategy::NodeOrder, LayoutStrategy::Shuffled(42)]
        {
            let layout = PageLayout::build(&g, strategy).unwrap();
            assert_eq!(layout.index.num_nodes(), g.num_nodes());
            assert!(layout.num_pages() >= 1);
            for v in g.node_ids() {
                let entry = layout.index.entry(v);
                let mut decoded = Vec::new();
                for p in entry.pages() {
                    layout.pages[p.index()].entries_of(p, v, &mut decoded).unwrap();
                }
                let expected = g.neighbors_vec(v);
                assert_eq!(decoded.len(), expected.len(), "{strategy:?} node {v}");
                for (d, e) in decoded.iter().zip(expected.iter()) {
                    assert_eq!(d.neighbor, e.node);
                    assert_eq!(d.edge, e.edge);
                    assert_eq!(d.weight, e.weight);
                }
            }
        }
    }

    #[test]
    fn bfs_layout_packs_neighbors_into_nearby_pages() {
        let g = grid_graph(32); // 1024 nodes, degree <= 4
        let bfs = PageLayout::build(&g, LayoutStrategy::BfsLocality).unwrap();
        let shuffled = PageLayout::build(&g, LayoutStrategy::Shuffled(7)).unwrap();

        // Measure locality: average |page(v) - page(u)| over all edges.
        let spread = |layout: &PageLayout| -> f64 {
            let mut total = 0.0;
            let mut count = 0.0;
            for (_, lo, hi, _) in g.edges() {
                let a = layout.index.entry(lo).first_page.index() as f64;
                let b = layout.index.entry(hi).first_page.index() as f64;
                total += (a - b).abs();
                count += 1.0;
            }
            total / count
        };
        assert!(
            spread(&bfs) < spread(&shuffled),
            "BFS layout should place adjacent nodes on nearby pages"
        );
    }

    #[test]
    fn hub_nodes_span_multiple_consecutive_pages() {
        let leaves = PageRecord::max_entries_per_page() * 2 + 10;
        let g = star_graph(leaves);
        let layout = PageLayout::build(&g, LayoutStrategy::NodeOrder).unwrap();
        let hub = layout.index.entry(NodeId::new(0));
        assert_eq!(hub.span, 3);
        let mut decoded = Vec::new();
        for p in hub.pages() {
            layout.pages[p.index()].entries_of(p, NodeId::new(0), &mut decoded).unwrap();
        }
        assert_eq!(decoded.len(), leaves);
    }

    #[test]
    fn packing_orders_are_permutations() {
        let g = grid_graph(5);
        for strategy in
            [LayoutStrategy::BfsLocality, LayoutStrategy::NodeOrder, LayoutStrategy::Shuffled(1)]
        {
            let mut order = packing_order(&g, strategy);
            order.sort_unstable();
            let expected: Vec<NodeId> = g.node_ids().collect();
            assert_eq!(order, expected, "{strategy:?}");
        }
        // shuffling with different seeds gives different orders
        assert_ne!(
            packing_order(&g, LayoutStrategy::Shuffled(1)),
            packing_order(&g, LayoutStrategy::Shuffled(2))
        );
        assert_eq!(LayoutStrategy::default(), LayoutStrategy::BfsLocality);
    }

    #[test]
    fn empty_graph_layout() {
        let g = GraphBuilder::new(0).build().unwrap();
        let layout = PageLayout::build(&g, LayoutStrategy::BfsLocality).unwrap();
        assert_eq!(layout.num_pages(), 0);
        assert_eq!(layout.index.num_nodes(), 0);
    }

    #[test]
    fn isolated_nodes_get_empty_records() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build().unwrap();
        let layout = PageLayout::build(&g, LayoutStrategy::BfsLocality).unwrap();
        let entry = layout.index.entry(NodeId::new(2));
        let mut decoded = Vec::new();
        let mut found = false;
        for p in entry.pages() {
            found |= layout.pages[p.index()].entries_of(p, NodeId::new(2), &mut decoded).unwrap();
        }
        assert!(found, "isolated node still has an (empty) record");
        assert!(decoded.is_empty());
    }
}

//! Pluggable page-eviction policies for the buffer pool.
//!
//! The paper's buffer is a single LRU list, and that stays the default —
//! bit-compatible with the seed victim order. But LRU is the worst possible
//! policy for two access patterns the serving system actually produces:
//! cyclic scans (a cold range-NN sweep flushes the entire hot working set)
//! and highly concurrent hit streams (every hit rewrites the recency list
//! under the shard lock). [`EvictionPolicy`] selects between three policies
//! per pool:
//!
//! * [`EvictionPolicy::Lru`] — exact least-recently-used, the paper's
//!   buffer. Every hit moves the entry to the MRU position.
//! * [`EvictionPolicy::Clock`] — second-chance FIFO. A hit only sets a
//!   reference bit (no list writes), and the eviction hand sweeps the ring
//!   clearing bits until it finds an unreferenced victim. Approximates LRU
//!   at a fraction of the hit-path cost.
//! * [`EvictionPolicy::TwoQ`] — the 2Q algorithm (Johnson & Shasha, VLDB
//!   '94): new pages enter a FIFO probation queue (`A1in`, ~¼ capacity) and
//!   only promote to the protected LRU main queue (`Am`) when they fault
//!   *again* while remembered by a ghost queue of recently evicted ids
//!   (`A1out`, ~½ capacity of keys, no page data). One cold scan churns
//!   through `A1in` and never touches the hot set in `Am` — scan-resistant.
//!
//! Every policy tracks, per resident page, whether it was admitted by
//! [`PageCache::insert_prefetched`] (a speculative read) and has not yet
//! served a demand hit. Speculative pages are admitted **cold** — at the
//! LRU/A1in victim end, or with a cleared Clock reference bit at the hand —
//! so a wrong guess is the first page out. The buffer pool turns the flag
//! into its `prefetch_useful` / `prefetch_wasted` accounting.
//!
//! [`PageCache`] is the crate-internal enum the pool's shards hold; enum
//! dispatch keeps the hot path monomorphic (no vtable per page access).

use crate::lru::Lru;
use crate::page::{Page, PageId};
use std::collections::{HashMap, VecDeque};

/// The eviction policy of a buffer pool, selected via
/// `BufferPoolConfig::with_policy`.
///
/// See the [module docs](self) for the trade-offs. The default is
/// [`EvictionPolicy::Lru`], whose victim order is bit-compatible with the
/// paper's single-list buffer (and with every pool built before policies
/// existed).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum EvictionPolicy {
    /// Exact least-recently-used (the paper's buffer; the default).
    #[default]
    Lru,
    /// Second-chance FIFO: hits set a reference bit instead of rewriting a
    /// recency list; the eviction hand sweeps bits clear.
    Clock,
    /// 2Q: FIFO probation queue + ghost-promoted protected LRU queue;
    /// scan-resistant.
    TwoQ,
}

impl EvictionPolicy {
    /// All policies, in a stable order (for benches and property tests).
    pub const ALL: [EvictionPolicy; 3] =
        [EvictionPolicy::Lru, EvictionPolicy::Clock, EvictionPolicy::TwoQ];

    /// A short lowercase name (`"lru"`, `"clock"`, `"2q"`) for labels in
    /// benches and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Clock => "clock",
            EvictionPolicy::TwoQ => "2q",
        }
    }

    /// A stable numeric code (0 = LRU, 1 = Clock, 2 = 2Q) for gauge export.
    pub fn code(&self) -> u64 {
        match self {
            EvictionPolicy::Lru => 0,
            EvictionPolicy::Clock => 1,
            EvictionPolicy::TwoQ => 2,
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A resident page plus its speculative-admission flag.
#[derive(Clone, Debug)]
struct Resident {
    page: Page,
    /// Admitted by prefetch and not yet hit by a demand access.
    prefetched: bool,
}

/// A page evicted (or drained) from a [`PageCache`].
#[derive(Clone, Debug)]
pub(crate) struct Victim {
    /// The evicted page id.
    pub id: PageId,
    /// The evicted page itself (pages wrap `Bytes`, so this is a cheap
    /// handle — `BufferPool::set_policy` re-admits drained pages from it).
    pub page: Page,
    /// The page was admitted speculatively and never served a demand hit —
    /// the prefetch was wasted.
    pub prefetched_unused: bool,
}

fn victim(id: PageId, r: Resident) -> Victim {
    Victim { id, page: r.page, prefetched_unused: r.prefetched }
}

/// One shard's resident-page cache, dispatching to the configured policy.
///
/// The API is shaped by what `BufferPool::fetch`/`prefetch`/`resize` need:
/// demand lookups ([`PageCache::lookup`]) report whether they are the first
/// demand use of a prefetched page, inserts return the displaced [`Victim`],
/// and [`PageCache::pop_victim`] exposes the policy's own victim order for
/// shrinking.
pub(crate) enum PageCache {
    Lru(LruPages),
    Clock(ClockPages),
    TwoQ(TwoQPages),
}

impl PageCache {
    pub fn new(policy: EvictionPolicy, capacity: usize) -> Self {
        match policy {
            EvictionPolicy::Lru => PageCache::Lru(LruPages { inner: Lru::new(capacity) }),
            EvictionPolicy::Clock => PageCache::Clock(ClockPages::new(capacity)),
            EvictionPolicy::TwoQ => PageCache::TwoQ(TwoQPages::new(capacity)),
        }
    }

    pub fn policy(&self) -> EvictionPolicy {
        match self {
            PageCache::Lru(_) => EvictionPolicy::Lru,
            PageCache::Clock(_) => EvictionPolicy::Clock,
            PageCache::TwoQ(_) => EvictionPolicy::TwoQ,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            PageCache::Lru(c) => c.inner.len(),
            PageCache::Clock(c) => c.slots.len(),
            PageCache::TwoQ(c) => c.a1in.len() + c.am.len(),
        }
    }

    pub fn capacity(&self) -> usize {
        match self {
            PageCache::Lru(c) => c.inner.capacity(),
            PageCache::Clock(c) => c.capacity,
            PageCache::TwoQ(c) => c.capacity,
        }
    }

    /// Changes the bound without dropping entries; an over-full cache is
    /// drained by the caller via [`PageCache::pop_victim`] (exactly like
    /// `Lru::set_capacity`).
    pub fn set_capacity(&mut self, capacity: usize) {
        match self {
            PageCache::Lru(c) => c.inner.set_capacity(capacity),
            PageCache::Clock(c) => c.capacity = capacity,
            PageCache::TwoQ(c) => c.set_capacity(capacity),
        }
    }

    pub fn clear(&mut self) {
        match self {
            PageCache::Lru(c) => c.inner.clear(),
            PageCache::Clock(c) => {
                c.slots.clear();
                c.map.clear();
                c.hand = 0;
            }
            PageCache::TwoQ(c) => {
                c.a1in.clear();
                c.am.clear();
                c.ghost.clear();
            }
        }
    }

    /// Residency check with **no** side effects: no recency touch, no
    /// reference bit, no flag change. Used by the prefetch path to skip
    /// already-resident pages without perturbing the policy state.
    pub fn contains(&self, id: PageId) -> bool {
        match self {
            PageCache::Lru(c) => c.inner.contains(&id),
            PageCache::Clock(c) => c.map.contains_key(&id),
            PageCache::TwoQ(c) => c.a1in.contains(&id) || c.am.contains(&id),
        }
    }

    /// Demand lookup. On a hit returns the page and `true` iff this is the
    /// first demand use of a page admitted by prefetch (the caller counts it
    /// as `prefetch_useful`; the flag is cleared).
    pub fn lookup(&mut self, id: PageId) -> Option<(Page, bool)> {
        let r = match self {
            PageCache::Lru(c) => c.inner.get_mut(&id)?,
            PageCache::Clock(c) => {
                let &i = c.map.get(&id)?;
                let slot = &mut c.slots[i];
                slot.referenced = true;
                &mut slot.resident
            }
            PageCache::TwoQ(c) => {
                if c.am.contains(&id) {
                    // Protected queue: a hit refreshes recency.
                    c.am.get_mut(&id)?
                } else {
                    // Probation queue is a FIFO: hits do not reorder it (the
                    // "correlated references" rule that makes 2Q resistant to
                    // a page being touched twice in quick succession and then
                    // never again).
                    c.a1in.peek_mut(&id)?
                }
            }
        };
        let first_use = std::mem::replace(&mut r.prefetched, false);
        Some((r.page.clone(), first_use))
    }

    /// Demand insert after a fault. Returns the evicted [`Victim`], if the
    /// insert displaced one; re-inserting a resident id refreshes it in
    /// place (the concurrent-fetch re-check path) and evicts nothing.
    pub fn insert(&mut self, id: PageId, page: Page) -> Option<Victim> {
        let r = Resident { page, prefetched: false };
        match self {
            PageCache::Lru(c) => c.inner.insert(id, r).map(|(k, v)| victim(k, v)),
            PageCache::Clock(c) => c.insert(id, r, true),
            PageCache::TwoQ(c) => c.insert_demand(id, r),
        }
    }

    /// Speculative insert: the page is admitted **cold** (first in the
    /// policy's victim order) and flagged, so the pool can tell a useful
    /// prefetch from a wasted one. A resident id is left untouched.
    pub fn insert_prefetched(&mut self, id: PageId, page: Page) -> Option<Victim> {
        if self.contains(id) {
            return None;
        }
        let r = Resident { page, prefetched: true };
        match self {
            PageCache::Lru(c) => c.inner.insert_cold(id, r).map(|(k, v)| victim(k, v)),
            PageCache::Clock(c) => c.insert(id, r, false),
            PageCache::TwoQ(c) => {
                let evicted = c.make_room();
                c.a1in.insert_cold(id, r);
                evicted
            }
        }
    }

    /// Removes and returns the page the policy would evict next (`None` when
    /// empty). `BufferPool::resize` drains over-full shards through this, so
    /// a shrink follows each policy's own victim order.
    pub fn pop_victim(&mut self) -> Option<Victim> {
        match self {
            PageCache::Lru(c) => c.inner.pop_lru().map(|(k, v)| victim(k, v)),
            PageCache::Clock(c) => c.pop_victim(),
            PageCache::TwoQ(c) => c.reclaim(),
        }
    }

    /// The resident ids in victim order (first entry = next victim), for
    /// tests and debugging. O(len).
    #[cfg(test)]
    pub fn victim_order(&self) -> Vec<PageId> {
        match self {
            PageCache::Lru(c) => {
                let mut ids = c.inner.keys_mru_to_lru();
                ids.reverse();
                ids
            }
            PageCache::Clock(c) => {
                // Simulate the sweep on a copy of the reference bits.
                let mut bits: Vec<bool> = c.slots.iter().map(|s| s.referenced).collect();
                let mut order = Vec::with_capacity(bits.len());
                let mut taken = vec![false; bits.len()];
                let mut hand = c.hand;
                for _ in 0..bits.len() {
                    loop {
                        if hand >= bits.len() {
                            hand = 0;
                        }
                        if taken[hand] {
                            hand += 1;
                            continue;
                        }
                        if bits[hand] {
                            bits[hand] = false;
                            hand += 1;
                            continue;
                        }
                        break;
                    }
                    taken[hand] = true;
                    order.push(c.slots[hand].id);
                    hand += 1;
                }
                order
            }
            PageCache::TwoQ(c) => {
                // Reclaim order: A1in overflow first (oldest-inserted first),
                // then Am in LRU order, then the A1in remainder.
                let mut a1in = c.a1in.keys_mru_to_lru();
                a1in.reverse(); // oldest inserted first
                let mut am = c.am.keys_mru_to_lru();
                am.reverse();
                let overflow = c.a1in.len().saturating_sub(c.kin());
                let mut order: Vec<PageId> = a1in.drain(..overflow).collect();
                order.extend(am);
                order.extend(a1in);
                order
            }
        }
    }
}

/// Exact LRU over `Lru` — the seed policy, unchanged victim order.
pub(crate) struct LruPages {
    inner: Lru<PageId, Resident>,
}

/// Second-chance FIFO ("Clock"). Slots form a ring in admission order; the
/// hand sweeps clearing reference bits until it finds one clear.
pub(crate) struct ClockPages {
    capacity: usize,
    slots: Vec<ClockSlot>,
    map: HashMap<PageId, usize>,
    hand: usize,
}

struct ClockSlot {
    id: PageId,
    resident: Resident,
    referenced: bool,
}

impl ClockPages {
    fn new(capacity: usize) -> Self {
        ClockPages { capacity, slots: Vec::new(), map: HashMap::new(), hand: 0 }
    }

    /// Advances the hand to the next victim slot, clearing reference bits on
    /// the way. Terminates: a full sweep clears every bit.
    fn sweep(&mut self) -> usize {
        debug_assert!(!self.slots.is_empty());
        loop {
            if self.hand >= self.slots.len() {
                self.hand = 0;
            }
            if self.slots[self.hand].referenced {
                self.slots[self.hand].referenced = false;
                self.hand += 1;
            } else {
                return self.hand;
            }
        }
    }

    /// Inserts a page. Demand admissions (`referenced = true`) get a full
    /// sweep before they are considered for eviction (the hand moves past
    /// them); speculative admissions are left *at* the hand with a clear bit,
    /// making them the next victim unless a demand hit rescues them first.
    fn insert(&mut self, id: PageId, r: Resident, referenced: bool) -> Option<Victim> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&i) = self.map.get(&id) {
            // Concurrent re-insert of a resident page: refresh in place.
            let slot = &mut self.slots[i];
            slot.resident = r;
            slot.referenced = true;
            return None;
        }
        if self.slots.len() < self.capacity {
            self.slots.push(ClockSlot { id, resident: r, referenced });
            self.map.insert(id, self.slots.len() - 1);
            return None;
        }
        let i = self.sweep();
        let old = std::mem::replace(&mut self.slots[i], ClockSlot { id, resident: r, referenced });
        self.map.remove(&old.id);
        self.map.insert(id, i);
        if referenced {
            self.hand = i + 1; // demand admission: move past the new page
        }
        Some(victim(old.id, old.resident))
    }

    /// Removes the slot the hand sweep selects (for shrinking). Preserves
    /// the ring order of the remaining slots.
    fn pop_victim(&mut self) -> Option<Victim> {
        if self.slots.is_empty() {
            return None;
        }
        let i = self.sweep();
        let old = self.slots.remove(i);
        self.map.remove(&old.id);
        for idx in self.map.values_mut() {
            if *idx > i {
                *idx -= 1;
            }
        }
        if self.hand > i {
            self.hand -= 1;
        }
        if self.hand >= self.slots.len() {
            self.hand = 0;
        }
        Some(victim(old.id, old.resident))
    }
}

/// The 2Q cache: probation FIFO (`a1in`), protected LRU (`am`) and the
/// ghost queue of recently evicted probation ids (`a1out`).
pub(crate) struct TwoQPages {
    capacity: usize,
    /// Probation FIFO. Backed by `Lru` but never touched on hit, so its
    /// recency order *is* insertion order.
    a1in: Lru<PageId, Resident>,
    /// Protected LRU: pages that faulted again while ghosted.
    am: Lru<PageId, Resident>,
    ghost: GhostQueue,
}

impl TwoQPages {
    fn new(capacity: usize) -> Self {
        TwoQPages {
            capacity,
            a1in: Lru::new(capacity),
            am: Lru::new(capacity),
            ghost: GhostQueue::new(Self::kout_for(capacity)),
        }
    }

    /// Probation-queue target: ¼ of capacity (at least one page).
    fn kin(&self) -> usize {
        (self.capacity / 4).max(1)
    }

    /// Ghost-queue bound: ½ of capacity in *ids* (no page data retained).
    fn kout_for(capacity: usize) -> usize {
        (capacity / 2).max(1)
    }

    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.a1in.set_capacity(capacity);
        self.am.set_capacity(capacity);
        self.ghost.set_capacity(Self::kout_for(capacity));
    }

    /// Evicts one page if the cache is full, so an insert cannot overflow.
    fn make_room(&mut self) -> Option<Victim> {
        if self.capacity == 0 || self.a1in.len() + self.am.len() < self.capacity {
            return None;
        }
        self.reclaim()
    }

    /// The 2Q reclaim rule: evict from the probation FIFO while it exceeds
    /// its target (remembering the id in the ghost queue), otherwise from
    /// the protected LRU.
    fn reclaim(&mut self) -> Option<Victim> {
        if self.a1in.len() > self.kin() || self.am.is_empty() {
            if let Some((id, r)) = self.a1in.pop_lru() {
                // Only demand-admitted pages earn a ghost entry: a wasted
                // prefetch must not fast-track its page into the protected
                // queue on a later fault.
                if !r.prefetched {
                    self.ghost.push(id);
                }
                return Some(victim(id, r));
            }
        }
        self.am.pop_lru().map(|(id, r)| victim(id, r))
    }

    fn insert_demand(&mut self, id: PageId, r: Resident) -> Option<Victim> {
        if self.capacity == 0 {
            return None;
        }
        if self.am.contains(&id) {
            self.am.insert(id, r); // refresh + touch, never evicts
            return None;
        }
        if self.a1in.contains(&id) {
            *self.a1in.peek_mut(&id).expect("checked resident") = r;
            return None;
        }
        let evicted = self.make_room();
        if self.ghost.remove(id) {
            // Second fault within the ghost window: the page has a reuse
            // distance worth protecting.
            self.am.insert(id, r);
        } else {
            self.a1in.insert(id, r);
        }
        evicted
    }
}

/// Bounded FIFO of recently evicted page ids. Stale entries (ids that were
/// promoted out, or re-pushed later) are skipped lazily via a per-push
/// sequence number, so membership and removal stay O(1).
struct GhostQueue {
    queue: VecDeque<(PageId, u64)>,
    live: HashMap<PageId, u64>,
    seq: u64,
    capacity: usize,
}

impl GhostQueue {
    fn new(capacity: usize) -> Self {
        GhostQueue { queue: VecDeque::new(), live: HashMap::new(), seq: 0, capacity }
    }

    fn push(&mut self, id: PageId) {
        if self.capacity == 0 {
            return;
        }
        self.seq += 1;
        self.live.insert(id, self.seq);
        self.queue.push_back((id, self.seq));
        self.trim();
    }

    /// Removes `id` if it is remembered; returns whether it was.
    fn remove(&mut self, id: PageId) -> bool {
        self.live.remove(&id).is_some()
    }

    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.trim();
    }

    fn trim(&mut self) {
        while self.live.len() > self.capacity {
            let (id, seq) = self.queue.pop_front().expect("live entries are queued");
            if self.live.get(&id) == Some(&seq) {
                self.live.remove(&id);
            }
        }
    }

    fn clear(&mut self) {
        self.queue.clear();
        self.live.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageBuilder;
    use rnn_graph::NodeId;

    fn page(i: u32) -> Page {
        let mut b = PageBuilder::new();
        b.push_record(NodeId(i), &[]).unwrap();
        b.build()
    }

    fn id(i: u32) -> PageId {
        PageId(i)
    }

    fn fill_demand(c: &mut PageCache, ids: impl IntoIterator<Item = u32>) {
        for i in ids {
            c.insert(id(i), page(i));
        }
    }

    #[test]
    fn policy_names_codes_and_display_are_stable() {
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Lru);
        let names: Vec<&str> = EvictionPolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["lru", "clock", "2q"]);
        let codes: Vec<u64> = EvictionPolicy::ALL.iter().map(|p| p.code()).collect();
        assert_eq!(codes, vec![0, 1, 2]);
        assert_eq!(format!("{}", EvictionPolicy::TwoQ), "2q");
    }

    #[test]
    fn lru_cache_reproduces_the_seed_victim_sequence() {
        // The exact trace the seed buffer-pool test pins down.
        let mut c = PageCache::new(EvictionPolicy::Lru, 3);
        fill_demand(&mut c, [0, 1, 2]);
        assert!(c.lookup(id(0)).is_some()); // hit -> [0, 2, 1]
        let v = c.insert(id(3), page(3)).expect("full cache evicts");
        assert_eq!(v.id, id(1));
        assert!(c.lookup(id(2)).is_some()); // hit -> [2, 3, 0]
        let v = c.insert(id(1), page(1)).expect("evicts again");
        assert_eq!(v.id, id(0));
        assert_eq!(c.victim_order(), vec![id(3), id(2), id(1)]);
        assert_eq!(c.policy(), EvictionPolicy::Lru);
    }

    #[test]
    fn clock_hits_set_the_reference_bit_instead_of_reordering() {
        let mut c = PageCache::new(EvictionPolicy::Clock, 3);
        fill_demand(&mut c, [0, 1, 2]); // ring: [0, 1, 2], all referenced
                                        // Hit 1 and 2; the first sweep clears 0's bit (no rescue in between)
                                        // and keeps sweeping until it wraps to 0 again... all bits are set,
                                        // so the first eviction clears 0, 1, 2 and takes 0.
        assert!(c.lookup(id(1)).is_some());
        let v = c.insert(id(3), page(3)).expect("full");
        assert_eq!(v.id, id(0), "first full sweep clears every bit and takes the oldest");
        // Now 1 and 2 have clear bits, 3 is referenced (demand admission,
        // hand moved past it). A hit on 2 rescues it; 1 is the next victim.
        assert!(c.lookup(id(2)).is_some());
        let v = c.insert(id(4), page(4)).expect("full");
        assert_eq!(v.id, id(1), "unreferenced page at the hand loses");
        assert!(c.contains(id(2)), "the reference bit rescued page 2");
        assert!(c.contains(id(3)));
    }

    #[test]
    fn clock_resident_reinsert_refreshes_in_place() {
        let mut c = PageCache::new(EvictionPolicy::Clock, 2);
        fill_demand(&mut c, [0, 1]);
        assert!(c.insert(id(0), page(0)).is_none(), "refresh evicts nothing");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn twoq_scan_does_not_flush_the_protected_queue() {
        // Capacity 8: kin = 2, so the probation FIFO holds at most 2 pages
        // once eviction starts. Promote a hot pair into Am, then stream 100
        // cold pages through: the hot pair must survive.
        let mut c = PageCache::new(EvictionPolicy::TwoQ, 8);
        // Fault the hot pair, push it to the ghost queue, fault it again.
        fill_demand(&mut c, [100, 101]);
        for _ in 0..8 {
            c.pop_victim(); // drain probation -> ghosts 100, 101
        }
        fill_demand(&mut c, [100, 101]); // ghost hit -> protected Am
        for i in 0..100 {
            c.insert(id(i), page(i));
        }
        assert!(c.contains(id(100)), "hot page survived the scan");
        assert!(c.contains(id(101)), "hot page survived the scan");
        assert!(c.len() <= 8);
    }

    #[test]
    fn twoq_probation_hits_do_not_promote() {
        let mut c = PageCache::new(EvictionPolicy::TwoQ, 4); // kin = 1
        fill_demand(&mut c, [0, 1, 2, 3]);
        // 0 is the oldest probation entry; hitting it must not reorder the
        // FIFO, so the next reclaim still takes 0.
        assert!(c.lookup(id(0)).is_some());
        let v = c.pop_victim().unwrap();
        assert_eq!(v.id, id(0), "probation is a FIFO even after a hit");
    }

    #[test]
    fn prefetched_pages_are_first_victims_until_used() {
        for policy in EvictionPolicy::ALL {
            let mut c = PageCache::new(policy, 4);
            fill_demand(&mut c, [0, 1]);
            c.insert_prefetched(id(9), page(9));
            let order = c.victim_order();
            assert_eq!(order[0], id(9), "{policy}: speculative page is the next victim");
            // A demand lookup reports first use exactly once and clears the
            // cold standing in LRU/Clock terms (recency touch / ref bit).
            let (_, first) = c.lookup(id(9)).unwrap();
            assert!(first, "{policy}: first demand use of a prefetched page");
            let (_, again) = c.lookup(id(9)).unwrap();
            assert!(!again, "{policy}: the flag reports only the first use");
            // Once used, the page is no longer flagged at eviction time.
            let mut drained = Vec::new();
            while let Some(v) = c.pop_victim() {
                drained.push((v.id, v.prefetched_unused));
            }
            assert!(
                drained.iter().all(|&(i, unused)| i != id(9) || !unused),
                "{policy}: a used prefetch is not wasted"
            );
        }
    }

    #[test]
    fn unused_prefetched_pages_report_wasted_on_eviction() {
        for policy in EvictionPolicy::ALL {
            let mut c = PageCache::new(policy, 2);
            c.insert_prefetched(id(7), page(7));
            fill_demand(&mut c, [0, 1, 2]); // overflows: 7 must go first
            assert!(!c.contains(id(7)), "{policy}: cold speculative page evicted first");
            let mut c = PageCache::new(policy, 2);
            c.insert_prefetched(id(7), page(7));
            let v = c.pop_victim().unwrap();
            assert_eq!(v.id, id(7), "{policy}");
            assert!(v.prefetched_unused, "{policy}: never-used prefetch is wasted");
        }
    }

    #[test]
    fn prefetch_of_a_resident_page_is_a_no_op() {
        for policy in EvictionPolicy::ALL {
            let mut c = PageCache::new(policy, 3);
            fill_demand(&mut c, [0, 1]);
            assert!(c.insert_prefetched(id(0), page(0)).is_none());
            let (_, first) = c.lookup(id(0)).unwrap();
            assert!(!first, "{policy}: a resident demand page never becomes 'prefetched'");
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    fn capacity_zero_caches_nothing_under_every_policy() {
        for policy in EvictionPolicy::ALL {
            let mut c = PageCache::new(policy, 0);
            assert!(c.insert(id(0), page(0)).is_none(), "{policy}");
            assert!(c.insert_prefetched(id(1), page(1)).is_none(), "{policy}");
            assert_eq!(c.len(), 0, "{policy}");
            assert!(c.lookup(id(0)).is_none(), "{policy}");
            assert!(c.pop_victim().is_none(), "{policy}");
        }
    }

    #[test]
    fn pop_victim_drains_every_policy_completely() {
        for policy in EvictionPolicy::ALL {
            let mut c = PageCache::new(policy, 5);
            fill_demand(&mut c, [0, 1, 2, 3, 4]);
            c.lookup(id(2));
            let mut n = 0;
            while c.pop_victim().is_some() {
                n += 1;
            }
            assert_eq!(n, 5, "{policy}");
            assert_eq!(c.len(), 0, "{policy}");
            // The drained cache is reusable.
            fill_demand(&mut c, [7]);
            assert!(c.contains(id(7)), "{policy}");
        }
    }

    #[test]
    fn clock_pop_victim_preserves_ring_order_and_map() {
        let mut c = PageCache::new(EvictionPolicy::Clock, 5);
        fill_demand(&mut c, [0, 1, 2, 3, 4]);
        c.lookup(id(1)); // re-reference 1
                         // First pop sweeps all bits clear and takes 0; 1 was re-referenced
                         // but the same sweep clears it too, so the second pop takes 1.
        assert_eq!(c.pop_victim().unwrap().id, id(0));
        assert_eq!(c.pop_victim().unwrap().id, id(1));
        // Map must still resolve the remaining pages after Vec::remove.
        for i in [2u32, 3, 4] {
            assert!(c.contains(id(i)), "page {i} resolvable after compaction");
            assert!(c.lookup(id(i)).is_some());
        }
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn twoq_ghost_queue_skips_stale_entries() {
        let mut g = GhostQueue::new(2);
        g.push(id(0));
        g.push(id(1));
        assert!(g.remove(id(0)), "remembered");
        g.push(id(0)); // re-push: the old queue entry is now stale
        g.push(id(2)); // trim must drop 1 (oldest live), not the stale 0
        assert!(!g.remove(id(1)), "1 aged out");
        assert!(g.remove(id(0)), "the re-pushed 0 survived its stale twin");
        assert!(g.remove(id(2)));
        assert!(!g.remove(id(2)), "removal is once");
    }

    #[test]
    fn twoq_ghost_window_bounds_promotions() {
        // Capacity 4 -> ghost remembers 2 ids. Evict three pages from
        // probation; only the two most recent are promotable.
        let mut c = PageCache::new(EvictionPolicy::TwoQ, 4);
        fill_demand(&mut c, [0, 1, 2]);
        c.pop_victim(); // ghosts 0
        c.pop_victim(); // ghosts 1
        c.pop_victim(); // ghosts 2; window of 2 drops 0
        assert_eq!(c.len(), 0);
        match &mut c {
            PageCache::TwoQ(t) => {
                assert!(!t.ghost.remove(id(0)), "0 fell out of the ghost window");
                assert!(t.ghost.remove(id(1)));
                assert!(t.ghost.remove(id(2)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn set_capacity_then_drain_follows_policy_victim_order() {
        for policy in EvictionPolicy::ALL {
            let mut c = PageCache::new(policy, 4);
            fill_demand(&mut c, [0, 1, 2, 3]);
            let expected = c.victim_order();
            c.set_capacity(2);
            let mut drained = Vec::new();
            while c.len() > 2 {
                drained.push(c.pop_victim().unwrap().id);
            }
            assert_eq!(drained, expected[..2].to_vec(), "{policy}");
            assert_eq!(c.capacity(), 2, "{policy}");
        }
    }
}

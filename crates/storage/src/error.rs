//! Error type for the storage layer.

use crate::page::PageId;
use std::fmt;

/// Errors produced by the page store, layout and paged graph.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A page id is outside the bounds of the store.
    PageOutOfBounds {
        /// The offending page id.
        page: PageId,
        /// Number of pages in the store.
        num_pages: usize,
    },
    /// An adjacency record does not fit in a single page.
    ///
    /// With 4 KB pages this means a node of degree greater than ~250; the
    /// layout splits such nodes across continuation pages, so seeing this
    /// error indicates a bug or a manually crafted page.
    RecordTooLarge {
        /// The node whose record overflowed.
        node: u32,
        /// The encoded size of the record in bytes.
        size: usize,
    },
    /// A page's byte content is malformed and cannot be decoded.
    CorruptPage {
        /// The offending page id.
        page: PageId,
        /// Human readable description.
        message: String,
    },
    /// Underlying file I/O failed.
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageOutOfBounds { page, num_pages } => {
                write!(f, "page {page:?} out of bounds (store has {num_pages} pages)")
            }
            StorageError::RecordTooLarge { node, size } => {
                write!(
                    f,
                    "adjacency record of node {node} is {size} bytes and exceeds the page capacity"
                )
            }
            StorageError::CorruptPage { page, message } => {
                write!(f, "corrupt page {page:?}: {message}")
            }
            StorageError::Io(msg) => write!(f, "storage i/o error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = StorageError::PageOutOfBounds { page: PageId(7), num_pages: 3 };
        assert!(e.to_string().contains("out of bounds"));
        let e = StorageError::RecordTooLarge { node: 5, size: 9000 };
        assert!(e.to_string().contains("exceeds"));
        let e = StorageError::CorruptPage { page: PageId(0), message: "truncated".into() };
        assert!(e.to_string().contains("corrupt"));
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(matches!(e, StorageError::Io(_)));
    }
}

//! LRU buffer manager.
//!
//! The experiments in the paper use an LRU buffer of 1 MB (256 pages of
//! 4 KB); Fig. 21 varies the buffer between 0 and 1024 pages. [`BufferPool`]
//! reproduces that component: it caches decoded [`Page`]s, evicts the least
//! recently used page when full, and records every access in the shared
//! [`IoCounters`].
//!
//! The LRU list is an intrusive doubly-linked list over a slot vector, so
//! both hits and evictions are `O(1)`.

use crate::disk::PageStore;
use crate::error::StorageError;
use crate::io_stats::{IoCounters, IoStats};
use crate::page::{Page, PageId};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Number of pages in the paper's default 1 MB buffer.
pub const DEFAULT_BUFFER_PAGES: usize = 256;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot {
    page_id: PageId,
    page: Page,
    prev: usize,
    next: usize,
}

#[derive(Debug, Default)]
struct LruState {
    slots: Vec<Slot>,
    map: HashMap<PageId, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl LruState {
    fn new() -> Self {
        LruState { slots: Vec::new(), map: HashMap::new(), head: NIL, tail: NIL }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }
}

/// An LRU page buffer on top of a [`PageStore`].
pub struct BufferPool<S> {
    store: S,
    capacity: usize,
    state: Mutex<LruState>,
    counters: IoCounters,
}

impl<S: PageStore> BufferPool<S> {
    /// Creates a buffer of `capacity` pages over `store`, reporting I/O into
    /// `counters`.
    ///
    /// A capacity of 0 disables caching entirely: every access is a fault
    /// (this is the leftmost point of Fig. 21).
    pub fn new(store: S, capacity: usize, counters: IoCounters) -> Self {
        BufferPool { store, capacity, state: Mutex::new(LruState::new()), counters }
    }

    /// Creates a buffer with the paper's default capacity of 256 pages.
    pub fn with_default_capacity(store: S, counters: IoCounters) -> Self {
        Self::new(store, DEFAULT_BUFFER_PAGES, counters)
    }

    /// The buffer capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.state.lock().slots.len()
    }

    /// The shared I/O counters this pool reports into.
    pub fn counters(&self) -> &IoCounters {
        &self.counters
    }

    /// Convenience accessor for the current I/O snapshot.
    pub fn io_stats(&self) -> IoStats {
        self.counters.snapshot()
    }

    /// Drops all resident pages (without touching the counters).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        *st = LruState::new();
    }

    /// The underlying page store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Fetches a page through the buffer, recording the access.
    pub fn fetch(&self, page_id: PageId) -> Result<Page, StorageError> {
        if self.capacity == 0 {
            // No buffer at all: every access is a fault and nothing is cached.
            let page = self.store.read_page(page_id)?;
            self.counters.record_access(true, false);
            return Ok(page);
        }

        {
            let mut st = self.state.lock();
            if let Some(&idx) = st.map.get(&page_id) {
                st.touch(idx);
                let page = st.slots[idx].page.clone();
                drop(st);
                self.counters.record_access(false, false);
                return Ok(page);
            }
        }

        // Miss: read from the store outside the lock, then insert.
        let page = self.store.read_page(page_id)?;
        let mut evicted = false;
        {
            let mut st = self.state.lock();
            // Re-check: another thread may have inserted the page meanwhile.
            if let Some(&idx) = st.map.get(&page_id) {
                st.touch(idx);
            } else if st.slots.len() < self.capacity {
                let idx = st.slots.len();
                st.slots.push(Slot { page_id, page: page.clone(), prev: NIL, next: NIL });
                st.map.insert(page_id, idx);
                st.push_front(idx);
            } else {
                // Evict the least recently used slot and reuse it.
                evicted = true;
                let victim = st.tail;
                debug_assert_ne!(victim, NIL, "non-zero capacity buffer has a tail");
                st.unlink(victim);
                let old_id = st.slots[victim].page_id;
                st.map.remove(&old_id);
                st.slots[victim].page_id = page_id;
                st.slots[victim].page = page.clone();
                st.map.insert(page_id, victim);
                st.push_front(victim);
            }
        }
        self.counters.record_access(true, evicted);
        Ok(page)
    }
}

impl<S: PageStore> std::fmt::Debug for BufferPool<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("resident", &self.resident_pages())
            .field("stats", &self.io_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemoryDisk;
    use crate::page::{PageBuilder, PageEntry};
    use rnn_graph::{EdgeId, NodeId, Weight};

    fn disk_with_pages(n: usize) -> MemoryDisk {
        let pages = (0..n)
            .map(|i| {
                let mut b = PageBuilder::new();
                b.push_record(
                    NodeId(i as u32),
                    &[PageEntry { neighbor: NodeId(0), edge: EdgeId(0), weight: Weight::new(1.0) }],
                )
                .unwrap();
                b.build()
            })
            .collect();
        MemoryDisk::new(pages)
    }

    #[test]
    fn hits_and_faults_are_counted() {
        let pool = BufferPool::new(disk_with_pages(3), 2, IoCounters::new());
        pool.fetch(PageId(0)).unwrap(); // fault
        pool.fetch(PageId(0)).unwrap(); // hit
        pool.fetch(PageId(1)).unwrap(); // fault
        pool.fetch(PageId(0)).unwrap(); // hit
        let s = pool.io_stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.faults, 2);
        assert_eq!(s.evictions, 0);
        assert_eq!(pool.resident_pages(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = BufferPool::new(disk_with_pages(3), 2, IoCounters::new());
        pool.fetch(PageId(0)).unwrap(); // fault, cache: [0]
        pool.fetch(PageId(1)).unwrap(); // fault, cache: [1, 0]
        pool.fetch(PageId(0)).unwrap(); // hit,   cache: [0, 1]
        pool.fetch(PageId(2)).unwrap(); // fault, evicts 1
        let s = pool.io_stats();
        assert_eq!(s.faults, 3);
        assert_eq!(s.evictions, 1);
        // 1 was evicted, 0 was kept
        pool.fetch(PageId(0)).unwrap(); // hit
        pool.fetch(PageId(1)).unwrap(); // fault again
        let s = pool.io_stats();
        assert_eq!(s.accesses, 6);
        assert_eq!(s.faults, 4);
    }

    #[test]
    fn zero_capacity_buffer_always_faults() {
        let pool = BufferPool::new(disk_with_pages(2), 0, IoCounters::new());
        for _ in 0..5 {
            pool.fetch(PageId(1)).unwrap();
        }
        let s = pool.io_stats();
        assert_eq!(s.accesses, 5);
        assert_eq!(s.faults, 5);
        assert_eq!(pool.resident_pages(), 0);
    }

    #[test]
    fn large_capacity_buffer_faults_once_per_page() {
        let pool = BufferPool::with_default_capacity(disk_with_pages(10), IoCounters::new());
        assert_eq!(pool.capacity(), DEFAULT_BUFFER_PAGES);
        for round in 0..3 {
            for i in 0..10 {
                pool.fetch(PageId(i)).unwrap();
            }
            let s = pool.io_stats();
            assert_eq!(s.faults, 10, "after round {round}");
        }
        assert_eq!(pool.io_stats().accesses, 30);
    }

    #[test]
    fn clear_drops_pages_but_keeps_counters() {
        let pool = BufferPool::new(disk_with_pages(2), 2, IoCounters::new());
        pool.fetch(PageId(0)).unwrap();
        pool.clear();
        assert_eq!(pool.resident_pages(), 0);
        pool.fetch(PageId(0)).unwrap(); // faults again
        assert_eq!(pool.io_stats().faults, 2);
        assert!(format!("{pool:?}").contains("BufferPool"));
        assert_eq!(pool.store().num_pages(), 2);
    }

    #[test]
    fn out_of_bounds_pages_error_without_counting() {
        let pool = BufferPool::new(disk_with_pages(1), 2, IoCounters::new());
        assert!(pool.fetch(PageId(5)).is_err());
        assert_eq!(pool.io_stats().accesses, 0);
    }

    #[test]
    fn eviction_pattern_cycling_through_pages() {
        // capacity 3, cycle through 5 pages twice: every access after warmup
        // is a fault because LRU is the worst policy for cyclic scans.
        let pool = BufferPool::new(disk_with_pages(5), 3, IoCounters::new());
        for _ in 0..2 {
            for i in 0..5 {
                pool.fetch(PageId(i)).unwrap();
            }
        }
        let s = pool.io_stats();
        assert_eq!(s.accesses, 10);
        assert_eq!(s.faults, 10);
        assert_eq!(s.evictions, 7);
    }

    #[test]
    fn capacity_one_buffer_keeps_only_the_last_page() {
        let pool = BufferPool::new(disk_with_pages(3), 1, IoCounters::new());
        pool.fetch(PageId(0)).unwrap(); // fault, resident: {0}
        pool.fetch(PageId(0)).unwrap(); // hit
        pool.fetch(PageId(1)).unwrap(); // fault + eviction, resident: {1}
        pool.fetch(PageId(1)).unwrap(); // hit
        pool.fetch(PageId(0)).unwrap(); // fault + eviction again
        let s = pool.io_stats();
        assert_eq!(s.accesses, 5);
        assert_eq!(s.faults, 3);
        assert_eq!(s.evictions, 2);
        assert_eq!(pool.resident_pages(), 1);
    }

    #[test]
    fn evicted_slots_are_reused_with_the_right_contents() {
        // After an eviction reuses a slot, the page served for the new id
        // must be the new page, and re-fetching the evicted id must serve its
        // original contents (read back through the store).
        let pool = BufferPool::new(disk_with_pages(4), 2, IoCounters::new());
        let direct: Vec<Page> =
            (0..4).map(|i| pool.store().read_page(PageId(i)).unwrap()).collect();
        for round in 0..3 {
            for i in 0..4 {
                let got = pool.fetch(PageId(i)).unwrap();
                assert_eq!(got, direct[i as usize], "round {round}, page {i}");
                let records = got.records(PageId(i)).unwrap();
                assert_eq!(records[0].node, NodeId(i));
            }
        }
        assert_eq!(pool.resident_pages(), 2, "resident never exceeds capacity");
    }

    #[test]
    fn exact_lru_victim_sequence() {
        // Track the precise eviction order through a mixed hit/fault pattern.
        let pool = BufferPool::new(disk_with_pages(5), 3, IoCounters::new());
        let faults = |pool: &BufferPool<MemoryDisk>| pool.io_stats().faults;

        pool.fetch(PageId(0)).unwrap(); // LRU order (MRU first): [0]
        pool.fetch(PageId(1)).unwrap(); // [1, 0]
        pool.fetch(PageId(2)).unwrap(); // [2, 1, 0]
        pool.fetch(PageId(0)).unwrap(); // hit -> [0, 2, 1]
        pool.fetch(PageId(3)).unwrap(); // evicts 1 -> [3, 0, 2]
        assert_eq!(faults(&pool), 4);
        pool.fetch(PageId(2)).unwrap(); // still resident: hit -> [2, 3, 0]
        assert_eq!(faults(&pool), 4, "page 2 must not have been evicted");
        pool.fetch(PageId(1)).unwrap(); // fault (evicted above), evicts 0
        assert_eq!(faults(&pool), 5);
        pool.fetch(PageId(0)).unwrap(); // fault again: 0 was the LRU victim
        assert_eq!(faults(&pool), 6);
        assert_eq!(pool.io_stats().evictions, 3);
    }

    #[test]
    fn concurrent_fetches_count_every_access_exactly_once() {
        use std::sync::Arc;
        let pool = Arc::new(BufferPool::new(disk_with_pages(8), 4, IoCounters::new()));
        let threads = 4;
        let per_thread = 200;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let id = PageId(((t * 3 + i) % 8) as u32);
                        let page = pool.fetch(id).unwrap();
                        let records = page.records(id).unwrap();
                        assert_eq!(records[0].node, NodeId(id.0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.io_stats();
        assert_eq!(s.accesses, (threads * per_thread) as u64);
        assert!(s.faults >= 8, "each of the 8 pages faults at least once");
        assert!(s.faults <= s.accesses);
        assert!(pool.resident_pages() <= 4);
    }
}
